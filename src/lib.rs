//! # gnn-suite
//!
//! A full Rust reproduction of **"Performance Analysis of Graph Neural
//! Network Frameworks"** (Wu, Sun, Sun & Sun, ISPASS 2021): six GNN models
//! (GCN, GIN, GraphSAGE, GAT, MoNet, GatedGCN) trained on five datasets
//! (Cora, PubMed, ENZYMES, DD, MNIST-superpixels) under two GNN frameworks
//! with deliberately different architectures, profiled for training time,
//! epoch-time breakdown, layer-wise time, peak memory, GPU utilization, and
//! multi-GPU scaling.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`tensor`] — dense f32 autograd engine instrumented for the device model
//! - [`device`] — simulated GPU: roofline cost model, timeline, memory,
//!   `DataParallel` multi-GPU composition
//! - [`graph`] — COO/CSC topology, disjoint-union batching, k-NN builder
//! - [`datasets`] — synthetic generators matched to the paper's Table I
//! - [`pyg`] — `rustyg`, the PyG-like framework (gather/scatter, cheap
//!   collation)
//! - [`dgl`] — `rgl`, the DGL-like framework (heterograph wrapper, fused
//!   GSpMM/GSDDMM, segment pooling)
//! - [`models`] — the six architectures under both frameworks (Tables II/III)
//! - [`train`] — Adam, plateau decay, node/graph task loops, multi-GPU
//! - [`core`] — experiment runners and report rendering for every
//!   table/figure
//! - [`obs`] — structured tracing (Chrome trace-event export) and run
//!   metrics
//! - [`faults`] — deterministic fault injection and the chaos suite
//! - [`lint`] — ahead-of-run static analysis of the configured sweep
//! - [`serve`] — batched, fault-tolerant inference serving over trained
//!   checkpoints
//!
//! # Quickstart
//!
//! ```
//! use gnn_suite::core::{runner, RunConfig};
//!
//! // Regenerate Table I at smoke scale.
//! let stats = runner::table1(&RunConfig::smoke());
//! for row in &stats {
//!     println!("{row}");
//! }
//! ```
//!
//! The `gnn-bench` crate ships one binary per table/figure; see the README
//! for the full reproduction recipe.

pub use gnn_core as core;
pub use gnn_datasets as datasets;
pub use gnn_device as device;
pub use gnn_faults as faults;
pub use gnn_graph as graph;
pub use gnn_lint as lint;
pub use gnn_models as models;
pub use gnn_obs as obs;
pub use gnn_serve as serve;
pub use gnn_tensor as tensor;
pub use gnn_train as train;
pub use rgl as dgl;
pub use rustyg as pyg;
