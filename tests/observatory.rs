//! Integration tests of the critical-path observatory against the full
//! stack: real traced training runs (both frameworks) and a real traced
//! serving run, analyzed end to end.
//!
//! The load-bearing guarantees checked here:
//!
//! 1. **Exhaustive attribution** — `gnn_obs::analyze` splits every
//!    session's simulated time into kernel kinds plus idle, and a serve
//!    run's makespan into execute / queue-wait / idle, with the rows
//!    summing back to the total.
//! 2. **Counters everywhere** — every kernel slice and every framework
//!    span (rustyg and rgl tracks) carries FLOPs, bytes, arithmetic
//!    intensity, and roofline args; serve batch/execute spans too.
//! 3. **Round trips** — the Chrome export preserves counter args
//!    verbatim, and the serve latency histogram's quantiles are
//!    bit-identical to nearest-rank quantiles of the sorted sample.

use gnn_datasets::CitationSpec;
use gnn_models::{build, ModelKind};
use gnn_obs as obs;
use gnn_serve::{default_endpoints, serve, BatchPolicy, ServeConfig, ServeReport};
use gnn_train::{run_node_task, NodeOutcome, NodeTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Summation over a few thousand kernel slices accumulates at most a few
/// ulps of error; anything past this bound is a real attribution leak.
const REL_TOL: f64 = 1e-9;

fn traced_node_run_rustyg() -> (NodeOutcome, obs::Trace) {
    let handle = obs::install(obs::Collector::new());
    let ds = CitationSpec::cora().scaled(0.05).generate(7);
    let mut rng = StdRng::seed_from_u64(1);
    let stack =
        build::node_model_rustyg(ModelKind::Gcn, ds.features.cols(), ds.num_classes, &mut rng);
    let batch = rustyg::loader::full_graph_batch(&ds);
    let out = run_node_task(
        &stack,
        &batch,
        &ds,
        &NodeTaskConfig {
            max_epochs: 2,
            lr: 0.01,
        },
    );
    (out, obs::finish(handle))
}

fn traced_node_run_rgl() -> (NodeOutcome, obs::Trace) {
    let handle = obs::install(obs::Collector::new());
    let ds = CitationSpec::cora().scaled(0.05).generate(7);
    let mut rng = StdRng::seed_from_u64(1);
    let stack = build::node_model_rgl(ModelKind::Gcn, ds.features.cols(), ds.num_classes, &mut rng);
    let batch = rgl::loader::full_graph_batch(&ds);
    let out = run_node_task(
        &stack,
        &batch,
        &ds,
        &NodeTaskConfig {
            max_epochs: 1,
            lr: 0.01,
        },
    );
    (out, obs::finish(handle))
}

fn traced_serve_run() -> (ServeReport, obs::Trace) {
    let handle = obs::install(obs::Collector::new());
    let cfg = ServeConfig {
        endpoints: default_endpoints()[..1].to_vec(),
        requests: 40,
        rate: 2000.0,
        seed: 0,
        policy: BatchPolicy {
            max_batch: 4,
            max_delay: 0.001,
        },
        ..ServeConfig::default()
    };
    let report = serve(&cfg).expect("serve run must succeed");
    (report, obs::finish(handle))
}

fn arg<'a>(args: &'a [(String, obs::Value)], key: &str) -> Option<&'a obs::Value> {
    args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn num(args: &[(String, obs::Value)], key: &str) -> f64 {
    arg(args, key)
        .and_then(obs::Value::as_f64)
        .unwrap_or_else(|| panic!("span missing numeric arg {key:?}: {args:?}"))
}

/// Complete slices on one track as `(name, args)` pairs, in trace order.
fn slices<'a>(trace: &'a obs::Trace, track: &str) -> Vec<(&'a str, &'a [(String, obs::Value)])> {
    trace
        .events
        .iter()
        .filter(|e| e.track == track)
        .filter_map(|e| match &e.kind {
            obs::recorder::EventKind::Complete { name, args, .. } => {
                Some((name.as_str(), args.as_slice()))
            }
            _ => None,
        })
        .collect()
}

#[test]
fn critical_path_attributes_every_session_exactly() {
    let (out, trace) = traced_node_run_rustyg();
    let analysis = obs::analyze(&trace);
    assert!(!analysis.sessions.is_empty());
    for s in &analysis.sessions {
        assert!(s.total > 0.0, "session {} spans no time", s.generation);
        let sum: f64 = s.rows().iter().fold(0.0, |acc, (_, t)| acc + t);
        assert!(
            (sum - s.total).abs() <= REL_TOL * s.total,
            "attribution leak in session {}: rows sum {sum}, total {}",
            s.generation,
            s.total
        );
        assert!(s.idle >= 0.0);
        assert!(!s.kinds.is_empty(), "no kernel kinds attributed");
        assert!(!s.hotspots.is_empty(), "no hotspots ranked");
    }
    // The training session's attribution covers the device report's clock:
    // the run total equals the analyzed total of the last generation.
    let last = analysis.sessions.last().unwrap();
    assert!(
        (last.total - out.report.total_time).abs() <= REL_TOL * out.report.total_time,
        "analyzed total {} vs device report total {}",
        last.total,
        out.report.total_time
    );
    // The rendered report is non-empty and names the idle residual.
    let text = analysis.report();
    assert!(text.contains("idle"));
    assert!(text.contains("session"));
}

#[test]
fn every_kernel_slice_carries_hardware_counters() {
    let (_, trace) = traced_node_run_rustyg();
    let kernels = slices(&trace, obs::tracks::KERNELS);
    assert!(!kernels.is_empty());
    let mut flops_seen = 0.0;
    for (name, args) in &kernels {
        assert!(
            arg(args, "kind").is_some_and(|v| v.as_str().is_some()),
            "kernel {name} missing kind"
        );
        let flops = num(args, "flops");
        let bytes = num(args, "bytes");
        let roofline = num(args, "roofline");
        assert!(flops >= 0.0 && bytes > 0.0, "kernel {name} moved no bytes");
        assert!(num(args, "ai") >= 0.0);
        assert!(
            (0.0..=1.0).contains(&roofline),
            "kernel {name} roofline {roofline} outside [0, 1]"
        );
        flops_seen += flops;
    }
    assert!(flops_seen > 0.0, "no kernel reported any FLOPs");
}

#[test]
fn framework_spans_carry_counters_on_both_tracks() {
    for (label, trace) in [
        ("rustyg", traced_node_run_rustyg().1),
        ("rgl", traced_node_run_rgl().1),
    ] {
        let spans = slices(&trace, label);
        assert!(!spans.is_empty(), "no traced spans on the {label} track");
        for (name, args) in &spans {
            for key in ["flops", "bytes", "ai", "roofline"] {
                assert!(
                    arg(args, key).is_some_and(|v| v.as_f64().is_some()),
                    "{label} span {name} missing {key}"
                );
            }
            let roofline = num(args, "roofline");
            assert!(
                (0.0..=1.0).contains(&roofline),
                "{label}/{name}: {roofline}"
            );
        }
        // The framework layer does real work somewhere in the run.
        assert!(spans.iter().any(|(_, args)| num(args, "flops") > 0.0));
    }
}

#[test]
fn serve_attribution_sums_to_makespan() {
    let (report, trace) = traced_serve_run();
    let analysis = obs::analyze(&trace);
    let sv = analysis.serve.expect("serve events must be in the trace");
    assert!(sv.makespan > 0.0);
    assert!(sv.execute > 0.0, "no batch-execute time attributed");
    let sum: f64 = sv.rows().iter().fold(0.0, |acc, (_, t)| acc + t);
    assert!(
        (sum - sv.makespan).abs() <= REL_TOL * sv.makespan,
        "serve attribution leak: rows sum {sum}, makespan {}",
        sv.makespan
    );
    // One request span per served request, and every batch observed.
    let served = report.requests.iter().filter(|r| r.served()).count() as u64;
    assert_eq!(sv.requests, served);
    assert_eq!(sv.batches, report.batches.len() as u64);

    // The engine emits the queue-wait / execute split per request, and the
    // execute sub-spans carry roofline counters.
    let spans = slices(&trace, obs::tracks::SERVE);
    for name in ["queue_wait", "execute", "request", "batch"] {
        assert!(
            spans.iter().any(|(n, _)| *n == name),
            "no {name} span on the serve track"
        );
    }
    for (name, args) in spans
        .iter()
        .filter(|(n, _)| *n == "execute" || *n == "batch")
    {
        assert!(num(args, "flops") > 0.0, "{name} span reports zero FLOPs");
        assert!(num(args, "bytes") > 0.0, "{name} span reports zero bytes");
        let roofline = num(args, "roofline");
        assert!((0.0..=1.0).contains(&roofline), "{name}: {roofline}");
    }
}

#[test]
fn chrome_round_trip_preserves_counter_args() {
    let (_, trace) = traced_node_run_rustyg();
    let parsed = obs::parse_chrome_trace(&trace.to_chrome_json()).expect("chrome trace parses");
    let round = obs::Trace {
        events: parsed,
        epochs: vec![],
        schedule: vec![],
    };
    for track in [obs::tracks::KERNELS, "rustyg", obs::tracks::SERVE] {
        let before = slices(&trace, track);
        let after = slices(&round, track);
        assert_eq!(before.len(), after.len(), "slice count changed on {track}");
        for ((n0, a0), (n1, a1)) in before.iter().zip(&after) {
            assert_eq!(n0, n1);
            // Custom args survive verbatim (order and values); only the
            // injected wall_s stamp is engine metadata, not a counter.
            assert_eq!(a0, a1, "args changed across the round trip for {n0}");
        }
    }
    // Analysis of the round-tripped trace attributes the same work: kind
    // rows and totals agree to timestamp (µs-scaling) precision.
    let a0 = obs::analyze(&trace);
    let a1 = obs::analyze(&round);
    assert_eq!(a0.sessions.len(), a1.sessions.len());
    for (s0, s1) in a0.sessions.iter().zip(&a1.sessions) {
        assert!((s0.total - s1.total).abs() <= 1e-9 * s0.total.max(1e-12));
        assert_eq!(s0.kinds.len(), s1.kinds.len());
        for ((k0, t0), (k1, t1)) in s0.kinds.iter().zip(&s1.kinds) {
            assert_eq!(k0, k1);
            assert!(
                (t0 - t1).abs() <= 1e-9 * t0.max(1e-12),
                "{k0}: {t0} vs {t1}"
            );
        }
    }
}

#[test]
fn serve_histogram_quantiles_match_exact_sorted_quantiles() {
    let (report, _) = traced_serve_run();
    let mut sorted: Vec<f64> = report
        .requests
        .iter()
        .filter(|r| r.served())
        .map(|r| r.latency())
        .collect();
    assert!(!sorted.is_empty());
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut hist = report.latency_histogram();
    assert_eq!(hist.count(), sorted.len());
    for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
        // Nearest-rank definition, computed independently of the library.
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let expected = sorted[rank.clamp(1, sorted.len()) - 1];
        assert_eq!(
            hist.quantile(p),
            expected,
            "histogram p{p} diverged from the sorted sample"
        );
        // ...and from the serve crate's legacy percentile helper.
        assert_eq!(hist.quantile(p), gnn_serve::percentile(&sorted, p));
    }
    let (p50, p95, p99) = report.latency_percentiles();
    assert!(p50 <= p95 && p95 <= p99);
    assert!((0.0..=1.0).contains(&report.slo_attainment(0.005)));
}
