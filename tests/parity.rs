//! Cross-framework parity: the two frameworks must agree on *semantics*
//! (numerics, labels, dataset views) while differing in *execution*
//! (kernel streams, collation cost). This is the precondition for the
//! paper's controlled comparison.

use gnn_datasets::{CitationSpec, TudSpec};
use gnn_models::adapt::{RglLoader, RustygLoader};
use gnn_models::{build, Loader, ModelBatch, ModelKind};
use gnn_tensor::accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn loaders_produce_identical_features_and_labels() {
    let ds = TudSpec::enzymes().scaled(0.1).generate(0);
    let idx: Vec<u32> = (0..16).collect();
    let a = RustygLoader::new(&ds).load(&idx);
    let b = RglLoader::new(&ds).load(&idx);
    assert_eq!(a.x().data().data(), b.x().data().data());
    assert_eq!(a.labels(), b.labels());
    assert_eq!(a.num_nodes(), b.num_nodes());
    assert_eq!(a.num_edges(), b.num_edges());
}

#[test]
fn isotropic_aggregation_matches_exactly_across_frameworks() {
    // GIN's sum aggregation is mathematically identical in both frameworks
    // (fused GSpMM vs gather+scatter): same weights must give the same
    // forward output bit-for-bit up to float associativity.
    let ds = TudSpec::enzymes().scaled(0.1).generate(1);
    let idx: Vec<u32> = (0..8).collect();
    let pb = RustygLoader::new(&ds).load(&idx);
    let db = RglLoader::new(&ds).load(&idx);

    let agg_pyg =
        pb.x.gather_rows(&pb.src)
            .scatter_add_rows(&pb.dst, pb.num_nodes);
    let agg_dgl = rgl::kernels::gspmm_copy_sum(&db, &db.x);
    let (pa, da) = (agg_pyg.data(), agg_dgl.data());
    assert_eq!(pa.shape(), da.shape());
    for (x, y) in pa.data().iter().zip(da.data()) {
        assert!((x - y).abs() < 1e-4, "{x} vs {y}");
    }
}

#[test]
fn same_training_protocol_reaches_similar_accuracy() {
    // Train GCN full-batch under both frameworks on the same citation
    // graph; accuracies must be in the same band (the paper's Table IV
    // finding: "it is hard to tell the best between the two frameworks").
    let ds = CitationSpec::cora().scaled(0.15).generate(3);
    let cfg = gnn_train::NodeTaskConfig {
        max_epochs: 40,
        lr: 0.01,
    };

    let mut rng = StdRng::seed_from_u64(5);
    let m1 = build::node_model_rustyg(ModelKind::Gcn, 1433, 7, &mut rng);
    let b1 = rustyg::loader::full_graph_batch(&ds);
    let pyg = gnn_train::run_node_task(&m1, &b1, &ds, &cfg);

    let mut rng = StdRng::seed_from_u64(5);
    let m2 = build::node_model_rgl(ModelKind::Gcn, 1433, 7, &mut rng);
    let b2 = rgl::loader::full_graph_batch(&ds);
    let dgl = gnn_train::run_node_task(&m2, &b2, &ds, &cfg);

    assert!(
        pyg.test_acc > 40.0 && dgl.test_acc > 40.0,
        "{} / {}",
        pyg.test_acc,
        dgl.test_acc
    );
    assert!(
        (pyg.test_acc - dgl.test_acc).abs() < 15.0,
        "accuracies diverge: {} vs {}",
        pyg.test_acc,
        dgl.test_acc
    );
    // ... while DGL pays more wall-clock per epoch.
    assert!(dgl.epoch_time > pyg.epoch_time);
}

#[test]
fn inference_is_deterministic_per_framework() {
    let ds = TudSpec::enzymes().scaled(0.1).generate(4);
    let idx: Vec<u32> = (0..8).collect();
    let batch = RustygLoader::new(&ds).load(&idx);
    let mut rng = StdRng::seed_from_u64(6);
    let model = build::graph_model_rustyg(ModelKind::Gat, 18, 6, &mut rng);
    let l1 = model.forward(&batch, false);
    let l2 = model.forward(&batch, false);
    assert_eq!(l1.data().data(), l2.data().data());
    let _ = accuracy(&l1, batch.labels());
}

#[test]
fn all_models_accept_both_frameworks_and_grad_all_params() {
    let ds = TudSpec::enzymes().scaled(0.1).generate(7);
    let idx: Vec<u32> = (0..8).collect();
    let pb = RustygLoader::new(&ds).load(&idx);
    let db = RglLoader::new(&ds).load(&idx);
    for kind in gnn_models::config::ALL_MODELS {
        let mut rng = StdRng::seed_from_u64(8);
        let m = build::graph_model_rustyg(kind, 18, 6, &mut rng);
        let loss = gnn_tensor::cross_entropy(&m.forward(&pb, true), pb.labels());
        loss.backward();
        for (i, p) in m.params().iter().enumerate() {
            assert!(p.grad().is_some(), "{kind:?}/rustyg param {i} missing grad");
        }

        let mut rng = StdRng::seed_from_u64(8);
        let m = build::graph_model_rgl(kind, 18, 6, &mut rng);
        let loss = gnn_tensor::cross_entropy(&m.forward(&db, true), db.labels());
        loss.backward();
        for (i, p) in m.params().iter().enumerate() {
            assert!(p.grad().is_some(), "{kind:?}/rgl param {i} missing grad");
        }
    }
}

/// Models whose two implementations are mathematically identical (GIN, SAGE,
/// GAT, MoNet) must produce numerically matching logits when built from the
/// same seed (identical init draws) on the same batch — the strongest form
/// of the paper's "we ensure that they define the same network".
#[test]
fn identical_math_models_agree_numerically_across_frameworks() {
    let ds = TudSpec::enzymes().scaled(0.1).generate(9);
    let idx: Vec<u32> = (0..12).collect();
    let pb = RustygLoader::new(&ds).load(&idx);
    let db = RglLoader::new(&ds).load(&idx);
    for kind in [
        ModelKind::Gin,
        ModelKind::Sage,
        ModelKind::Gat,
        ModelKind::MoNet,
    ] {
        let mut rng = StdRng::seed_from_u64(123);
        let pyg = build::graph_model_rustyg(kind, 18, 6, &mut rng);
        let mut rng = StdRng::seed_from_u64(123);
        let dgl = build::graph_model_rgl(kind, 18, 6, &mut rng);
        let lp = pyg.forward(&pb, false);
        let ld = dgl.forward(&db, false);
        assert_eq!(lp.shape(), ld.shape());
        let (a, b) = (lp.data(), ld.data());
        let max_diff = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-3,
            "{kind:?}: max logit divergence {max_diff} between frameworks"
        );
    }
}

/// GCN and GatedGCN differ by *design* between the frameworks (sym vs mean
/// normalization; explicit edge state) — their outputs must NOT be expected
/// to be identical, but training either still reaches similar accuracy
/// (asserted elsewhere). Here: verify they differ, confirming the test above
/// isn't vacuous.
#[test]
fn design_divergent_models_actually_diverge() {
    let ds = TudSpec::enzymes().scaled(0.1).generate(10);
    let idx: Vec<u32> = (0..12).collect();
    let pb = RustygLoader::new(&ds).load(&idx);
    let db = RglLoader::new(&ds).load(&idx);
    let mut rng = StdRng::seed_from_u64(9);
    let pyg = build::graph_model_rustyg(ModelKind::GatedGcn, 18, 6, &mut rng);
    let mut rng = StdRng::seed_from_u64(9);
    let dgl = build::graph_model_rgl(ModelKind::GatedGcn, 18, 6, &mut rng);
    let lp = pyg.forward(&pb, false);
    let ld = dgl.forward(&db, false);
    let max_diff = lp
        .data()
        .data()
        .iter()
        .zip(ld.data().data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_diff > 1e-4,
        "GatedGCN implementations should differ by design, diff = {max_diff}"
    );
}
