//! End-to-end checks of the paper's qualitative claims — the *shape* of
//! every reproduced result, asserted at smoke scale. Each test names the
//! paper section it guards.

use gnn_core::runner::{self, GraphDs};
use gnn_core::RunConfig;
use gnn_models::{FrameworkKind, ModelKind};

fn smoke() -> RunConfig {
    let mut cfg = RunConfig::smoke();
    cfg.batch_sizes = [8, 16, 32];
    cfg
}

#[test]
fn claim_dgl_data_loading_dominates_and_exceeds_pyg() {
    // Section IV-C: "the data loading time of DGL is significantly longer
    // than that of PyG across all models".
    let rows = runner::profile_sweep(&smoke(), GraphDs::Enzymes);
    for model in gnn_models::config::ALL_MODELS {
        let pyg = rows
            .iter()
            .find(|r| {
                r.model == model && r.framework == FrameworkKind::RustyG && r.batch_size == 16
            })
            .unwrap();
        let dgl = rows
            .iter()
            .find(|r| r.model == model && r.framework == FrameworkKind::Rgl && r.batch_size == 16)
            .unwrap();
        assert!(
            dgl.phase_times[0] > 1.5 * pyg.phase_times[0],
            "{model:?}: DGL load {:.2e} vs PyG {:.2e}",
            dgl.phase_times[0],
            pyg.phase_times[0]
        );
        // Data loading is a major share of the PyG epoch too (intro claim).
        // Smoke-scale batches understate the share (per-layer dispatch is
        // amplified relative to tiny loads); at quick/full scale the share
        // is far higher — see EXPERIMENTS.md.
        assert!(
            pyg.phase_times[0] / pyg.epoch_time() > 0.12,
            "{model:?}: loading share {:.2}",
            pyg.phase_times[0] / pyg.epoch_time()
        );
    }
}

#[test]
fn claim_total_epoch_time_pyg_beats_dgl_for_all_models() {
    // Tables IV/V headline: "the implementations with framework PyG can get
    // the best training time performance for all models".
    let rows = runner::profile_sweep(&smoke(), GraphDs::Enzymes);
    for model in gnn_models::config::ALL_MODELS {
        for bs in [8usize, 16, 32] {
            let t = |fw: FrameworkKind| {
                rows.iter()
                    .find(|r| r.model == model && r.framework == fw && r.batch_size == bs)
                    .unwrap()
                    .epoch_time()
            };
            assert!(
                t(FrameworkKind::Rgl) > t(FrameworkKind::RustyG),
                "{model:?}@{bs}: DGL must be slower"
            );
        }
    }
}

#[test]
fn claim_gatedgcn_gap_is_the_largest() {
    // Section IV-A observation 3: GatedGCN under DGL can be ~2x its PyG
    // time — the widest framework gap among the six models.
    let rows = runner::profile_sweep(&smoke(), GraphDs::Enzymes);
    // Compare compute (forward + backward): at smoke scale the collation
    // cost is framework-constant and would wash the per-model signal out.
    let ratio = |model: ModelKind| {
        let t = |fw: FrameworkKind| {
            let r = rows
                .iter()
                .find(|r| r.model == model && r.framework == fw && r.batch_size == 16)
                .unwrap();
            r.phase_times[1] + r.phase_times[2]
        };
        t(FrameworkKind::Rgl) / t(FrameworkKind::RustyG)
    };
    let gated = ratio(ModelKind::GatedGcn);
    for other in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gin] {
        assert!(
            gated > ratio(other),
            "GatedGCN ratio {gated:.2} must exceed {other:?} ratio {:.2}",
            ratio(other)
        );
    }
    assert!(gated > 1.5, "GatedGCN DGL/PyG ratio too small: {gated:.2}");
}

#[test]
fn claim_gpu_utilization_is_low() {
    // Section IV-D observation 4: "for many cases, the maximum is no more
    // than 40%" — utilization is low across the board.
    let rows = runner::profile_sweep(&smoke(), GraphDs::Enzymes);
    let max_util = rows.iter().map(|r| r.utilization).fold(0.0f64, f64::max);
    assert!(max_util < 0.5, "utilization should be low, got {max_util}");
    for r in &rows {
        assert!(r.utilization > 0.0, "device never idle-only");
    }
}

#[test]
fn claim_dgl_memory_gap_is_extreme_for_gatedgcn() {
    // Section IV-D observation 2: DGL memory >= PyG in most cases, with the
    // gap "very big" for GatedGCN (explicit edge features).
    let rows = runner::profile_sweep(&smoke(), GraphDs::Enzymes);
    let mem = |model: ModelKind, fw: FrameworkKind| {
        rows.iter()
            .find(|r| r.model == model && r.framework == fw && r.batch_size == 32)
            .unwrap()
            .peak_memory as f64
    };
    let gated_ratio = mem(ModelKind::GatedGcn, FrameworkKind::Rgl)
        / mem(ModelKind::GatedGcn, FrameworkKind::RustyG);
    let gcn_ratio =
        mem(ModelKind::Gcn, FrameworkKind::Rgl) / mem(ModelKind::Gcn, FrameworkKind::RustyG);
    assert!(
        gated_ratio > gcn_ratio,
        "GatedGCN memory gap {gated_ratio:.2} vs GCN {gcn_ratio:.2}"
    );
    // At smoke scale the edata frames are small relative to activations;
    // the full-scale gap is larger (see EXPERIMENTS.md).
    assert!(
        gated_ratio > 1.1,
        "GatedGCN DGL memory must clearly exceed PyG: {gated_ratio:.2}"
    );
}

#[test]
fn claim_anisotropic_models_cost_more_memory() {
    // Section IV-D observation 1: anisotropic GNNs need more memory.
    let rows = runner::profile_sweep(&smoke(), GraphDs::Enzymes);
    let mem = |model: ModelKind| {
        rows.iter()
            .find(|r| {
                r.model == model && r.framework == FrameworkKind::RustyG && r.batch_size == 32
            })
            .unwrap()
            .peak_memory
    };
    assert!(mem(ModelKind::Gat) > mem(ModelKind::Gcn));
    assert!(mem(ModelKind::GatedGcn) > mem(ModelKind::Gcn));
}

#[test]
fn claim_multi_gpu_saturates() {
    // Section IV-E / Fig. 6: 1 -> 2 -> 4 modest improvement; 4 -> 8 flat or
    // worse.
    let rows = runner::multi_gpu(&smoke());
    for model in [ModelKind::Gcn, ModelKind::Gat] {
        for fw in gnn_models::config::ALL_FRAMEWORKS {
            let t = |gpus: usize| {
                rows.iter()
                    .find(|r| {
                        r.model == model
                            && r.framework == fw
                            && r.batch_size == 128
                            && r.n_gpus == gpus
                    })
                    .unwrap()
                    .epoch_time
            };
            assert!(
                t(2) <= t(1) * 1.05,
                "{model:?}/{fw:?}: 2 GPUs should not be much worse"
            );
            let gain_4_8 = (t(4) - t(8)) / t(4);
            assert!(
                gain_4_8 < 0.2,
                "{model:?}/{fw:?}: 4->8 gain {gain_4_8:.2} too large"
            );
        }
    }
}

#[test]
fn claim_layer_times_dgl_conv_slower_and_conv1_heaviest() {
    // Section IV-C / Fig. 3: DGL conv layers cost more than PyG's, and
    // conv1 (largest input width) dominates the conv stack.
    let rows = runner::layer_times(&smoke());
    for model in gnn_models::config::ALL_MODELS {
        let scope_sum = |fw: FrameworkKind| -> f64 {
            rows.iter()
                .find(|r| r.model == model && r.framework == fw)
                .unwrap()
                .scopes
                .iter()
                .filter(|(n, _)| n.starts_with("conv"))
                .map(|(_, t)| t)
                .sum()
        };
        assert!(
            scope_sum(FrameworkKind::Rgl) > scope_sum(FrameworkKind::RustyG),
            "{model:?}: DGL conv stack must cost more"
        );
    }
    // conv1 >= other convs for the DGL GIN row (paper calls GIN's conv1
    // GSpMM out explicitly).
    let gin = rows
        .iter()
        .find(|r| r.model == ModelKind::Gin && r.framework == FrameworkKind::Rgl)
        .unwrap();
    let t = |name: &str| gin.scopes.iter().find(|(n, _)| n == name).unwrap().1;
    assert!(
        t("conv1") >= t("conv3") * 0.8,
        "conv1 {:.2e} vs conv3 {:.2e}",
        t("conv1"),
        t("conv3")
    );
}
