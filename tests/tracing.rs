//! Integration tests of the `gnn-obs` tracing layer against the full
//! stack: a real `run_node_task` training run on a tiny citation graph,
//! traced end to end.
//!
//! The two load-bearing guarantees checked here:
//!
//! 1. **True no-op** — running the identical workload with and without a
//!    collector produces bit-identical `Session` accounting (tracing never
//!    advances or synchronizes the simulated clocks).
//! 2. **Artifact validity** — the Chrome trace JSON parses back and the
//!    JSONL metrics stream round-trips, with one record per epoch.

use gnn_datasets::CitationSpec;
use gnn_models::{build, ModelKind};
use gnn_obs as obs;
use gnn_train::{run_node_task, NodeOutcome, NodeTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPOCHS: usize = 3;

/// One short GCN training run on a 5%-scale Cora under rustyg. Fully
/// seeded, so two invocations in one process are bit-identical.
fn tiny_node_run() -> NodeOutcome {
    let ds = CitationSpec::cora().scaled(0.05).generate(7);
    let mut rng = StdRng::seed_from_u64(1);
    let stack =
        build::node_model_rustyg(ModelKind::Gcn, ds.features.cols(), ds.num_classes, &mut rng);
    let batch = rustyg::loader::full_graph_batch(&ds);
    run_node_task(
        &stack,
        &batch,
        &ds,
        &NodeTaskConfig {
            max_epochs: EPOCHS,
            lr: 0.01,
        },
    )
}

fn traced_tiny_node_run() -> (NodeOutcome, obs::Trace) {
    let handle = obs::install(obs::Collector::new());
    let out = tiny_node_run();
    (out, obs::finish(handle))
}

#[test]
fn disabled_tracing_is_a_true_noop() {
    let plain = tiny_node_run();
    let (traced, trace) = traced_tiny_node_run();
    // The trace must exist...
    assert!(!trace.events.is_empty());
    // ...and must not have perturbed the simulation in any way.
    assert_eq!(plain.report.phase_times, traced.report.phase_times);
    assert_eq!(plain.report.total_time, traced.report.total_time);
    assert_eq!(plain.report.busy_time, traced.report.busy_time);
    assert_eq!(plain.report.kernel_count, traced.report.kernel_count);
    assert_eq!(plain.report.peak_memory, traced.report.peak_memory);
    assert_eq!(plain.report.kind_counts, traced.report.kind_counts);
    assert_eq!(plain.test_acc, traced.test_acc);
}

#[test]
fn one_epoch_record_per_epoch_with_stable_schema() {
    let (_, trace) = traced_tiny_node_run();
    assert_eq!(trace.epochs.len(), EPOCHS);
    let run = &trace.epochs[0].run;
    assert!(run.starts_with("node/"), "unexpected run id {run}");
    let mut prev_sim = 0.0;
    for (i, rec) in trace.epochs.iter().enumerate() {
        assert_eq!(&rec.run, run);
        assert_eq!(rec.epoch as usize, i);
        assert!(rec.loss.is_finite());
        assert!(rec.accuracy.is_some_and(|a| (0.0..=1.0).contains(&a)));
        assert!(rec.lr > 0.0);
        assert!(!rec.phase_times.is_empty(), "epoch {i} lost phase times");
        assert!(!rec.kernel_counts.is_empty(), "epoch {i} lost kernels");
        assert!(rec.peak_memory > 0);
        assert!((0.0..=1.0).contains(&rec.utilization));
        assert!(rec.sim_time > prev_sim, "sim time must advance per epoch");
        assert!(rec.wall_time >= 0.0);
        prev_sim = rec.sim_time;
    }
}

#[test]
fn spans_nest_and_unwind_in_order() {
    let handle = obs::install(obs::Collector::new());
    let sh =
        gnn_device::session::install(gnn_device::Session::new(gnn_device::CostModel::rtx2080ti()));
    gnn_device::scope("outer", || {
        gnn_device::scope("inner", || {
            gnn_device::record(gnn_device::Kernel::new(
                "k",
                gnn_device::KernelKind::Gemm,
                1000,
                1000,
            ));
        });
    });
    gnn_device::session::finish(sh);
    let trace = obs::finish(handle);

    let scope_events: Vec<&obs::EventKind> = trace
        .events
        .iter()
        .filter(|e| e.track == obs::tracks::SCOPES)
        .map(|e| &e.kind)
        .collect();
    let names: Vec<Option<&str>> = scope_events
        .iter()
        .map(|k| match k {
            obs::EventKind::Begin { name } => Some(name.as_str()),
            obs::EventKind::End => None,
            other => panic!("unexpected scope event {other:?}"),
        })
        .collect();
    assert_eq!(names, vec![Some("outer"), Some("inner"), None, None]);

    // Span stack discipline: depth never goes negative, ends balance.
    let mut depth = 0i32;
    for k in &scope_events {
        match k {
            obs::EventKind::Begin { .. } => depth += 1,
            obs::EventKind::End => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
    }
    assert_eq!(depth, 0);

    // The kernel landed as a complete slice on the kernels track.
    assert!(trace.events.iter().any(|e| {
        e.track == obs::tracks::KERNELS
            && matches!(&e.kind, obs::EventKind::Complete { name, .. } if name == "k")
    }));
}

#[test]
fn reporting_without_collector_is_inert() {
    assert!(!obs::is_active());
    obs::span_begin("phase", "forward", 0.0);
    obs::span_end("phase", 1.0);
    obs::instant("train", "epoch", 0.5, vec![]);
    obs::counter("memory", "device_bytes", 0.5, 128.0);
    // Nothing was recording, so a fresh collector starts empty.
    let handle = obs::install(obs::Collector::new());
    let trace = obs::finish(handle);
    assert!(trace.events.is_empty());
    assert!(trace.epochs.is_empty());
}

#[test]
fn chrome_export_is_valid_json_with_expected_tracks() {
    let (_, trace) = traced_tiny_node_run();
    let json = trace.to_chrome_json();
    let doc = obs::json::parse(&json).expect("chrome trace must parse back");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut phases_seen = Vec::new();
    let mut thread_names = Vec::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a ph");
        assert!(
            ["B", "E", "X", "i", "C", "M"].contains(&ph),
            "unexpected phase {ph}"
        );
        if !phases_seen.contains(&ph.to_string()) {
            phases_seen.push(ph.to_string());
        }
        assert!(e.get("pid").and_then(|v| v.as_u64()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_u64()).is_some());
        if ph == "M" {
            if let Some(name) = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str())
            {
                thread_names.push(name.to_string());
            }
        } else {
            let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
            assert!(ts >= 0.0, "negative timestamp {ts}");
        }
        if ph == "X" {
            let dur = e.get("dur").and_then(|v| v.as_f64()).expect("dur");
            assert!(dur >= 0.0);
        }
    }
    // Spans, slices, instants, counters, and metadata all present.
    for expect in ["B", "E", "X", "i", "C", "M"] {
        assert!(phases_seen.iter().any(|p| p == expect), "missing {expect}");
    }
    // The instrumented tracks are named for the viewer.
    for track in [
        obs::tracks::PHASE,
        obs::tracks::KERNELS,
        obs::tracks::TRAIN,
        obs::tracks::MEMORY,
    ] {
        assert!(
            thread_names.iter().any(|n| n == track),
            "no thread_name metadata for track {track}"
        );
    }
}

#[test]
fn metrics_jsonl_round_trips() {
    let (_, trace) = traced_tiny_node_run();
    let jsonl = trace.to_metrics_jsonl();
    assert_eq!(jsonl.lines().count(), EPOCHS);
    let parsed = obs::parse_metrics_jsonl(&jsonl).expect("metrics must parse back");
    assert_eq!(parsed, trace.epochs);
}

#[test]
fn save_writes_both_artifacts() {
    let (_, trace) = traced_tiny_node_run();
    let dir = std::env::temp_dir().join("gnn_obs_integration_test");
    let _ = std::fs::remove_dir_all(&dir);
    let (trace_path, metrics_path) = trace.save(&dir).expect("save must succeed");
    let chrome = std::fs::read_to_string(&trace_path).unwrap();
    assert!(obs::json::parse(&chrome).is_ok());
    let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
    assert_eq!(
        obs::parse_metrics_jsonl(&jsonl).unwrap().len(),
        trace.epochs.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
