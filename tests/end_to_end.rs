//! End-to-end training runs spanning every crate: datasets → loaders →
//! models → training loop → device report → aggregation.

use gnn_core::runner;
use gnn_core::RunConfig;
use gnn_datasets::{stratified_kfold, CitationSpec, TudSpec};
use gnn_models::adapt::RustygLoader;
use gnn_models::{build, ModelKind};
use gnn_train::{mean_std, run_graph_fold, run_node_task, GraphTaskConfig, NodeTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn table4_smoke_produces_full_grid() {
    let mut cfg = RunConfig::smoke();
    cfg.scale = 0.05;
    let rows = runner::table4(&cfg);
    // 2 datasets x 6 models x 2 frameworks.
    assert_eq!(rows.len(), 24);
    for r in &rows {
        assert!(r.epoch_time > 0.0, "{:?}", r);
        assert!(r.total_time >= r.epoch_time);
        assert!((0.0..=100.0).contains(&r.acc.mean));
    }
    // Every PyG cell beats its DGL sibling on epoch time.
    for chunk in rows.chunks(2) {
        let (pyg, dgl) = (&chunk[0], &chunk[1]);
        assert_eq!(pyg.model, dgl.model);
        assert!(dgl.epoch_time > pyg.epoch_time, "{:?} vs {:?}", dgl, pyg);
    }
}

#[test]
fn table5_smoke_produces_full_grid() {
    let cfg = RunConfig::smoke();
    let rows = runner::table5(&cfg);
    assert_eq!(rows.len(), 24);
    let datasets: Vec<&str> = rows.iter().map(|r| r.dataset.as_str()).collect();
    assert!(datasets.contains(&"ENZYMES"));
    assert!(datasets.contains(&"DD"));
    for r in &rows {
        assert!(r.epoch_time > 0.0);
        assert!((0.0..=100.0).contains(&r.acc.mean));
    }
}

#[test]
fn node_training_improves_over_initialization() {
    let ds = CitationSpec::pubmed().scaled(0.05).generate(0);
    let mut rng = StdRng::seed_from_u64(0);
    let model = build::node_model_rustyg(ModelKind::Sage, 500, 3, &mut rng);
    let batch = rustyg::loader::full_graph_batch(&ds);

    let untrained = run_node_task(
        &model,
        &batch,
        &ds,
        &NodeTaskConfig {
            max_epochs: 1,
            lr: 1e-3,
        },
    );
    let trained = run_node_task(
        &model,
        &batch,
        &ds,
        &NodeTaskConfig {
            max_epochs: 40,
            lr: 1e-3,
        },
    );
    assert!(
        trained.best_val_acc >= untrained.best_val_acc,
        "{} !>= {}",
        trained.best_val_acc,
        untrained.best_val_acc
    );
    assert!(
        trained.test_acc > 33.4,
        "must beat 3-class chance: {}",
        trained.test_acc
    );
}

#[test]
fn cross_validation_aggregates_multiple_folds() {
    let ds = TudSpec::enzymes().scaled(0.15).generate(1);
    let folds = stratified_kfold(&ds.labels(), 10, 1);
    let loader = RustygLoader::new(&ds);
    let cfg = GraphTaskConfig {
        batch_size: 16,
        init_lr: 1e-3,
        patience: 100,
        decay_factor: 0.5,
        min_lr: 1e-9,
        max_epochs: 3,
        seed: 1,
        shuffle: true,
    };
    let mut accs = Vec::new();
    for (i, fold) in folds.iter().take(3).enumerate() {
        let mut rng = StdRng::seed_from_u64(20 + i as u64);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        let out = run_graph_fold(&model, &loader, fold, &cfg);
        accs.push(out.test_acc);
    }
    let s = mean_std(&accs);
    assert!(s.mean >= 0.0 && s.std >= 0.0);
    assert_eq!(accs.len(), 3);
}

#[test]
fn reports_render_for_every_experiment() {
    let mut cfg = RunConfig::smoke();
    cfg.batch_sizes = [4, 8, 16];
    let t4 = gnn_core::report::table4_report(&runner::table4(&cfg));
    assert!(t4.contains("GatedGCN") && t4.contains("PyG") && t4.contains("DGL"));
    let sweep = runner::profile_sweep(&cfg, runner::GraphDs::Enzymes);
    let fig12 = gnn_core::report::breakdown_report(&sweep);
    assert!(fig12.contains("data_load"));
    let fig45 = gnn_core::report::resources_report(&sweep);
    assert!(fig45.contains("PeakMem"));
    let fig3 = gnn_core::report::layer_report(&runner::layer_times(&cfg));
    assert!(fig3.contains("conv1"));
    let fig6 = gnn_core::report::fig6_report(&runner::multi_gpu(&cfg));
    assert!(fig6.contains("GPUs"));
}

#[test]
fn simulated_epoch_time_is_run_length_invariant() {
    // The simulated per-epoch cost must not depend on how many epochs we
    // run (it is a structural property of the workload).
    let ds = CitationSpec::cora().scaled(0.08).generate(2);
    let mut rng = StdRng::seed_from_u64(1);
    let model = build::node_model_rustyg(ModelKind::Gcn, 1433, 7, &mut rng);
    let batch = rustyg::loader::full_graph_batch(&ds);
    let short = run_node_task(
        &model,
        &batch,
        &ds,
        &NodeTaskConfig {
            max_epochs: 3,
            lr: 0.01,
        },
    );
    let long = run_node_task(
        &model,
        &batch,
        &ds,
        &NodeTaskConfig {
            max_epochs: 12,
            lr: 0.01,
        },
    );
    let rel = (short.epoch_time - long.epoch_time).abs() / long.epoch_time;
    assert!(
        rel < 0.05,
        "epoch time drifted {rel:.3}: {} vs {}",
        short.epoch_time,
        long.epoch_time
    );
}
