//! Tests of the beyond-the-paper extensions: pre-collated batching,
//! prefetch-pipeline model, and no-grad inference mode — each must deliver
//! the improvement it claims.

use gnn_datasets::{stratified_kfold, TudSpec};
use gnn_models::adapt::{CachedRustygLoader, RustygLoader};
use gnn_models::{build, Loader, ModelBatch, ModelKind};
use gnn_train::{run_graph_fold, GraphTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(epochs: usize, shuffle: bool) -> GraphTaskConfig {
    GraphTaskConfig {
        batch_size: 16,
        init_lr: 1e-3,
        patience: 1000,
        decay_factor: 0.5,
        min_lr: 1e-9,
        max_epochs: epochs,
        seed: 0,
        shuffle,
    }
}

#[test]
fn cached_loader_collapses_data_loading() {
    // The paper's conclusion: "more efficient graph batching strategies will
    // greatly speed up GNN training". The cached loader must make later
    // epochs' data-loading phase nearly free.
    let ds = TudSpec::enzymes().scaled(0.15).generate(0);
    let folds = stratified_kfold(&ds.labels(), 10, 0);

    let mut rng = StdRng::seed_from_u64(1);
    let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
    let standard = run_graph_fold(&model, &RustygLoader::new(&ds), &folds[0], &cfg(4, true));

    let mut rng = StdRng::seed_from_u64(1);
    let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
    let cached = run_graph_fold(
        &model,
        &CachedRustygLoader::new(&ds),
        &folds[0],
        &cfg(4, false),
    );

    let std_load = standard.report.phase_times[0];
    let cached_load = cached.report.phase_times[0];
    assert!(
        cached_load < std_load / 2.0,
        "cached loading {cached_load} should be far below standard {std_load}"
    );
    assert!(
        cached.epoch_time < standard.epoch_time,
        "pre-collation must speed the epoch up: {} vs {}",
        cached.epoch_time,
        standard.epoch_time
    );
    // Higher utilization follows from the same device work over less wall
    // time.
    assert!(cached.report.utilization() > standard.report.utilization());
}

#[test]
fn cached_loader_does_not_change_learning() {
    // Fixed batch composition must still train: same model, same folds,
    // accuracies in the same band as the shuffled run.
    let ds = TudSpec::enzymes().scaled(0.2).generate(1);
    let folds = stratified_kfold(&ds.labels(), 10, 1);

    let mut rng = StdRng::seed_from_u64(2);
    let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
    let shuffled = run_graph_fold(&model, &RustygLoader::new(&ds), &folds[0], &cfg(6, true));

    let mut rng = StdRng::seed_from_u64(2);
    let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
    let fixed = run_graph_fold(
        &model,
        &CachedRustygLoader::new(&ds),
        &folds[0],
        &cfg(6, false),
    );

    assert!(
        fixed.test_acc > 16.7,
        "fixed-composition training must beat chance"
    );
    assert!(
        (fixed.test_acc - shuffled.test_acc).abs() < 30.0,
        "accuracies should be in the same band: {} vs {}",
        fixed.test_acc,
        shuffled.test_acc
    );
}

#[test]
fn no_grad_eval_is_cheaper_than_training_forward() {
    let ds = TudSpec::enzymes().scaled(0.15).generate(2);
    let loader = RustygLoader::new(&ds);
    let idx: Vec<u32> = (0..16).collect();
    let mut rng = StdRng::seed_from_u64(3);
    let model = build::graph_model_rustyg(ModelKind::Gat, 18, 6, &mut rng);

    // Training-mode forward + backward: tape built, gradients flow.
    let h =
        gnn_device::session::install(gnn_device::Session::new(gnn_device::CostModel::rtx2080ti()));
    let batch = loader.load(&idx);
    let logits = model.forward(&batch, true);
    gnn_tensor::cross_entropy(&logits, batch.labels()).backward();
    let train_report = gnn_device::session::finish(h);
    for p in model.params() {
        p.zero_grad();
    }

    // Inference under no_grad: no backward kernels at all.
    let h =
        gnn_device::session::install(gnn_device::Session::new(gnn_device::CostModel::rtx2080ti()));
    let batch = loader.load(&idx);
    let logits = gnn_tensor::no_grad(|| model.forward(&batch, false));
    let infer_report = gnn_device::session::finish(h);
    assert!(!logits.needs_grad());
    assert!(
        infer_report.kernel_count < train_report.kernel_count / 2,
        "inference kernels {} should be far below training's {}",
        infer_report.kernel_count,
        train_report.kernel_count
    );
    assert!(infer_report.total_time < train_report.total_time);
}

#[test]
fn pipeline_model_consistent_with_measured_costs() {
    // Compose the prefetch pipeline from measured per-batch costs and check
    // the predicted epoch time sits between the bottleneck bound and the
    // serial time.
    let ds = TudSpec::enzymes().scaled(0.2).generate(3);
    let loader = RustygLoader::new(&ds);
    let idx: Vec<u32> = (0..32).collect();
    let mut rng = StdRng::seed_from_u64(4);
    let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);

    let h =
        gnn_device::session::install(gnn_device::Session::new(gnn_device::CostModel::rtx2080ti()));
    let batch = loader.load(&idx);
    let mut load = 0.0;
    gnn_device::with(|s| load = s.now());
    let logits = model.forward(&batch, true);
    gnn_tensor::cross_entropy(&logits, batch.labels()).backward();
    let total = gnn_device::session::finish(h).total_time;
    let compute = total - load;

    let n = 10;
    let serial = gnn_device::pipeline::serial_epoch_time(load, compute, n);
    let piped = gnn_device::pipeline::pipelined_epoch_time(load, compute, n);
    let bound = n as f64 * load.max(compute);
    assert!(piped <= serial);
    assert!(piped >= bound, "pipeline cannot beat its bottleneck stage");
    let speedup = gnn_device::pipeline::pipeline_speedup(load, compute, n);
    assert!((1.0..=2.0).contains(&speedup), "speedup {speedup}");
}
