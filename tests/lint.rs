//! Conformance suite for `gnn-lint` (the ahead-of-run static analyzer).
//!
//! Two halves:
//!
//! 1. **Clean sweep** — every (model, dataset, framework) cell the paper
//!    reports lints clean at smoke scale, so the reproduction binaries can
//!    gate on `--lint` without false positives.
//! 2. **Seeded defects** — each class of bug the analyzer exists to catch
//!    (wrong hidden dimension, corrupted edge index, frozen parameter,
//!    overlapping timeline kernels, impossible device config) is injected
//!    into an otherwise-clean artifact and must produce exactly the
//!    expected finding, naming the offending op/kernel, with the same
//!    message the runtime would die with.

use gnn_core::RunConfig;
use gnn_lint::{
    audit_tape, data_parallel_schedule, lint_run, lower_stack, FindingKind, GraphBuilder, Lane,
    Rows, Schedule, Slice, StackPlan,
};
use gnn_models::config::{FrameworkKind, ModelKind, ALL_FRAMEWORKS, ALL_MODELS};

// ---------------------------------------------------------------------------
// 1. The paper sweep is lint-clean.
// ---------------------------------------------------------------------------

#[test]
fn all_60_paper_cells_lint_clean_at_smoke_scale() {
    let report = lint_run(&RunConfig::smoke());
    assert!(report.is_clean(), "unexpected findings:\n{report}");
    assert_eq!(report.cells_checked, 60, "12 cells × 5 datasets");
    assert_eq!(report.datasets_checked, 5);
    assert_eq!(
        report.schedules_checked, 16,
        "2 models × 2 fw × 4 GPU counts"
    );
}

#[test]
fn every_cell_lowering_reaches_a_loss_and_has_trainable_params() {
    for model in ALL_MODELS {
        for fw in ALL_FRAMEWORKS {
            for plan in [
                StackPlan::node(model, fw, 1433, 7),
                StackPlan::graph(model, fw, 3, 10),
            ] {
                let g = lower_stack(&plan, "t");
                assert!(g.findings.is_empty(), "{model:?}/{fw:?}: {:?}", g.findings);
                assert!(g.loss.is_some(), "{model:?}/{fw:?} never reaches a loss");
                assert!(g.params().next().is_some());
                assert!(g.param_bytes() > 0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2a. Seeded defect: wrong hidden dimension.
// ---------------------------------------------------------------------------

#[test]
fn wrong_hidden_dim_is_caught_at_the_offending_matmul() {
    let mut plan = StackPlan::node(ModelKind::Gcn, FrameworkKind::RustyG, 1433, 7);
    // Layer 2 claims a 64-wide input while layer 1 produces 80 columns.
    plan.layers[1].in_dim = 64;
    let g = lower_stack(&plan, "table4/Cora/GCN/PyG");
    assert_eq!(g.findings.len(), 1, "{:?}", g.findings);
    let f = &g.findings[0];
    assert_eq!(f.kind, FindingKind::ShapeMismatch);
    assert!(
        f.path.contains("conv2"),
        "path must name the layer: {}",
        f.path
    );
    assert!(
        f.path.ends_with("matmul"),
        "path must name the op: {}",
        f.path
    );
    // Byte-identical to the runtime panic (see shape_error_parity below).
    assert_eq!(
        f.message,
        gnn_tensor::ShapeError::inner_dim("matmul", 80, 64).to_string()
    );
}

#[test]
fn runtime_matmul_panic_matches_the_lint_message() {
    use gnn_tensor::{NdArray, Tensor};
    let a = Tensor::param(NdArray::zeros(2, 80));
    let b = Tensor::param(NdArray::zeros(64, 7));
    let panic_msg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.matmul(&b)))
        .expect_err("mismatched matmul must panic")
        .downcast::<String>()
        .expect("panic payload is the ShapeError rendering");
    assert_eq!(
        *panic_msg,
        gnn_tensor::ShapeError::inner_dim("matmul", 80, 64).to_string()
    );
}

// ---------------------------------------------------------------------------
// 2b. Seeded defect: corrupted edge index.
// ---------------------------------------------------------------------------

#[test]
fn corrupted_edge_index_is_caught_with_the_kernel_message() {
    // `Graph::new` itself rejects bad endpoints, so corrupt the raw halves —
    // the form the batching/loader layers hand the kernels.
    let mut out = vec![];
    gnn_lint::index_check::check_edge_index(&[0, 1, 9], &[1, 2, 0], 3, "table4/Cora", &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].kind, FindingKind::IndexOutOfBounds);
    assert_eq!(out[0].path, "table4/Cora/src");
    assert!(
        out[0]
            .message
            .contains("gather_rows index out of bounds (n = 3)"),
        "{}",
        out[0].message
    );

    let mut out = vec![];
    gnn_lint::index_check::check_edge_index(&[0, 1, 2], &[1, 9, 0], 3, "table4/Cora", &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].path, "table4/Cora/dst");
    assert!(
        out[0]
            .message
            .contains("scatter_add_rows index out of bounds (out_rows = 3)"),
        "{}",
        out[0].message
    );
}

// ---------------------------------------------------------------------------
// 2c. Seeded defect: frozen parameter / dead weight.
// ---------------------------------------------------------------------------

#[test]
fn frozen_parameter_is_reported_as_dead() {
    let mut b = GraphBuilder::with_prefix("table4/Cora/GCN/PyG");
    let x = b.input("x", Rows::Nodes, 4);
    let w = b.frozen_param("conv1.w", 4, 7);
    let h = b.matmul(x, w);
    let labels = b.index_input("labels", Rows::Nodes, Rows::Const(7));
    b.cross_entropy(h, labels, 7);
    let g = b.finish();

    let mut out = vec![];
    audit_tape(&g, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].kind, FindingKind::DeadParameter);
    assert!(out[0].path.contains("conv1.w"), "{}", out[0].path);
    assert!(
        out[0].message.contains("requires_grad = false"),
        "{}",
        out[0].message
    );
}

#[test]
fn parameter_detached_from_the_loss_is_reported() {
    let mut b = GraphBuilder::with_prefix("t");
    let x = b.input("x", Rows::Nodes, 4);
    let w = b.param("conv1.w", 4, 7);
    let h = b.matmul(x, w);
    // A second weight that never feeds the loss.
    let _orphan = b.param("conv2.w", 7, 7);
    let labels = b.index_input("labels", Rows::Nodes, Rows::Const(7));
    b.cross_entropy(h, labels, 7);
    let g = b.finish();

    let mut out = vec![];
    audit_tape(&g, &mut out);
    assert!(
        out.iter()
            .any(|f| f.kind == FindingKind::DeadParameter && f.path.contains("conv2.w")),
        "{out:?}"
    );
}

// ---------------------------------------------------------------------------
// 2d. Seeded defect: overlapping timeline kernels.
// ---------------------------------------------------------------------------

#[test]
fn overlapping_kernels_on_one_stream_are_reported() {
    let sched = Schedule {
        slices: vec![
            Slice::new("gemm", Lane::Stream(0), 0.0, 2.0),
            Slice::new("scatter_add", Lane::Stream(0), 1.5, 3.0),
        ],
    };
    let mut out = vec![];
    sched.check("fig6/GCN/PyG/gpus1", &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].kind, FindingKind::TimelineOverlap);
    // The finding names both offending kernels.
    assert!(out[0].message.contains("gemm"), "{}", out[0].message);
    assert!(out[0].message.contains("scatter_add"), "{}", out[0].message);
}

#[test]
fn concurrent_write_to_a_shared_buffer_is_a_race() {
    let sched = Schedule {
        slices: vec![
            Slice::new("compute0", Lane::Stream(0), 0.0, 2.0).writing(["grads"]),
            Slice::new("reduce", Lane::Stream(1), 1.0, 3.0).reading(["grads"]),
        ],
    };
    let mut out = vec![];
    sched.check("fig6/GCN/PyG/gpus2", &mut out);
    assert!(
        out.iter()
            .any(|f| f.kind == FindingKind::BufferRace && f.path == "fig6/GCN/PyG/gpus2/grads"),
        "{out:?}"
    );
}

// ---------------------------------------------------------------------------
// 2e. Seeded defect: impossible device config (typed, not a panic).
// ---------------------------------------------------------------------------

#[test]
fn zero_gpu_config_is_a_typed_error_everywhere() {
    use gnn_device::{DataParallel, MultiGpuError, PcieModel, StepCost};
    let dp = DataParallel {
        n_gpus: 0,
        pcie: PcieModel::pcie3_x16(),
        param_bytes: 1024,
    };
    let step = StepCost {
        host_load: 1e-3,
        input_bytes: 1024,
        compute: 1e-3,
        output_bytes: 128,
        update: 1e-4,
    };
    // The schedule builder and the runtime epoch estimator agree on the
    // rejection instead of dividing by zero.
    assert_eq!(
        data_parallel_schedule(&dp, &step),
        Err(MultiGpuError::ZeroGpus)
    );
    assert_eq!(dp.epoch_time(&step, 10), Err(MultiGpuError::ZeroGpus));
    let one = DataParallel::new(1, 1024);
    assert_eq!(one.epoch_time(&step, 0), Err(MultiGpuError::ZeroSteps));
}

// ---------------------------------------------------------------------------
// The schedule model prices exactly like the runtime estimator.
// ---------------------------------------------------------------------------

#[test]
fn lint_schedules_price_identically_to_the_runtime_step_model() {
    use gnn_device::{DataParallel, StepCost};
    let step = StepCost {
        host_load: 5e-3,
        input_bytes: 2_000_000,
        compute: 2e-3,
        output_bytes: 40_000,
        update: 1e-4,
    };
    for n in [1usize, 2, 4, 8] {
        let dp = DataParallel::new(n, 500_000);
        let sched = data_parallel_schedule(&dp, &step).unwrap();
        let mut out = vec![];
        sched.check("t", &mut out);
        assert!(out.is_empty(), "gpus{n}: {out:?}");
        assert!(
            (sched.makespan() - dp.step_time(&step)).abs() < 1e-9,
            "gpus{n}: schedule {} != step_time {}",
            sched.makespan(),
            dp.step_time(&step)
        );
    }
}
