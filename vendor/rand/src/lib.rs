//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and no
//! crates-io mirror, so the handful of `rand` 0.8 APIs the study uses are
//! reimplemented here and wired in through a path dependency. The surface is
//! intentionally minimal: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the reproduction suite requires. The
//! stream differs from upstream `rand`'s ChaCha12-based `StdRng`, so runs
//! are reproducible *within* this workspace but not bit-identical to runs
//! made against crates-io `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform [0, 1) at full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state, for exact checkpointing.
        ///
        /// Restoring via [`StdRng::from_state`] continues the stream at
        /// precisely the next draw — checkpoint/resume machinery depends on
        /// this being bit-exact.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro cannot leave.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro state must not be all-zero");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(3);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(vals.iter().any(|&v| v < 0.05) && vals.iter().any(|&v| v > 0.95));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!([1u32; 0].choose(&mut rng).is_none());
    }

    #[test]
    fn unsized_rng_receivers_work() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
