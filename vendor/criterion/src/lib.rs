//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark runs a warm-up pass and a timed pass and
//! prints `name: mean time / iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; defeats constant folding around benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark named only by a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Benchmark named `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark body repeatedly and records the mean time.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    /// Mean seconds per iteration of the last `iter` call.
    last_mean: f64,
}

impl Bencher {
    /// Times `f`, first warming up briefly, then iterating for roughly the
    /// configured measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.measurement_time / 10 || warmup_iters < 1 {
            black_box(f());
            warmup_iters += 1;
        }
        let est = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target = self.measurement_time.as_secs_f64();
        // At least `sample_size` timed iterations, at most the measurement
        // window allows (bounded to keep fast bodies from spinning forever).
        let iters = ((target / est.max(1e-9)) as u64)
            .clamp(self.sample_size as u64, 1_000_000)
            .max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_mean = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as the benchmark `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
            last_mean: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Runs `f` with `input` as the benchmark `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
            last_mean: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
    }

    fn report(&self, id: &str, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.last_mean > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / b.last_mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if b.last_mean > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 / b.last_mean / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {}{rate}", self.name, fmt_time(b.last_mean));
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (accepted for API parity).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark. This subset warms up for a
    /// fixed fraction of the measurement window, so the duration is
    /// accepted for API compatibility and otherwise ignored.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            last_mean: 0.0,
        };
        f(&mut b);
        println!("{id}: {}", fmt_time(b.last_mean));
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default().measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_group_runs_bodies() {
        let mut c = quick();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_function("accumulate", |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
            g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(runs > 0, "benchmark body never ran");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("mm", 128).to_string(), "mm/128");
    }

    criterion_group!(smoke_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        // The group fn takes no args and drives its targets.
        smoke_group();
    }
}
