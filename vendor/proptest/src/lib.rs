//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so this crate provides
//! the subset of proptest 1.x the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`collection::vec`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Semantics are simplified: cases are sampled from a deterministic
//! generator (no persisted failure seeds) and failures are reported
//! without shrinking. That retains the *checking* power of the property
//! suites — every case still runs against the real implementation — while
//! keeping the crate self-contained.

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Test-runner plumbing (the deterministic case generator).
pub mod test_runner {
    /// Deterministic case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed generator; every test run samples the same cases.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5DEE_CE66_D0F1_5A0B,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact length or a range,
    /// mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive upper bound.
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Vector of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]` (the attribute is written at the call site, as in upstream
/// proptest) that samples `cases` inputs and runs the body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic();
            for __proptest_case in 0..config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng),)+
                );
                let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = __proptest_result {
                    panic!("property failed at case {}: {}", __proptest_case, msg);
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u32, Vec<f64>)> {
        (0u32..50).prop_flat_map(|n| (Just(n), crate::collection::vec(0.0f64..1.0, 0..8)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_flat_map((n, v) in pair_strategy()) {
            prop_assert!(n < 50);
            prop_assert!(v.len() < 8);
            for &x in &v {
                prop_assert!((0.0..1.0).contains(&x), "element {x} out of range");
            }
        }

        #[test]
        fn map_and_assume(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            let doubled = Just(n)
                .prop_map(|v| v * 2)
                .sample(&mut crate::test_runner::TestRng::deterministic());
            prop_assert_eq!(doubled, n * 2);
            prop_assert_ne!(doubled + 1, n * 2);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_are_reported() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is not large");
            }
        }
        inner();
    }
}
