//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Always produces a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_tuple_sampling() {
        let mut rng = TestRng::deterministic();
        let s = (0u32..4, -1.0f64..1.0, Just("x"));
        for _ in 0..200 {
            let (a, b, c) = s.sample(&mut rng);
            assert!(a < 4);
            assert!((-1.0..1.0).contains(&b));
            assert_eq!(c, "x");
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec(0u8..3, 2..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }
}
