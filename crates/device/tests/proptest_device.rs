//! Property-based tests of the device model's invariants.

use gnn_device::multi::{DataParallel, StepCost};
use gnn_device::{CostModel, Kernel, KernelKind, MemoryTracker, Timeline};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    (0u64..10_000_000, 0u64..10_000_000, 0usize..8).prop_map(|(flops, bytes, kind)| {
        let kinds = [
            KernelKind::Gemm,
            KernelKind::Elementwise,
            KernelKind::Reduction,
            KernelKind::Gather,
            KernelKind::Scatter,
            KernelKind::Segment,
            KernelKind::SpMM,
            KernelKind::SDDMM,
        ];
        Kernel::new("k", kinds[kind], flops, bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Kernel time is positive and monotone in both flops and bytes.
    #[test]
    fn kernel_time_monotone(k in kernel_strategy(), extra in 1u64..1_000_000) {
        let m = CostModel::rtx2080ti();
        let base = m.kernel_time(&k);
        prop_assert!(base > 0.0);
        let more_flops = Kernel::new("k", k.kind, k.flops + extra, k.bytes);
        let more_bytes = Kernel::new("k", k.kind, k.flops, k.bytes + extra);
        prop_assert!(m.kernel_time(&more_flops) >= base);
        prop_assert!(m.kernel_time(&more_bytes) >= base);
    }

    /// Timeline: busy time never exceeds device-frontier time; host clock
    /// is monotone; utilization stays in [0, 1].
    #[test]
    fn timeline_invariants(
        ops in proptest::collection::vec((0u8..2, 0.0f64..1e-3), 1..60),
    ) {
        let mut t = Timeline::new();
        let mut last_now = 0.0;
        for (kind, dur) in ops {
            match kind {
                0 => t.host(dur),
                _ => {
                    t.launch(1e-6, dur);
                }
            }
            prop_assert!(t.now() >= last_now, "host clock must be monotone");
            last_now = t.now();
            prop_assert!(t.busy() <= t.device_free() + 1e-12);
        }
        t.sync();
        prop_assert!(t.now() >= t.device_free() - 1e-15);
        let util = t.utilization_over(0.0, t.now(), 0.0);
        prop_assert!((0.0..=1.0).contains(&util));
        prop_assert!(t.busy() <= t.now() + 1e-12, "can't be busier than elapsed");
    }

    /// Memory: peak is monotone over any allocation sequence and at least
    /// the final current value.
    #[test]
    fn memory_peak_monotone(
        ops in proptest::collection::vec((0u8..3, 1u64..10_000), 1..50),
    ) {
        let mut m = MemoryTracker::new();
        let mut last_peak = 0;
        for (kind, bytes) in ops {
            match kind {
                0 => m.alloc(bytes),
                1 => m.free(bytes),
                _ => m.end_step(),
            }
            prop_assert!(m.peak() >= last_peak, "peak must never decrease");
            prop_assert!(m.peak() >= m.current());
            last_peak = m.peak();
        }
    }

    /// DataParallel: per-step time is monotone in every cost component and
    /// strictly increases with replica count when compute is held constant.
    #[test]
    fn data_parallel_monotone(
        host_load in 0.0f64..0.1,
        compute in 0.0f64..0.1,
        input in 0u64..100_000_000,
        params in 0u64..50_000_000,
        gpus in 1usize..8,
    ) {
        let step = StepCost {
            host_load,
            input_bytes: input,
            compute,
            output_bytes: 1000,
            update: 0.0,
        };
        let dp = DataParallel::new(gpus, params);
        let t = dp.step_time(&step);
        prop_assert!(t >= host_load + compute);
        let dp_more = DataParallel::new(gpus + 1, params);
        prop_assert!(
            dp_more.step_time(&step) > t,
            "more replicas with equal shard compute must cost more"
        );
        let bigger = StepCost { compute: compute + 0.01, ..step };
        prop_assert!(dp.step_time(&bigger) > t);
    }

    /// Sessions: total time >= busy time; phase times sum to total.
    #[test]
    fn session_accounting_consistent(
        ks in proptest::collection::vec(kernel_strategy(), 1..30),
        host in 0.0f64..1e-2,
    ) {
        let mut s = gnn_device::Session::new(CostModel::rtx2080ti());
        s.set_phase(gnn_device::Phase::Forward);
        for k in ks {
            s.record(k);
        }
        s.host(host);
        let report = s.into_report();
        prop_assert!(report.total_time >= report.busy_time - 1e-12);
        let sum: f64 = report.phase_times.iter().sum();
        prop_assert!((sum - report.total_time).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&report.utilization()));
    }
}
