//! Single-stream execution timeline.
//!
//! Models the interaction of a host thread issuing kernels to one CUDA-like
//! stream. The host clock (`now`) advances with launch overheads and pure
//! host work (e.g. mini-batch collation); the device executes kernels in
//! issue order, each starting no earlier than both its issue time and the
//! completion of the previous kernel. `sync` joins the host to the device,
//! which is what happens at phase boundaries (loss readback, optimizer step
//! boundaries) in the real frameworks.

/// A host + single device stream clock pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Host wall-clock, in seconds since timeline start.
    now: f64,
    /// Time at which the device stream becomes free.
    device_free: f64,
    /// Accumulated device busy time.
    busy: f64,
    /// Number of kernels launched.
    kernels: u64,
}

impl Timeline {
    /// Creates a timeline at t = 0 with an idle device.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Current host time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Time at which the device finishes all queued work.
    pub fn device_free(&self) -> f64 {
        self.device_free
    }

    /// Total accumulated device busy time.
    pub fn busy(&self) -> f64 {
        self.busy
    }

    /// Number of kernels launched so far.
    pub fn kernel_count(&self) -> u64 {
        self.kernels
    }

    /// Advances the host clock by `seconds` of pure host work.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn host(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid host time {seconds}"
        );
        self.now += seconds;
    }

    /// Issues a kernel: costs the host `launch` seconds, then schedules
    /// `duration` seconds of device work behind any queued kernels.
    /// Returns the `[start, end]` interval the kernel occupies on the
    /// device stream (used by the tracing layer for kernel slices).
    pub fn launch(&mut self, launch: f64, duration: f64) -> (f64, f64) {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid kernel time {duration}"
        );
        self.host(launch);
        let start = self.device_free.max(self.now);
        self.device_free = start + duration;
        self.busy += duration;
        self.kernels += 1;
        (start, self.device_free)
    }

    /// The time a [`Timeline::sync`] would land at, without performing one:
    /// the later of the host clock and the device drain time. Non-mutating,
    /// so observability code can timestamp events without perturbing the
    /// simulation.
    pub fn horizon(&self) -> f64 {
        self.now.max(self.device_free)
    }

    /// Joins host to device (cudaStreamSynchronize).
    pub fn sync(&mut self) {
        self.now = self.now.max(self.device_free);
    }

    /// Utilization over `[start, end]`: fraction of wall time the device was
    /// busy. Returns 0 for an empty window.
    pub fn utilization_over(&self, start: f64, end: f64, busy_at_start: f64) -> f64 {
        let wall = end - start;
        if wall <= 0.0 {
            return 0.0;
        }
        ((self.busy - busy_at_start) / wall).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_work_advances_clock() {
        let mut t = Timeline::new();
        t.host(1.5);
        assert_eq!(t.now(), 1.5);
        assert_eq!(t.busy(), 0.0);
    }

    #[test]
    fn kernels_queue_back_to_back() {
        let mut t = Timeline::new();
        // Two instant launches: kernels serialize on the device.
        t.launch(0.0, 1.0);
        t.launch(0.0, 1.0);
        assert_eq!(t.device_free(), 2.0);
        assert_eq!(t.now(), 0.0);
        t.sync();
        assert_eq!(t.now(), 2.0);
        assert_eq!(t.busy(), 2.0);
        assert_eq!(t.kernel_count(), 2);
    }

    #[test]
    fn launch_bound_regime_leaves_device_idle() {
        let mut t = Timeline::new();
        // Launch cost far exceeds kernel time: host is the bottleneck.
        for _ in 0..10 {
            t.launch(10e-6, 1e-6);
        }
        t.sync();
        let util = t.utilization_over(0.0, t.now(), 0.0);
        assert!(util < 0.25, "expected low utilization, got {util}");
    }

    #[test]
    fn device_bound_regime_high_utilization() {
        let mut t = Timeline::new();
        for _ in 0..10 {
            t.launch(1e-6, 100e-6);
        }
        t.sync();
        let util = t.utilization_over(0.0, t.now(), 0.0);
        assert!(util > 0.95, "expected high utilization, got {util}");
    }

    #[test]
    fn kernel_waits_for_late_host_issue() {
        let mut t = Timeline::new();
        t.launch(0.0, 1.0); // device busy until 1.0
        t.host(5.0); // host does other work until 5.0
        t.launch(0.0, 1.0); // issued at 5.0, device idle since 1.0
        assert_eq!(t.device_free(), 6.0);
        assert_eq!(t.busy(), 2.0);
    }

    #[test]
    fn utilization_empty_window_is_zero() {
        let t = Timeline::new();
        assert_eq!(t.utilization_over(1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid host time")]
    fn negative_host_time_panics() {
        Timeline::new().host(-1.0);
    }
}
