//! Simulated GPU device model for the GNN framework performance study.
//!
//! The original paper ("Performance Analysis of Graph Neural Network
//! Frameworks", ISPASS 2021) profiles CUDA kernels on an NVIDIA RTX 2080Ti
//! with `nvprof`/Nsight and reads GPU memory from `nvidia-smi`. This crate is
//! the substitute substrate: a deterministic, analytical device model that the
//! tensor engine (`gnn-tensor`) reports every kernel launch, host-side
//! operation, and memory allocation to.
//!
//! The key property is that **kernel counts, kinds, and shapes are real** —
//! they are emitted by the actual Rust execution of each model under each
//! framework — and only their *durations* come from a roofline cost model
//! calibrated once against the 2080Ti. Utilization, memory, and time-breakdown
//! results are therefore structural consequences of how each framework
//! executes, not hard-coded numbers.
//!
//! # Architecture
//!
//! - [`kernel::Kernel`] — a device kernel launch descriptor (kind, flops, bytes).
//! - [`cost::CostModel`] — roofline timing: `launch + max(flops/peak, bytes/bw)`.
//! - [`counters`] — analytical hardware counters per launch: FLOPs, split
//!   DRAM traffic, arithmetic intensity, boundness, and attained roofline
//!   fraction, plus the per-kind formula registry the lint checks.
//! - [`timeline::Timeline`] — a single-stream execution timeline with a host
//!   clock and a device-free clock; tracks busy time for utilization.
//! - [`memory::MemoryTracker`] — a caching-allocator-style tracker with
//!   persistent (parameter) and per-step (activation) segments and peak watermark.
//! - [`session::Session`] — combines the above with training-phase attribution
//!   (data loading / forward / backward / update / other) and named layer scopes.
//! - [`multi`] — PCIe transfer model and `DataParallel`-style multi-GPU epoch
//!   composition used by the Fig. 6 reproduction.
//!
//! # Example
//!
//! ```
//! use gnn_device::{session, CostModel, Kernel, Phase, Session};
//!
//! let s = session::install(Session::new(CostModel::rtx2080ti()));
//! session::set_phase(Phase::Forward);
//! session::record(Kernel::gemm("linear", 1024, 256, 128));
//! session::set_phase(Phase::Other);
//! let report = session::finish(s);
//! assert_eq!(report.kernel_count, 1);
//! assert!(report.phase_time(Phase::Forward) > 0.0);
//! ```

pub mod cost;
pub mod counters;
pub mod feature_cache;
pub mod kernel;
pub mod memory;
pub mod multi;
pub mod pipeline;
pub mod session;
pub mod timeline;

pub use cost::{
    component_label, CostModel, Speedups, COMPONENT_HOST, COMPONENT_LAUNCH, PRICED_KINDS,
    WHATIF_COMPONENTS,
};
pub use counters::{Bound, CounterFormula, KernelCounters};
pub use feature_cache::{FeatureCache, FetchStats};
pub use kernel::{Kernel, KernelKind};
pub use memory::MemoryTracker;
pub use multi::{DataParallel, MultiGpuError, PcieModel, StepCost};
pub use session::{
    default_cost_model, with_default_cost_model, DeviceReport, KindProfile, Phase, Session,
    SessionError,
};
pub use timeline::Timeline;

/// Convenience re-export of the free functions that tensor/framework code
/// calls on the thread-local session. All of them are no-ops when no session
/// is installed, so library code can be instrumented unconditionally.
pub use session::{alloc, free, host, record, scope, set_phase, sim_now, traced, with};
