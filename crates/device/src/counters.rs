//! Analytical hardware counters: FLOPs, DRAM traffic, arithmetic intensity,
//! and roofline attribution per kernel launch.
//!
//! The source paper reads these from `nvprof`; the follow-up study
//! ("Characterizing the Efficiency of GNN Frameworks with a Magnifying
//! Glass") shows the framework gaps live in memory traffic and arithmetic
//! intensity rather than raw FLOPs. Here the counters are derived
//! analytically from the same [`Kernel`] descriptors the cost model prices,
//! so every traced slice can carry the full counter set at zero simulation
//! cost: [`CostModel::counters`] never touches the timeline.
//!
//! Two layers:
//!
//! - [`KernelCounters`] — per-launch derived counters: work, split traffic,
//!   intensity, boundness class, and attained roofline fraction.
//! - [`CounterFormula`] — a static registry documenting, per
//!   [`KernelKind`], where the work counts come from and how DRAM traffic
//!   splits into reads and writes. The `counter-coverage` lint checks this
//!   registry against [`crate::cost::PRICED_KINDS`] so pricing a kind
//!   without a formula fails ahead of run.

use crate::cost::{CostModel, PRICED_KINDS};
use crate::kernel::{Kernel, KernelKind};

/// Which roofline resource bounds a kernel's duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// The compute leg dominates: duration ≈ flops / effective FLOP rate.
    Compute,
    /// The traffic leg dominates: duration ≈ bytes / effective bandwidth.
    Bandwidth,
    /// The fixed per-kernel overhead exceeds both legs (tiny kernels — the
    /// launch-bound regime the paper's utilization numbers expose).
    Overhead,
}

impl Bound {
    /// Stable label used in trace args and reports.
    pub fn label(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Bandwidth => "bandwidth",
            Bound::Overhead => "overhead",
        }
    }
}

/// Derived counters for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCounters {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
    /// Arithmetic intensity in FLOP/byte (0 for traffic-free kernels).
    pub intensity: f64,
    /// Device duration in seconds — identical to
    /// [`CostModel::kernel_time`], so deriving counters cannot drift from
    /// the priced duration.
    pub duration: f64,
    /// Which roofline resource bounds the duration.
    pub bound: Bound,
    /// Attained fraction of the binding *peak* rate over the kernel's
    /// duration: `max(flops/dur/peak_flops, bytes/dur/peak_bw)`, clamped
    /// to `[0, 1]`. Low values on the binding leg are efficiency losses
    /// (irregular access, overhead), exactly what the roofline plot shows.
    pub roofline: f64,
}

impl KernelCounters {
    /// Total DRAM traffic in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// How one kernel kind's counters derive from its launch descriptor.
///
/// The `flops`/`bytes` strings document the closed-form expressions the
/// [`Kernel`] constructors use; `read_fraction` is the representative share
/// of DRAM traffic that is reads (the constructors fold reads and writes
/// into one `bytes` figure, so the split is a per-kind constant rather than
/// per-launch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterFormula {
    /// The kernel kind this formula covers.
    pub kind: KernelKind,
    /// Closed form of the FLOP count.
    pub flops: &'static str,
    /// Closed form of the DRAM byte count.
    pub bytes: &'static str,
    /// Fraction of traffic that is reads, in `[0, 1]`.
    pub read_fraction: f64,
}

/// The counter formula registry, one entry per priced kernel kind.
///
/// Read fractions follow the constructors' traffic models: a GEMM streams
/// two input operands per output (2/3 reads); a scatter-add reads source
/// and destination and writes the destination back (2/3); a gather reads
/// source rows + indices and writes the same volume out (~1/2); reductions
/// and segment ops read far more than they write.
pub const FORMULAS: [CounterFormula; 11] = [
    CounterFormula {
        kind: KernelKind::Gemm,
        flops: "2*m*k*n",
        bytes: "4*(m*k + k*n + m*n)",
        read_fraction: 2.0 / 3.0,
    },
    CounterFormula {
        kind: KernelKind::Elementwise,
        flops: "elems * ops_per_elem",
        bytes: "4 * elems * streams",
        read_fraction: 0.6,
    },
    CounterFormula {
        kind: KernelKind::Reduction,
        flops: "elems",
        bytes: "4 * (elems + outputs)",
        read_fraction: 0.95,
    },
    CounterFormula {
        kind: KernelKind::Gather,
        flops: "0",
        bytes: "8*rows*cols + 4*rows",
        read_fraction: 0.5,
    },
    CounterFormula {
        kind: KernelKind::Scatter,
        flops: "rows*cols",
        bytes: "12*rows*cols + 4*rows",
        read_fraction: 2.0 / 3.0,
    },
    CounterFormula {
        kind: KernelKind::Segment,
        flops: "rows*cols",
        bytes: "4*(rows*cols + segments*cols) + 4*rows",
        read_fraction: 0.85,
    },
    CounterFormula {
        kind: KernelKind::Softmax,
        flops: "~4*elems (max, sub-exp, sum, div)",
        bytes: "4*elems*(read passes + write)",
        read_fraction: 0.65,
    },
    CounterFormula {
        kind: KernelKind::Norm,
        flops: "~3*elems (stats + apply)",
        bytes: "4*elems*(2 reads + 1 write)",
        read_fraction: 0.7,
    },
    CounterFormula {
        kind: KernelKind::SpMM,
        flops: "nnz*cols",
        bytes: "8*nnz*cols + 8*nnz (fused gather+reduce)",
        read_fraction: 0.75,
    },
    CounterFormula {
        kind: KernelKind::SDDMM,
        flops: "nnz*cols",
        bytes: "8*nnz*cols + 4*nnz (two endpoint reads, edge write)",
        read_fraction: 0.8,
    },
    CounterFormula {
        kind: KernelKind::Transfer,
        flops: "0",
        bytes: "payload bytes",
        read_fraction: 0.5,
    },
];

/// Looks up the counter formula for `kind`.
pub fn formula(kind: KernelKind) -> Option<&'static CounterFormula> {
    FORMULAS.iter().find(|f| f.kind == kind)
}

impl CostModel {
    /// Derives the full counter set for one kernel launch.
    ///
    /// Pure and non-mutating: the duration is exactly
    /// [`CostModel::kernel_time`], so instrumentation that calls this can
    /// never perturb the simulation.
    pub fn counters(&self, kernel: &Kernel) -> KernelCounters {
        let (compute, traffic) = self.roofline_terms(kernel);
        let duration = self.kernel_time(kernel);
        let bound = if self.kernel_overhead >= compute.max(traffic) {
            Bound::Overhead
        } else if compute >= traffic {
            Bound::Compute
        } else {
            Bound::Bandwidth
        };
        let read_fraction = formula(kernel.kind).map_or(0.5, |f| f.read_fraction);
        let bytes_read = (kernel.bytes as f64 * read_fraction).round() as u64;
        let bytes_written = kernel.bytes - bytes_read.min(kernel.bytes);
        let intensity = if kernel.bytes == 0 {
            0.0
        } else {
            kernel.flops as f64 / kernel.bytes as f64
        };
        let roofline = if duration <= 0.0 {
            0.0
        } else {
            let flop_frac = kernel.flops as f64 / duration / self.peak_flops;
            let bw_frac = kernel.bytes as f64 / duration / self.peak_bw;
            flop_frac.max(bw_frac).clamp(0.0, 1.0)
        };
        KernelCounters {
            flops: kernel.flops,
            bytes_read,
            bytes_written,
            intensity,
            duration,
            bound,
            roofline,
        }
    }
}

/// Returns the priced kinds that have no entry in the formula registry.
/// The `counter-coverage` lint fails when this is non-empty.
pub fn uncovered_kinds() -> Vec<KernelKind> {
    PRICED_KINDS
        .into_iter()
        .filter(|k| formula(*k).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_priced_kind_has_a_formula() {
        assert!(uncovered_kinds().is_empty());
        for kind in PRICED_KINDS {
            let f = formula(kind).unwrap();
            assert!((0.0..=1.0).contains(&f.read_fraction), "{:?}", kind);
            assert!(!f.flops.is_empty() && !f.bytes.is_empty());
        }
    }

    #[test]
    fn big_gemm_is_compute_bound_with_high_roofline() {
        let m = CostModel::rtx2080ti();
        let c = m.counters(&Kernel::gemm("mm", 4096, 4096, 4096));
        assert_eq!(c.bound, Bound::Compute);
        // Attained fraction equals the GEMM compute efficiency factor.
        let (eff, _) = m.efficiency(KernelKind::Gemm);
        assert!((c.roofline - eff).abs() < 0.01, "roofline {}", c.roofline);
        assert!(c.intensity > 100.0);
    }

    #[test]
    fn scatter_is_bandwidth_bound() {
        let m = CostModel::rtx2080ti();
        let c = m.counters(&Kernel::scatter("sc", 1_000_000, 64));
        assert_eq!(c.bound, Bound::Bandwidth);
        let (_, bw_eff) = m.efficiency(KernelKind::Scatter);
        assert!((c.roofline - bw_eff).abs() < 0.01);
        assert!(c.intensity < 1.0);
    }

    #[test]
    fn tiny_kernel_is_overhead_bound() {
        let m = CostModel::rtx2080ti();
        let c = m.counters(&Kernel::elementwise("relu", 8, 1, 2));
        assert_eq!(c.bound, Bound::Overhead);
        assert!(c.roofline < 0.01);
    }

    #[test]
    fn byte_split_sums_to_total_traffic() {
        let m = CostModel::rtx2080ti();
        for k in [
            Kernel::gemm("mm", 128, 64, 32),
            Kernel::gather("g", 1000, 64),
            Kernel::scatter("s", 1000, 64),
            Kernel::segment("seg", 1000, 64, 100),
            Kernel::transfer("h2d", 1 << 20),
        ] {
            let c = m.counters(&k);
            assert_eq!(c.bytes(), k.bytes, "{}", k.name);
        }
    }

    #[test]
    fn duration_matches_priced_kernel_time_exactly() {
        let m = CostModel::rtx2080ti();
        for k in [
            Kernel::gemm("mm", 128, 64, 32),
            Kernel::elementwise("relu", 10_000, 1, 2),
            Kernel::transfer("h2d", 1 << 20),
        ] {
            assert_eq!(m.counters(&k).duration, m.kernel_time(&k), "{}", k.name);
        }
    }

    #[test]
    fn roofline_is_always_a_fraction() {
        let m = CostModel::rtx2080ti();
        for k in [
            Kernel::gemm("mm", 1, 1, 1),
            Kernel::gemm("mm", 8192, 8192, 8192),
            Kernel::transfer("h2d", 1 << 30),
            Kernel::new("zero", KernelKind::Reduction, 0, 0),
        ] {
            let r = m.counters(&k).roofline;
            assert!((0.0..=1.0).contains(&r), "{} roofline {}", k.name, r);
        }
    }

    #[test]
    fn bound_labels_are_distinct() {
        let labels = [
            Bound::Compute.label(),
            Bound::Bandwidth.label(),
            Bound::Overhead.label(),
        ];
        assert_eq!(
            labels.len(),
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }
}
