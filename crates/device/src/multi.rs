//! Multi-GPU data-parallel simulation.
//!
//! Models `torch.nn.DataParallel`, which is what both frameworks use in the
//! paper's Section IV-E: each step the host collates the full mini-batch,
//! scatters input chunks to every replica over PCIe, broadcasts parameters,
//! runs forward/backward on each device, gathers outputs, and reduces
//! gradients back to device 0. Host-side data loading is *not* parallelized —
//! the root cause of the paper's observation that going from 4 to 8 GPUs
//! brings no improvement (and sometimes a regression from transfer overhead).

use std::fmt;

/// Why a data-parallel configuration is rejected before any simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiGpuError {
    /// `n_gpus == 0`: there is no device to schedule on.
    ZeroGpus,
    /// `n_steps == 0`: an epoch with no steps has no defined schedule.
    ZeroSteps,
}

impl fmt::Display for MultiGpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiGpuError::ZeroGpus => write!(f, "data-parallel config needs at least one GPU"),
            MultiGpuError::ZeroSteps => {
                write!(f, "data-parallel epoch needs at least one step")
            }
        }
    }
}

impl std::error::Error for MultiGpuError {}

/// PCIe link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Effective bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-transfer latency in seconds.
    pub latency: f64,
}

impl PcieModel {
    /// PCIe 3.0 x16 with realistic effective bandwidth (~12 GB/s of the
    /// 15.75 GB/s theoretical) and DMA setup latency.
    pub fn pcie3_x16() -> Self {
        PcieModel {
            bandwidth: 12.0e9,
            latency: 20.0e-6,
        }
    }

    /// Time to move `bytes` over the link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

impl Default for PcieModel {
    fn default() -> Self {
        PcieModel::pcie3_x16()
    }
}

/// Configuration of a simulated `DataParallel` setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataParallel {
    /// Number of replicas (GPUs).
    pub n_gpus: usize,
    /// Interconnect model.
    pub pcie: PcieModel,
    /// Total model parameter bytes (broadcast + gradient-reduce volume).
    pub param_bytes: u64,
}

/// Per-step cost inputs for one mini-batch.
///
/// `compute` is the forward+backward device time for *one replica's share*
/// (batch / n_gpus); callers measure it by running the real model on a
/// sub-batch under a throwaway [`crate::Session`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// Host-side batch collation time (serialized, never parallelized).
    pub host_load: f64,
    /// Bytes of input features/topology for the whole batch.
    pub input_bytes: u64,
    /// Device forward+backward time for one replica's sub-batch.
    pub compute: f64,
    /// Bytes of outputs gathered back to device 0.
    pub output_bytes: u64,
    /// Optimizer update time on device 0.
    pub update: f64,
}

impl DataParallel {
    /// Creates a config over PCIe 3.0 x16.
    pub fn new(n_gpus: usize, param_bytes: u64) -> Self {
        assert!(n_gpus >= 1, "need at least one GPU");
        DataParallel {
            n_gpus,
            pcie: PcieModel::pcie3_x16(),
            param_bytes,
        }
    }

    /// Checks the configuration is well-formed (at least one replica).
    ///
    /// The timeline-hazard pass in `gnn-lint` relies on this invariant when
    /// expanding a config into a kernel/transfer schedule.
    pub fn validate(&self) -> Result<(), MultiGpuError> {
        if self.n_gpus == 0 {
            return Err(MultiGpuError::ZeroGpus);
        }
        Ok(())
    }

    /// Simulated wall time of one training step.
    pub fn step_time(&self, step: &StepCost) -> f64 {
        let n = self.n_gpus as f64;
        // Scatter: the full input crosses the host link once, plus one DMA
        // setup per replica chunk.
        let scatter =
            self.n_gpus as f64 * self.pcie.latency + step.input_bytes as f64 / self.pcie.bandwidth;
        // Replicate: DataParallel broadcasts module parameters every step to
        // replicas 1..n.
        let replicate = (n - 1.0) * self.pcie.transfer_time(self.param_bytes);
        // Compute proceeds in parallel across equal shards.
        let compute = step.compute;
        // Gather outputs to device 0.
        let gather =
            self.n_gpus as f64 * self.pcie.latency + step.output_bytes as f64 / self.pcie.bandwidth;
        // Reduce gradients from replicas 1..n to device 0.
        let reduce = (n - 1.0) * self.pcie.transfer_time(self.param_bytes);
        // Each step issues four PCIe transfer segments; an armed fault
        // injector may stretch any of them (straggler). With no injector
        // every factor is exactly 1.0 and the model is unchanged.
        let (f_scatter, f_replicate, f_gather, f_reduce) = if gnn_faults::is_active() {
            let sim = crate::session::sim_now();
            (
                gnn_faults::transfer_factor(sim),
                gnn_faults::transfer_factor(sim),
                gnn_faults::transfer_factor(sim),
                gnn_faults::transfer_factor(sim),
            )
        } else {
            (1.0, 1.0, 1.0, 1.0)
        };
        step.host_load
            + scatter * f_scatter
            + replicate * f_replicate
            + compute
            + gather * f_gather
            + reduce * f_reduce
            + step.update
    }

    /// Simulated wall time of an epoch of identical steps.
    ///
    /// Rejects degenerate configs (`n_gpus == 0` — possible via a struct
    /// literal that bypasses [`DataParallel::new`] — or `n_steps == 0`)
    /// with a typed error instead of silently computing a meaningless time.
    pub fn epoch_time(&self, step: &StepCost, n_steps: usize) -> Result<f64, MultiGpuError> {
        self.validate()?;
        if n_steps == 0 {
            return Err(MultiGpuError::ZeroSteps);
        }
        Ok(self.step_time(step) * n_steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(compute: f64) -> StepCost {
        StepCost {
            host_load: 5e-3,
            input_bytes: 4_000_000,
            compute,
            output_bytes: 40_000,
            update: 1e-4,
        }
    }

    #[test]
    fn single_gpu_has_no_replication_cost() {
        let dp1 = DataParallel::new(1, 1_000_000);
        let dp2 = DataParallel::new(2, 1_000_000);
        // Same per-replica compute: 2 GPUs must be strictly slower because of
        // replication/reduction overhead.
        assert!(dp2.step_time(&step(1e-3)) > dp1.step_time(&step(1e-3)));
    }

    #[test]
    fn scaling_saturates_when_host_load_dominates() {
        // Mirrors Fig. 6: compute halves with replica count, but host data
        // loading is serialized, so 4 -> 8 GPUs shows no improvement.
        let param_bytes = 2_000_000;
        let full_compute = 20e-3;
        let t: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| DataParallel::new(n, param_bytes).step_time(&step(full_compute / n as f64)))
            .collect();
        assert!(t[1] < t[0], "2 GPUs should beat 1: {t:?}");
        assert!(t[2] < t[1], "4 GPUs should beat 2: {t:?}");
        let gain_4_to_8 = (t[2] - t[3]) / t[2];
        assert!(
            gain_4_to_8 < 0.10,
            "4->8 should be nearly flat or worse: {t:?}"
        );
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = PcieModel::pcie3_x16();
        assert!(p.transfer_time(1 << 20) < p.transfer_time(1 << 24));
        assert!(p.transfer_time(0) == p.latency);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        DataParallel::new(0, 1);
    }

    #[test]
    fn epoch_time_scales_steps() {
        let dp = DataParallel::new(2, 1_000_000);
        let one = dp.epoch_time(&step(1e-3), 1).unwrap();
        let ten = dp.epoch_time(&step(1e-3), 10).unwrap();
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn degenerate_epoch_configs_return_typed_errors() {
        // A struct literal can bypass `new`'s assert; epoch_time must still
        // reject it with a typed error rather than computing garbage.
        let bad = DataParallel {
            n_gpus: 0,
            pcie: PcieModel::pcie3_x16(),
            param_bytes: 1,
        };
        assert_eq!(bad.epoch_time(&step(1e-3), 4), Err(MultiGpuError::ZeroGpus));
        let ok = DataParallel::new(2, 1);
        assert_eq!(ok.epoch_time(&step(1e-3), 0), Err(MultiGpuError::ZeroSteps));
        assert!(MultiGpuError::ZeroGpus
            .to_string()
            .contains("at least one GPU"));
        assert!(MultiGpuError::ZeroSteps
            .to_string()
            .contains("at least one step"));
    }
}
