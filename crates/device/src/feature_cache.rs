//! Device-resident feature cache with a partition-aware placement model,
//! for neighbor-sampled loaders over graphs whose feature matrix does not
//! fit in device memory.
//!
//! Sampled mini-batch training gathers a different union of node features
//! every step. Production systems keep a hot subset resident on the device
//! and fetch the rest from the host — or, when the graph is partitioned
//! across machines, from a *remote* partition over the network. This module
//! prices exactly that split on the existing roofline cost model:
//!
//! - **hit** — the row is resident: priced as one row of a [`Gather`]
//!   kernel (`cache_hit_gather`), the same kind the runtime uses for
//!   `index_select`.
//! - **local miss** — the row lives in the home partition's host memory:
//!   priced as H2D [`Transfer`] bytes (`h2d_feature_miss`).
//! - **remote miss** — the row lives in another partition: priced as
//!   [`Transfer`] bytes inflated by [`FeatureCache::REMOTE_FACTOR`]
//!   (`net_feature_remote`), modelling the slower network leg in the same
//!   currency as PCIe.
//!
//! Replacement is direct-mapped on the node id, so cache behaviour is a
//! pure function of the fetch sequence: deterministic across reruns and
//! byte-identical in the metrics CSVs.
//!
//! [`Gather`]: crate::kernel::KernelKind::Gather
//! [`Transfer`]: crate::kernel::KernelKind::Transfer

use crate::kernel::Kernel;
use crate::session;
use gnn_obs::tracks;

/// Counters for one [`FeatureCache::fetch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Rows found resident on the device.
    pub hits: u64,
    /// Rows fetched from the home partition's host memory.
    pub local_misses: u64,
    /// Rows fetched from a remote partition.
    pub remote_misses: u64,
    /// Total bytes moved onto the device (before the remote inflation).
    pub bytes_moved: u64,
}

/// A direct-mapped, partition-aware device feature cache.
///
/// Rows are node ids in `0..num_nodes`; nodes are placed on `partitions`
/// hosts in contiguous ranges and the cache lives on `home_partition`.
/// A zero-capacity cache is valid and misses every row (the "no cache"
/// policy point of the fan-out sweep).
#[derive(Debug, Clone)]
pub struct FeatureCache {
    /// Slot table: `slots[node % capacity]` holds the resident node id.
    slots: Vec<u32>,
    capacity: usize,
    row_bytes: u64,
    num_nodes: usize,
    partitions: usize,
    home_partition: usize,
    /// Cumulative counters over the cache's lifetime.
    total: FetchStats,
}

/// Sentinel for an empty cache slot.
const EMPTY: u32 = u32::MAX;

impl FeatureCache {
    /// Byte-inflation factor applied to remote-partition fetches: the
    /// network leg is priced at this multiple of the PCIe leg.
    pub const REMOTE_FACTOR: u64 = 4;

    /// Builds a cache of `capacity` feature rows of `row_bytes` each, over
    /// a graph of `num_nodes` nodes split into `partitions` contiguous
    /// ranges, resident on partition `home_partition`.
    pub fn new(
        capacity: usize,
        row_bytes: u64,
        num_nodes: usize,
        partitions: usize,
        home_partition: usize,
    ) -> Self {
        let partitions = partitions.max(1);
        FeatureCache {
            slots: vec![EMPTY; capacity],
            capacity,
            row_bytes,
            num_nodes: num_nodes.max(1),
            partitions,
            home_partition: home_partition.min(partitions - 1),
            total: FetchStats::default(),
        }
    }

    /// The contiguous-range partition a node id lives on.
    pub fn partition_of(&self, node: u32) -> usize {
        ((node as u64 * self.partitions as u64) / self.num_nodes as u64) as usize
    }

    /// Capacity in feature rows.
    pub fn capacity_rows(&self) -> usize {
        self.capacity
    }

    /// Cumulative counters since construction.
    pub fn totals(&self) -> FetchStats {
        self.total
    }

    /// Fetches `rows` onto the device, pricing hits as a gather and misses
    /// as (possibly remote-inflated) transfers on the installed session,
    /// and publishing cumulative hit/miss counters on the `sample` obs
    /// track. Returns this call's stats.
    pub fn fetch(&mut self, rows: &[u32]) -> FetchStats {
        let mut stats = FetchStats::default();
        for &node in rows {
            if self.capacity > 0 {
                let slot = node as usize % self.capacity;
                if self.slots[slot] == node {
                    stats.hits += 1;
                    continue;
                }
                self.slots[slot] = node;
            }
            if self.partition_of(node) == self.home_partition {
                stats.local_misses += 1;
            } else {
                stats.remote_misses += 1;
            }
        }
        stats.bytes_moved = (stats.local_misses + stats.remote_misses) * self.row_bytes;

        let row_elems = (self.row_bytes / 4) as usize;
        if stats.hits > 0 {
            session::record(Kernel::gather(
                "cache_hit_gather",
                stats.hits as usize,
                row_elems,
            ));
        }
        if stats.local_misses > 0 {
            session::record(Kernel::transfer(
                "h2d_feature_miss",
                stats.local_misses * self.row_bytes,
            ));
        }
        if stats.remote_misses > 0 {
            session::record(Kernel::transfer(
                "net_feature_remote",
                stats.remote_misses * self.row_bytes * Self::REMOTE_FACTOR,
            ));
        }

        self.total.hits += stats.hits;
        self.total.local_misses += stats.local_misses;
        self.total.remote_misses += stats.remote_misses;
        self.total.bytes_moved += stats.bytes_moved;

        let now = session::sim_now();
        gnn_obs::counter(tracks::SAMPLE, "cache_hits", self.total.hits as f64, now);
        gnn_obs::counter(
            tracks::SAMPLE,
            "cache_misses",
            (self.total.local_misses + self.total.remote_misses) as f64,
            now,
        );
        gnn_obs::counter(
            tracks::SAMPLE,
            "remote_misses",
            self.total.remote_misses as f64,
            now,
        );
        stats
    }

    /// Hit rate over the cache's lifetime (0 when nothing was fetched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total.hits + self.total.local_misses + self.total.remote_misses;
        if total == 0 {
            0.0
        } else {
            self.total.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::session::Session;

    #[test]
    fn zero_capacity_cache_misses_everything() {
        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let mut cache = FeatureCache::new(0, 256, 1000, 1, 0);
        let s = cache.fetch(&[1, 2, 3, 1]);
        assert_eq!(s.hits, 0);
        assert_eq!(s.local_misses, 4);
        assert_eq!(s.bytes_moved, 4 * 256);
        let report = session::finish(handle);
        assert!(report.transfer_time() > 0.0);
    }

    #[test]
    fn repeat_fetch_hits_after_fill() {
        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let mut cache = FeatureCache::new(16, 128, 64, 1, 0);
        cache.fetch(&[1, 2, 3]);
        let s = cache.fetch(&[1, 2, 3]);
        assert_eq!(s.hits, 3);
        assert_eq!(s.local_misses + s.remote_misses, 0);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        session::finish(handle);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let mut cache = FeatureCache::new(4, 64, 64, 1, 0);
        cache.fetch(&[0]);
        cache.fetch(&[4]); // same slot as 0
        let s = cache.fetch(&[0]);
        assert_eq!(s.hits, 0, "node 0 was evicted by node 4");
        session::finish(handle);
    }

    #[test]
    fn remote_partitions_pay_inflated_transfer() {
        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        // Two partitions of 50 nodes each; home is partition 0.
        let mut cache = FeatureCache::new(0, 100, 100, 2, 0);
        assert_eq!(cache.partition_of(0), 0);
        assert_eq!(cache.partition_of(99), 1);
        let s = cache.fetch(&[10, 90]);
        assert_eq!(s.local_misses, 1);
        assert_eq!(s.remote_misses, 1);
        let report = session::finish(handle);
        assert!(report.transfer_time() > 0.0);
        // `bytes_moved` counts real bytes; the remote inflation only
        // affects pricing, not the counter.
        assert_eq!(s.bytes_moved, 200);
    }

    #[test]
    fn determinism_same_sequence_same_totals() {
        let run = || {
            let handle = session::install(Session::new(CostModel::rtx2080ti()));
            let mut cache = FeatureCache::new(8, 64, 256, 4, 1);
            for step in 0..10u32 {
                cache.fetch(&[step, step * 7 % 256, step * 13 % 256]);
            }
            session::finish(handle);
            cache.totals()
        };
        assert_eq!(run(), run());
    }
}
