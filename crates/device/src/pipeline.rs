//! Prefetch-pipeline modelling.
//!
//! The paper observes (Section IV-D) that GNN throughput "is limited by
//! other resources, such as CPU or data communication, and further
//! improvement can be achieved by overlapping CPU runtime or data
//! communication with GPU execution". This module models exactly that
//! optimization: a double-buffered loader that collates batch `i + 1` on the
//! host while the device computes batch `i` — the `num_workers`/prefetch
//! pattern of real data pipelines.

/// Epoch time of a two-stage load→compute pipeline over `n_batches`
/// identical batches, in seconds.
///
/// Serial execution costs `n · (load + compute)`. With a single prefetch
/// buffer the steady-state step costs `max(load, compute)`; the first load
/// and the last compute are exposed:
///
/// `T = load + (n - 1) · max(load, compute) + compute`
///
/// # Panics
///
/// Panics if `n_batches == 0` or either cost is negative.
pub fn pipelined_epoch_time(load: f64, compute: f64, n_batches: usize) -> f64 {
    assert!(n_batches > 0, "need at least one batch");
    assert!(load >= 0.0 && compute >= 0.0, "costs must be non-negative");
    load + (n_batches - 1) as f64 * load.max(compute) + compute
}

/// Serial (non-overlapped) epoch time for the same workload.
pub fn serial_epoch_time(load: f64, compute: f64, n_batches: usize) -> f64 {
    assert!(n_batches > 0, "need at least one batch");
    n_batches as f64 * (load + compute)
}

/// Speedup of pipelining over serial execution for the given per-batch
/// costs (asymptotically `(load + compute) / max(load, compute)`, at most
/// 2×).
pub fn pipeline_speedup(load: f64, compute: f64, n_batches: usize) -> f64 {
    serial_epoch_time(load, compute, n_batches) / pipelined_epoch_time(load, compute, n_batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_stages_approach_2x() {
        let s = pipeline_speedup(1.0, 1.0, 1000);
        assert!(s > 1.95, "balanced pipeline should approach 2x: {s}");
    }

    #[test]
    fn single_batch_gains_nothing() {
        assert_eq!(pipelined_epoch_time(3.0, 2.0, 1), 5.0);
        assert_eq!(pipeline_speedup(3.0, 2.0, 1), 1.0);
    }

    #[test]
    fn bottleneck_stage_bounds_the_pipeline() {
        // Load-dominated: epoch ≈ n * load; compute hides entirely.
        let t = pipelined_epoch_time(10.0, 1.0, 100);
        assert!((t - (10.0 + 99.0 * 10.0 + 1.0)).abs() < 1e-9);
        // Speedup is limited to (load + compute) / load = 1.1.
        let s = pipeline_speedup(10.0, 1.0, 100);
        assert!((s - 1.1).abs() < 0.01, "{s}");
    }

    #[test]
    fn pipeline_never_slower_than_serial() {
        for &(l, c, n) in &[(0.0, 1.0, 5), (1.0, 0.0, 5), (0.3, 0.7, 13), (2.0, 2.0, 2)] {
            assert!(pipelined_epoch_time(l, c, n) <= serial_epoch_time(l, c, n) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn zero_batches_rejected() {
        pipelined_epoch_time(1.0, 1.0, 0);
    }
}
