//! Device memory tracking.
//!
//! Models a PyTorch-style caching allocator well enough to reproduce the
//! paper's Fig. 4 (peak memory vs batch size): parameters and optimizer state
//! are *persistent* allocations that live for the whole run, while
//! activations, gradients, and workspace buffers are *step* allocations that
//! are released when the training step ends. The peak watermark over the run
//! is what `nvidia-smi` reports in the paper.

/// Tracks current and peak device memory in bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryTracker {
    persistent: u64,
    step: u64,
    peak: u64,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MemoryTracker::default()
    }

    /// Registers a persistent allocation (parameters, optimizer state,
    /// dataset resident on device).
    pub fn alloc_persistent(&mut self, bytes: u64) {
        self.persistent += bytes;
        self.bump();
    }

    /// Releases a persistent allocation.
    ///
    /// # Panics
    ///
    /// Panics if more persistent memory is freed than was allocated.
    pub fn free_persistent(&mut self, bytes: u64) {
        assert!(
            self.persistent >= bytes,
            "persistent underflow: {} < {bytes}",
            self.persistent
        );
        self.persistent -= bytes;
    }

    /// Registers a step-scoped allocation (activation, gradient, workspace).
    pub fn alloc(&mut self, bytes: u64) {
        self.step += bytes;
        self.bump();
    }

    /// Releases a step-scoped allocation early (rare; most are released by
    /// [`MemoryTracker::end_step`]).
    pub fn free(&mut self, bytes: u64) {
        self.step = self.step.saturating_sub(bytes);
    }

    /// Ends a training step: all step-scoped memory returns to the caching
    /// allocator's free pool.
    pub fn end_step(&mut self) {
        self.step = 0;
    }

    /// Current total allocation in bytes.
    pub fn current(&self) -> u64 {
        self.persistent + self.step
    }

    /// Current persistent allocation in bytes.
    pub fn persistent(&self) -> u64 {
        self.persistent
    }

    /// Peak watermark in bytes over the tracker's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    fn bump(&mut self) {
        let cur = self.current();
        if cur > self.peak {
            self.peak = cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_watermark() {
        let mut m = MemoryTracker::new();
        m.alloc_persistent(100);
        m.alloc(50);
        assert_eq!(m.peak(), 150);
        m.end_step();
        assert_eq!(m.current(), 100);
        assert_eq!(m.peak(), 150);
        m.alloc(20);
        assert_eq!(m.peak(), 150, "peak must not move for smaller steps");
        m.alloc(200);
        assert_eq!(m.peak(), 320);
    }

    #[test]
    fn end_step_releases_only_step_memory() {
        let mut m = MemoryTracker::new();
        m.alloc_persistent(10);
        m.alloc(90);
        m.end_step();
        assert_eq!(m.current(), 10);
        assert_eq!(m.persistent(), 10);
    }

    #[test]
    fn free_is_saturating_for_step_memory() {
        let mut m = MemoryTracker::new();
        m.alloc(10);
        m.free(100);
        assert_eq!(m.current(), 0);
    }

    #[test]
    #[should_panic(expected = "persistent underflow")]
    fn persistent_underflow_panics() {
        let mut m = MemoryTracker::new();
        m.free_persistent(1);
    }
}
