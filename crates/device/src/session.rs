//! Profiling sessions: the glue between the tensor engine and the device model.
//!
//! A [`Session`] owns a [`Timeline`], a [`MemoryTracker`], and a
//! [`CostModel`], attributes elapsed simulated time to training *phases*
//! (the categories of the paper's Figs. 1–2) and to named *scopes* (the
//! per-layer bars of Fig. 3). Tensor ops report kernels through the
//! thread-local free functions ([`record`], [`host`], [`alloc`], ...), which
//! are no-ops when no session is installed so instrumented code runs
//! unconditionally.

use std::cell::RefCell;
use std::rc::Rc;

use gnn_obs as obs;

use crate::cost::CostModel;
use crate::kernel::{Kernel, KernelKind};
use crate::memory::MemoryTracker;
use crate::timeline::Timeline;

/// A session-protocol violation, surfaced instead of a panic so supervised
/// training (`gnn_train::supervisor`) can fold it into its typed
/// `TrainError` rather than aborting a whole sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// [`Session::try_scope_exit`] was called with no scope open.
    ScopeExitWithoutEnter,
    /// [`try_finish`] was called while other clones of the handle's session
    /// were still alive.
    HandleStillShared,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ScopeExitWithoutEnter => write!(f, "scope_exit without scope_enter"),
            SessionError::HandleStillShared => write!(f, "session handle still shared at finish"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Training-loop phase, matching the execution-time breakdown of the paper's
/// Figs. 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Mini-batch fetch + collation into a disjoint-union graph.
    DataLoad,
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
    /// Optimizer parameter update.
    Update,
    /// Everything else (metrics, bookkeeping, evaluation).
    Other,
}

/// All phases in display order.
pub const PHASES: [Phase; 5] = [
    Phase::DataLoad,
    Phase::Forward,
    Phase::Backward,
    Phase::Update,
    Phase::Other,
];

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::DataLoad => 0,
            Phase::Forward => 1,
            Phase::Backward => 2,
            Phase::Update => 3,
            Phase::Other => 4,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::DataLoad => "data_load",
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::Update => "update",
            Phase::Other => "other",
        }
    }
}

/// A live profiling session.
#[derive(Debug)]
pub struct Session {
    cost: CostModel,
    timeline: Timeline,
    memory: MemoryTracker,
    phase: Phase,
    phase_start: f64,
    phase_times: [f64; 5],
    scope_stack: Vec<(String, f64)>,
    scope_times: Vec<(String, f64)>,
    kind_counts: Vec<(KernelKind, u64)>,
    profile: Vec<KindProfile>,
    total_flops: u64,
    total_bytes: u64,
    /// Whether a phase span is currently open on the trace (tracing only).
    trace_phase_open: bool,
}

/// Accumulated counters for one kernel kind over a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindProfile {
    /// The kernel kind.
    pub kind: KernelKind,
    /// Number of launches.
    pub launches: u64,
    /// Total floating-point operations.
    pub flops: u64,
    /// Total DRAM traffic in bytes (reads + writes).
    pub bytes: u64,
    /// Total device execution time in seconds (includes kernel overhead).
    pub device_time: f64,
}

impl KindProfile {
    /// Arithmetic intensity of this kind's aggregate work, FLOP/byte.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

impl Session {
    /// Creates a session with the given cost model, starting in
    /// [`Phase::Other`].
    pub fn new(cost: CostModel) -> Self {
        Session {
            cost,
            timeline: Timeline::new(),
            memory: MemoryTracker::new(),
            phase: Phase::Other,
            phase_start: 0.0,
            phase_times: [0.0; 5],
            scope_stack: Vec::new(),
            scope_times: Vec::new(),
            kind_counts: Vec::new(),
            profile: Vec::new(),
            total_flops: 0,
            total_bytes: 0,
            trace_phase_open: false,
        }
    }

    /// Records a kernel launch: host pays launch overhead, device queues the
    /// kernel's roofline duration.
    pub fn record(&mut self, kernel: Kernel) {
        if gnn_faults::is_active() {
            gnn_faults::on_kernel(kernel.name, self.sim_now());
        }
        let counters = self.cost.counters(&kernel);
        let launch = self.cost.launch_time();
        let (start, end) = self.timeline.launch(launch, counters.duration);
        if obs::is_active() {
            obs::sched_launch(
                crate::cost::kind_index(kernel.kind) as u8,
                launch,
                counters.duration,
            );
        }
        match self.kind_counts.iter_mut().find(|(k, _)| *k == kernel.kind) {
            Some((_, n)) => *n += 1,
            None => self.kind_counts.push((kernel.kind, 1)),
        }
        match self.profile.iter_mut().find(|p| p.kind == kernel.kind) {
            Some(p) => {
                p.launches += 1;
                p.flops += kernel.flops;
                p.bytes += kernel.bytes;
                p.device_time += counters.duration;
            }
            None => self.profile.push(KindProfile {
                kind: kernel.kind,
                launches: 1,
                flops: kernel.flops,
                bytes: kernel.bytes,
                device_time: counters.duration,
            }),
        }
        self.total_flops += kernel.flops;
        self.total_bytes += kernel.bytes;
        if obs::is_active() {
            obs::complete(
                obs::tracks::KERNELS,
                kernel.name,
                start,
                end - start,
                vec![
                    ("kind".to_owned(), obs::Value::from(kernel.kind.label())),
                    ("flops".to_owned(), obs::Value::from(kernel.flops)),
                    ("bytes".to_owned(), obs::Value::from(kernel.bytes)),
                    (
                        "bytes_read".to_owned(),
                        obs::Value::from(counters.bytes_read),
                    ),
                    (
                        "bytes_written".to_owned(),
                        obs::Value::from(counters.bytes_written),
                    ),
                    ("ai".to_owned(), obs::Value::Num(counters.intensity)),
                    ("roofline".to_owned(), obs::Value::Num(counters.roofline)),
                    ("bound".to_owned(), obs::Value::from(counters.bound.label())),
                ],
            );
        }
    }

    /// Advances the host clock by `seconds` of pure host work, divided by
    /// the cost model's what-if host speedup (`1.0` on real models).
    pub fn host(&mut self, seconds: f64) {
        let applied = seconds / self.cost.host_speedup();
        self.timeline.host(applied);
        if obs::is_active() {
            obs::sched_host(applied);
        }
    }

    /// Synchronizes the timeline, recording the sync on the captured
    /// schedule — syncs decide how device speedups propagate to the host
    /// clock, so causal replay needs every one of them.
    fn sync(&mut self) {
        self.timeline.sync();
        if obs::is_active() {
            obs::sched_sync();
        }
    }

    /// Switches the current phase, synchronizing and attributing the elapsed
    /// span to the previous phase.
    pub fn set_phase(&mut self, phase: Phase) {
        self.sync();
        let now = self.timeline.now();
        self.phase_times[self.phase.index()] += now - self.phase_start;
        self.phase = phase;
        self.phase_start = now;
        if obs::is_active() {
            if self.trace_phase_open {
                obs::span_end(obs::tracks::PHASE, now);
            }
            obs::span_begin(obs::tracks::PHASE, phase.label(), now);
            self.trace_phase_open = true;
        }
    }

    /// The simulated time a sync would land at, without performing one.
    ///
    /// Unlike [`Session::now`] this never mutates the timeline, so the
    /// tracing layer can timestamp events without perturbing phase
    /// attribution — a traced run and an untraced run stay identical.
    pub fn sim_now(&self) -> f64 {
        self.timeline.horizon()
    }

    /// Phase times attributed so far (excludes the currently open phase
    /// span), indexed like [`PHASES`].
    pub fn phase_times_so_far(&self) -> [f64; 5] {
        self.phase_times
    }

    /// Kernel launch counts per kind so far, in first-seen order.
    pub fn kind_counts_so_far(&self) -> &[(KernelKind, u64)] {
        &self.kind_counts
    }

    /// Accumulated per-kind counter profile so far, in first-seen order.
    pub fn profile_so_far(&self) -> &[KindProfile] {
        &self.profile
    }

    /// Total `(flops, bytes)` accumulated across all launches so far.
    pub fn counter_totals_so_far(&self) -> (u64, u64) {
        (self.total_flops, self.total_bytes)
    }

    /// Accumulated device busy time so far. Non-mutating, like
    /// [`Session::sim_now`].
    pub fn busy_so_far(&self) -> f64 {
        self.timeline.busy()
    }

    /// Kernels launched so far.
    pub fn kernel_count_so_far(&self) -> u64 {
        self.timeline.kernel_count()
    }

    /// Device utilization so far: busy time over the simulated horizon.
    pub fn utilization_so_far(&self) -> f64 {
        let elapsed = self.timeline.horizon();
        if elapsed <= 0.0 {
            0.0
        } else {
            (self.timeline.busy() / elapsed).clamp(0.0, 1.0)
        }
    }

    /// Current simulated host time.
    pub fn now(&mut self) -> f64 {
        self.sync();
        self.timeline.now()
    }

    /// Enters a named scope (e.g. `"conv1"`). Scopes nest; a span is
    /// attributed to every scope on the stack when it closes.
    pub fn scope_enter(&mut self, name: &str) {
        self.sync();
        self.scope_stack
            .push((name.to_owned(), self.timeline.now()));
        if obs::is_active() {
            obs::span_begin(obs::tracks::SCOPES, name, self.timeline.now());
        }
    }

    /// Exits the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open; supervised code paths use
    /// [`Session::try_scope_exit`] instead.
    pub fn scope_exit(&mut self) {
        if let Err(e) = self.try_scope_exit() {
            panic!("{e}");
        }
    }

    /// Exits the innermost scope, reporting a protocol violation instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::ScopeExitWithoutEnter`] if no scope is open.
    pub fn try_scope_exit(&mut self) -> Result<(), SessionError> {
        self.sync();
        let (name, start) = self
            .scope_stack
            .pop()
            .ok_or(SessionError::ScopeExitWithoutEnter)?;
        let dur = self.timeline.now() - start;
        match self.scope_times.iter_mut().find(|(n, _)| *n == name) {
            Some((_, t)) => *t += dur,
            None => self.scope_times.push((name, dur)),
        }
        if obs::is_active() {
            obs::span_end(obs::tracks::SCOPES, self.timeline.now());
        }
        Ok(())
    }

    /// Registers a step-scoped device allocation.
    pub fn alloc(&mut self, bytes: u64) {
        if gnn_faults::is_active() {
            gnn_faults::on_alloc(bytes, self.memory.current(), self.sim_now());
        }
        self.memory.alloc(bytes);
        self.trace_memory();
    }

    /// Releases a step-scoped device allocation early.
    pub fn free(&mut self, bytes: u64) {
        self.memory.free(bytes);
        self.trace_memory();
    }

    /// Registers a persistent device allocation (parameters, optimizer state).
    pub fn alloc_persistent(&mut self, bytes: u64) {
        if gnn_faults::is_active() {
            gnn_faults::on_alloc(bytes, self.memory.current(), self.sim_now());
        }
        self.memory.alloc_persistent(bytes);
        self.trace_memory();
    }

    /// Ends a training step: releases all step-scoped memory.
    pub fn end_step(&mut self) {
        self.memory.end_step();
        self.trace_memory();
    }

    fn trace_memory(&self) {
        if obs::is_active() {
            obs::counter(
                obs::tracks::MEMORY,
                "device_bytes",
                self.memory.current() as f64,
                self.sim_now(),
            );
        }
    }

    /// Read-only view of the memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// The session's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Finalizes the session into a report.
    pub fn into_report(mut self) -> DeviceReport {
        self.set_phase(Phase::Other); // flush the open phase span
        if self.trace_phase_open {
            obs::span_end(obs::tracks::PHASE, self.timeline.now());
        }
        DeviceReport {
            total_time: self.timeline.now(),
            busy_time: self.timeline.busy(),
            kernel_count: self.timeline.kernel_count(),
            phase_times: self.phase_times,
            peak_memory: self.memory.peak(),
            persistent_memory: self.memory.persistent(),
            scopes: self.scope_times,
            kind_counts: self.kind_counts,
            profile: self.profile,
            total_flops: self.total_flops,
            total_bytes: self.total_bytes,
            peak_flops: self.cost.peak_flops,
            peak_bw: self.cost.peak_bw,
        }
    }
}

/// Summary of a finished [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Total simulated wall time in seconds.
    pub total_time: f64,
    /// Accumulated device busy time in seconds.
    pub busy_time: f64,
    /// Number of kernels launched.
    pub kernel_count: u64,
    /// Time per phase, indexed like [`PHASES`].
    pub phase_times: [f64; 5],
    /// Peak device memory in bytes.
    pub peak_memory: u64,
    /// Persistent (parameter/optimizer) memory in bytes.
    pub persistent_memory: u64,
    /// Accumulated time per named scope, in first-seen order.
    pub scopes: Vec<(String, f64)>,
    /// Kernel launch counts per kind, in first-seen order.
    pub kind_counts: Vec<(KernelKind, u64)>,
    /// Accumulated counters per kind, in first-seen order.
    pub profile: Vec<KindProfile>,
    /// Total floating-point operations across all launches.
    pub total_flops: u64,
    /// Total DRAM traffic in bytes across all launches.
    pub total_bytes: u64,
    /// Peak FLOP rate of the session's cost model (for roofline fractions).
    pub peak_flops: f64,
    /// Peak DRAM bandwidth of the session's cost model.
    pub peak_bw: f64,
}

impl DeviceReport {
    /// GPU compute utilization per the paper's Eq. (5): busy / elapsed.
    pub fn utilization(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            (self.busy_time / self.total_time).clamp(0.0, 1.0)
        }
    }

    /// Device time spent in transfer kernels.
    pub fn transfer_time(&self) -> f64 {
        // fold from +0.0: an empty `sum()` is IEEE -0.0, which would leak
        // a negative zero into reports for runs with no transfers.
        self.profile
            .iter()
            .filter(|p| p.kind == KernelKind::Transfer)
            .fold(0.0, |acc, p| acc + p.device_time)
    }

    /// Device time spent in compute (non-transfer) kernels.
    pub fn kernel_exec_time(&self) -> f64 {
        (self.busy_time - self.transfer_time()).max(0.0)
    }

    /// Time the device sat idle: elapsed minus busy.
    pub fn idle_time(&self) -> f64 {
        (self.total_time - self.busy_time).max(0.0)
    }

    /// Aggregate arithmetic intensity of the run, FLOP/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.total_flops as f64 / self.total_bytes as f64
        }
    }

    /// Attained roofline fraction over device busy time: the larger of the
    /// achieved FLOP rate over peak FLOP/s and the achieved DRAM rate over
    /// peak bandwidth, clamped to `[0, 1]`.
    pub fn roofline_utilization(&self) -> f64 {
        if self.busy_time <= 0.0 || self.peak_flops <= 0.0 || self.peak_bw <= 0.0 {
            return 0.0;
        }
        let flop_frac = self.total_flops as f64 / self.busy_time / self.peak_flops;
        let bw_frac = self.total_bytes as f64 / self.busy_time / self.peak_bw;
        flop_frac.max(bw_frac).clamp(0.0, 1.0)
    }

    /// Time attributed to `phase` in seconds.
    pub fn phase_time(&self, phase: Phase) -> f64 {
        self.phase_times[phase.index()]
    }

    /// Time attributed to the named scope, if it was ever entered.
    pub fn scope_time(&self, name: &str) -> Option<f64> {
        self.scopes.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }
}

impl std::fmt::Display for DeviceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "total {:.3} ms | busy {:.3} ms | util {:.1}% | {} kernels | peak mem {:.1} MB",
            self.total_time * 1e3,
            self.busy_time * 1e3,
            self.utilization() * 100.0,
            self.kernel_count,
            self.peak_memory as f64 / 1e6
        )?;
        writeln!(
            f,
            "  {:.2} GFLOP | {:.2} GB moved | AI {:.2} flop/B | roofline {:.1}%",
            self.total_flops as f64 / 1e9,
            self.total_bytes as f64 / 1e9,
            self.arithmetic_intensity(),
            self.roofline_utilization() * 100.0
        )?;
        for (phase, t) in PHASES.iter().zip(&self.phase_times) {
            writeln!(f, "  {:<10} {:.3} ms", phase.label(), t * 1e3)?;
        }
        for (name, t) in &self.scopes {
            writeln!(f, "  scope {:<12} {:.3} ms", name, t * 1e3)?;
        }
        Ok(())
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<RefCell<Session>>>> = const { RefCell::new(None) };
    static DEFAULT_COST: RefCell<Option<CostModel>> = const { RefCell::new(None) };
}

/// The cost model training and serving runners create their sessions with:
/// the paper's RTX 2080Ti unless a what-if harness has scoped an overlay in
/// with [`with_default_cost_model`].
pub fn default_cost_model() -> CostModel {
    DEFAULT_COST.with(|m| {
        m.borrow()
            .as_ref()
            .cloned()
            .unwrap_or_else(CostModel::rtx2080ti)
    })
}

/// Runs `f` with `model` installed as this thread's default cost model,
/// restoring the previous default afterwards (also on panic). The causal
/// profiler's conformance pass uses this to re-run a whole training cell
/// under a hypothetically sped-up model without threading the model through
/// every runner signature.
pub fn with_default_cost_model<T>(model: CostModel, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<CostModel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            DEFAULT_COST.with(|m| *m.borrow_mut() = prev);
        }
    }
    let prev = DEFAULT_COST.with(|m| m.borrow_mut().replace(model));
    let _restore = Restore(prev);
    f()
}

/// Handle to an installed session; pass back to [`finish`] to retrieve the
/// report.
#[derive(Debug, Clone)]
pub struct SessionHandle(Rc<RefCell<Session>>);

/// Installs `session` as the thread-local profiling session, replacing any
/// previous one.
pub fn install(session: Session) -> SessionHandle {
    let rc = Rc::new(RefCell::new(session));
    if obs::is_active() {
        // Each session restarts simulated time at zero; a new trace
        // generation keeps its events on their own Chrome-trace process.
        obs::session_started();
        let mut s = rc.borrow_mut();
        obs::span_begin(obs::tracks::PHASE, s.phase.label(), s.sim_now());
        s.trace_phase_open = true;
    }
    CURRENT.with(|c| *c.borrow_mut() = Some(rc.clone()));
    SessionHandle(rc)
}

/// Uninstalls the session and returns its report.
///
/// # Panics
///
/// Panics if other clones of the handle's session are still alive;
/// supervised code paths use [`try_finish`] instead.
pub fn finish(handle: SessionHandle) -> DeviceReport {
    match try_finish(handle) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Uninstalls the session and returns its report, reporting a protocol
/// violation instead of panicking.
///
/// # Errors
///
/// Returns [`SessionError::HandleStillShared`] if other clones of the
/// handle's session are still alive (the session stays uninstalled — the
/// surviving clone holders keep it alive, but free functions no longer
/// reach it).
pub fn try_finish(handle: SessionHandle) -> Result<DeviceReport, SessionError> {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if let Some(rc) = cur.as_ref() {
            if Rc::ptr_eq(rc, &handle.0) {
                *cur = None;
            }
        }
    });
    let session = Rc::try_unwrap(handle.0)
        .map_err(|_| SessionError::HandleStillShared)?
        .into_inner();
    Ok(session.into_report())
}

/// Runs `f` with the current session and returns its result, if any.
pub fn query<T, F: FnOnce(&Session) -> T>(f: F) -> Option<T> {
    CURRENT.with(|c| c.borrow().as_ref().map(|rc| f(&rc.borrow())))
}

/// Current simulated time on this thread's session (0 without one).
///
/// Non-mutating: reads the timeline horizon without synchronizing, so
/// instrumentation using it cannot perturb the simulation.
pub fn sim_now() -> f64 {
    query(Session::sim_now).unwrap_or(0.0)
}

/// Runs `f` with the current session, if any.
pub fn with<F: FnOnce(&mut Session)>(f: F) {
    CURRENT.with(|c| {
        if let Some(rc) = c.borrow().as_ref() {
            f(&mut rc.borrow_mut());
        }
    });
}

/// Records a kernel on the current session (no-op without one).
pub fn record(kernel: Kernel) {
    with(|s| s.record(kernel));
}

/// Advances the current session's host clock (no-op without one).
pub fn host(seconds: f64) {
    with(|s| s.host(seconds));
}

/// Switches the current session's phase (no-op without one).
pub fn set_phase(phase: Phase) {
    with(|s| s.set_phase(phase));
}

/// Registers a step-scoped allocation (no-op without a session).
pub fn alloc(bytes: u64) {
    with(|s| s.alloc(bytes));
}

/// Releases a step-scoped allocation (no-op without a session).
pub fn free(bytes: u64) {
    with(|s| s.free(bytes));
}

/// Runs `f` inside a named scope on the current session.
pub fn scope<T, F: FnOnce() -> T>(name: &str, f: F) -> T {
    with(|s| s.scope_enter(name));
    let out = f();
    with(|s| s.scope_exit());
    out
}

/// Runs `f` inside a pure tracing span on `track`, timestamped with the
/// non-mutating simulated clock.
///
/// Unlike [`scope`] this never synchronizes the timeline and never touches
/// scope accounting: with tracing disabled it is exactly `f()`, and with
/// tracing enabled the simulation still proceeds identically. Framework
/// internals (message-passing lowerings, fused kernels) use it to appear
/// as named slices in the Chrome trace.
///
/// With a session installed the slice carries the hardware counters the
/// wrapped work accumulated — FLOPs, DRAM bytes, arithmetic intensity, and
/// the attained roofline fraction over the device time it occupied — read
/// through the non-mutating accessors before and after `f`. Without a
/// session it degrades to a plain begin/end span pair.
pub fn traced<T, F: FnOnce() -> T>(track: &'static str, name: &str, f: F) -> T {
    if !obs::is_active() {
        return f();
    }
    let before = query(|s| (s.sim_now(), s.counter_totals_so_far(), s.busy_so_far()));
    let Some((start, (flops0, bytes0), busy0)) = before else {
        obs::span_begin(track, name, 0.0);
        let out = f();
        obs::span_end(track, 0.0);
        return out;
    };
    let out = f();
    let after = query(|s| {
        (
            s.sim_now(),
            s.counter_totals_so_far(),
            s.busy_so_far(),
            (s.cost_model().peak_flops, s.cost_model().peak_bw),
        )
    });
    let Some((end, (flops1, bytes1), busy1, (peak_flops, peak_bw))) = after else {
        return out;
    };
    let flops = flops1 - flops0;
    let bytes = bytes1 - bytes0;
    let busy = busy1 - busy0;
    let ai = if bytes == 0 {
        0.0
    } else {
        flops as f64 / bytes as f64
    };
    let roofline = if busy <= 0.0 {
        0.0
    } else {
        let flop_frac = flops as f64 / busy / peak_flops;
        let bw_frac = bytes as f64 / busy / peak_bw;
        flop_frac.max(bw_frac).clamp(0.0, 1.0)
    };
    obs::complete(
        track,
        name,
        start,
        (end - start).max(0.0),
        vec![
            ("flops".to_owned(), obs::Value::from(flops)),
            ("bytes".to_owned(), obs::Value::from(bytes)),
            ("ai".to_owned(), obs::Value::Num(ai)),
            ("roofline".to_owned(), obs::Value::Num(roofline)),
        ],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_model() -> CostModel {
        CostModel::builder()
            .launch_overhead(1e-6)
            .kernel_overhead(1e-6)
            .build()
    }

    #[test]
    fn phases_accumulate_disjointly() {
        let mut s = Session::new(fast_model());
        s.set_phase(Phase::DataLoad);
        s.host(1.0);
        s.set_phase(Phase::Forward);
        s.record(Kernel::gemm("mm", 64, 64, 64));
        let report = s.into_report();
        assert!(report.phase_time(Phase::DataLoad) >= 1.0);
        assert!(report.phase_time(Phase::Forward) > 0.0);
        let sum: f64 = report.phase_times.iter().sum();
        assert!(
            (sum - report.total_time).abs() < 1e-9,
            "phases must partition total time"
        );
    }

    #[test]
    fn scopes_capture_layer_times() {
        let mut s = Session::new(fast_model());
        s.scope_enter("conv1");
        s.record(Kernel::gemm("mm", 128, 128, 128));
        s.scope_exit();
        s.scope_enter("conv2");
        s.record(Kernel::gemm("mm", 64, 64, 64));
        s.scope_exit();
        let report = s.into_report();
        let c1 = report.scope_time("conv1").unwrap();
        let c2 = report.scope_time("conv2").unwrap();
        assert!(c1 > c2, "bigger layer must take longer: {c1} vs {c2}");
        assert!(report.scope_time("conv3").is_none());
    }

    #[test]
    fn nested_scopes_attribute_to_all_levels() {
        let mut s = Session::new(fast_model());
        s.scope_enter("layer");
        s.scope_enter("inner");
        s.record(Kernel::elementwise("relu", 10_000, 1, 2));
        s.scope_exit();
        s.scope_exit();
        let report = s.into_report();
        let outer = report.scope_time("layer").unwrap();
        let inner = report.scope_time("inner").unwrap();
        assert!(outer >= inner);
    }

    #[test]
    fn thread_local_install_and_finish() {
        let h = install(Session::new(fast_model()));
        record(Kernel::gemm("mm", 8, 8, 8));
        host(0.5);
        alloc(1000);
        let report = finish(h);
        assert_eq!(report.kernel_count, 1);
        assert!(report.total_time >= 0.5);
        assert_eq!(report.peak_memory, 1000);
    }

    #[test]
    fn free_functions_are_noops_without_session() {
        // Must not panic or accumulate anywhere.
        record(Kernel::gemm("mm", 8, 8, 8));
        host(1.0);
        alloc(10);
        free(10);
        set_phase(Phase::Forward);
        let v = scope("s", || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn utilization_bounds() {
        let mut s = Session::new(fast_model());
        s.host(10.0); // long idle host span
        s.record(Kernel::gemm("mm", 8, 8, 8));
        let report = s.into_report();
        let u = report.utilization();
        assert!((0.0..=1.0).contains(&u));
        assert!(u < 0.01);
    }

    #[test]
    fn end_step_resets_activation_memory() {
        let h = install(Session::new(fast_model()));
        with(|s| s.alloc_persistent(100));
        alloc(900);
        with(|s| s.end_step());
        alloc(50);
        let report = finish(h);
        assert_eq!(report.peak_memory, 1000);
        assert_eq!(report.persistent_memory, 100);
    }

    #[test]
    fn report_display_is_informative() {
        let mut s = Session::new(fast_model());
        s.scope_enter("conv1");
        s.record(Kernel::gemm("mm", 64, 64, 64));
        s.scope_exit();
        let text = format!("{}", s.into_report());
        assert!(text.contains("util"));
        assert!(text.contains("conv1"));
        assert!(text.contains("forward") || text.contains("other"));
    }

    #[test]
    fn profile_accumulates_counters_per_kind() {
        let mut s = Session::new(fast_model());
        let a = Kernel::gemm("a", 8, 8, 8);
        let b = Kernel::gemm("b", 8, 8, 8);
        let t = Kernel::transfer("h2d", 4096);
        s.record(a);
        s.record(b);
        s.record(t);
        let report = s.into_report();
        let gemm = report
            .profile
            .iter()
            .find(|p| p.kind == KernelKind::Gemm)
            .unwrap();
        assert_eq!(gemm.launches, 2);
        assert_eq!(gemm.flops, a.flops + b.flops);
        assert_eq!(gemm.bytes, a.bytes + b.bytes);
        assert!(gemm.device_time > 0.0);
        assert_eq!(report.total_flops, a.flops + b.flops);
        assert_eq!(report.total_bytes, a.bytes + b.bytes + t.bytes);
        // Kernel/transfer/idle partition the elapsed time.
        let whole = report.kernel_exec_time() + report.transfer_time() + report.idle_time();
        assert!((whole - report.total_time).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&report.roofline_utilization()));
        assert!(report.arithmetic_intensity() > 0.0);
    }

    #[test]
    fn kernel_slices_carry_counter_args_when_traced() {
        let oh = obs::install(obs::Collector::new());
        let h = install(Session::new(fast_model()));
        record(Kernel::gemm("mm", 64, 64, 64));
        finish(h);
        let trace = obs::finish(oh);
        let slice = trace
            .events
            .iter()
            .find_map(|e| match &e.kind {
                obs::EventKind::Complete { name, args, .. } if name == "mm" => Some(args),
                _ => None,
            })
            .expect("kernel slice");
        for key in [
            "kind",
            "flops",
            "bytes",
            "bytes_read",
            "bytes_written",
            "ai",
            "roofline",
            "bound",
        ] {
            assert!(slice.iter().any(|(k, _)| k == key), "missing arg {key}");
        }
    }

    #[test]
    fn traced_slices_carry_counter_deltas() {
        let oh = obs::install(obs::Collector::new());
        let h = install(Session::new(fast_model()));
        let k = Kernel::gemm("mm", 64, 64, 64);
        traced("rustyg", "agg", || record(k));
        finish(h);
        let trace = obs::finish(oh);
        let args = trace
            .events
            .iter()
            .find_map(|e| match &e.kind {
                obs::EventKind::Complete { name, args, .. }
                    if e.track == "rustyg" && name == "agg" =>
                {
                    Some(args)
                }
                _ => None,
            })
            .expect("traced slice");
        let get = |key: &str| {
            args.iter()
                .find(|(n, _)| n == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing arg {key}"))
        };
        assert_eq!(get("flops").as_u64(), Some(k.flops));
        assert_eq!(get("bytes").as_u64(), Some(k.bytes));
        assert!(get("ai").as_f64().unwrap() > 0.0);
        let roofline = get("roofline").as_f64().unwrap();
        assert!((0.0..=1.0).contains(&roofline) && roofline > 0.0);
    }

    #[test]
    fn default_cost_model_scopes_and_restores() {
        assert_eq!(default_cost_model(), CostModel::rtx2080ti());
        let overlaid =
            CostModel::rtx2080ti().with_speedups(&crate::cost::Speedups::component(0, 2.0));
        let inner = with_default_cost_model(overlaid.clone(), default_cost_model);
        assert_eq!(inner, overlaid);
        assert_eq!(default_cost_model(), CostModel::rtx2080ti());
        // Restores the previous default even when `f` panics.
        let _ = std::panic::catch_unwind(|| {
            with_default_cost_model(overlaid, || panic!("boom"));
        });
        assert_eq!(default_cost_model(), CostModel::rtx2080ti());
    }

    fn capture_run(model: CostModel) -> (DeviceReport, obs::Trace) {
        let oh = obs::install(obs::Collector::new());
        let h = install(Session::new(model));
        set_phase(Phase::DataLoad);
        host(1e-3);
        set_phase(Phase::Forward);
        record(Kernel::gemm("mm", 64, 64, 64));
        record(Kernel::gather("g", 1000, 16));
        scope("layer", || {
            record(Kernel::elementwise("relu", 10_000, 1, 2))
        });
        host(2e-5);
        record(Kernel::transfer("h2d", 1 << 16));
        let report = finish(h);
        (report, obs::finish(oh))
    }

    #[test]
    fn captured_schedule_replays_overlaid_reruns_bit_exactly() {
        use gnn_obs::whatif::{replay_schedule, Speedups, WHATIF_COMPONENTS};
        let (base_report, base_trace) = capture_run(CostModel::rtx2080ti());
        assert!(!base_trace.schedule.is_empty());
        let identity = replay_schedule(&base_trace.schedule, &Speedups::identity());
        assert_eq!(identity.total, base_report.total_time);
        assert_eq!(identity.busy, base_report.busy_time);
        assert_eq!(identity.launches, base_report.kernel_count);
        for component in 0..WHATIF_COMPONENTS {
            for k in [1.1, 1.25, 1.5, 2.0, f64::INFINITY] {
                let s = Speedups::component(component, k);
                let predicted = replay_schedule(&base_trace.schedule, &s);
                let (re_report, _) = capture_run(CostModel::rtx2080ti().with_speedups(&s));
                assert_eq!(
                    predicted.total, re_report.total_time,
                    "prediction must equal the real re-run for component {component} at {k}x"
                );
                assert_eq!(predicted.busy, re_report.busy_time);
            }
        }
    }

    #[test]
    fn kind_counts_tally_launches() {
        let mut s = Session::new(fast_model());
        s.record(Kernel::gemm("a", 8, 8, 8));
        s.record(Kernel::gemm("b", 8, 8, 8));
        s.record(Kernel::gather("g", 10, 4));
        let report = s.into_report();
        assert_eq!(
            report
                .kind_counts
                .iter()
                .find(|(k, _)| *k == KernelKind::Gemm)
                .unwrap()
                .1,
            2
        );
        assert_eq!(
            report
                .kind_counts
                .iter()
                .find(|(k, _)| *k == KernelKind::Gather)
                .unwrap()
                .1,
            1
        );
    }
}
