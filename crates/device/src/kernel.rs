//! Device kernel launch descriptors.
//!
//! Every tensor operation executed under a [`crate::Session`] reports one or
//! more `Kernel`s. The descriptor carries the information the roofline cost
//! model needs: the kernel class (which selects an efficiency factor), the
//! floating-point work, and the bytes moved through DRAM.

/// The class of a device kernel.
///
/// The class determines which roofline efficiency factors the
/// [`crate::CostModel`] applies: dense GEMMs run close to peak FLOP/s while
/// gather/scatter/segment kernels — the backbone of message passing — are
/// memory-latency bound and achieve only a fraction of peak DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense matrix multiply (cuBLAS-like).
    Gemm,
    /// Elementwise map over contiguous data (add, relu, sigmoid, ...).
    Elementwise,
    /// Full or axis reduction over contiguous data.
    Reduction,
    /// Row gather through an index array (`index_select`).
    Gather,
    /// Row scatter-add through an index array (atomics).
    Scatter,
    /// Segment reduction (sum/mean/max over variable-length segments).
    Segment,
    /// Segment-wise softmax (attention normalization).
    Softmax,
    /// Normalization kernels (batch-norm statistics / apply, L2 norm).
    Norm,
    /// Fused generalized SpMM (DGL's GSpMM: message + aggregate in one kernel).
    SpMM,
    /// Generalized SDDMM (DGL's GSDDMM: per-edge binary op on endpoints).
    SDDMM,
    /// Host-device or device-device copy.
    Transfer,
}

impl KernelKind {
    /// Short human-readable label used in profiler dumps.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Gemm => "gemm",
            KernelKind::Elementwise => "elementwise",
            KernelKind::Reduction => "reduction",
            KernelKind::Gather => "gather",
            KernelKind::Scatter => "scatter",
            KernelKind::Segment => "segment",
            KernelKind::Softmax => "softmax",
            KernelKind::Norm => "norm",
            KernelKind::SpMM => "spmm",
            KernelKind::SDDMM => "sddmm",
            KernelKind::Transfer => "transfer",
        }
    }
}

/// A single device kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    /// Static name of the launching operation (e.g. `"matmul"`, `"gspmm_sum"`).
    pub name: &'static str,
    /// Kernel class; selects roofline efficiency factors.
    pub kind: KernelKind,
    /// Floating point operations performed.
    pub flops: u64,
    /// Bytes read + written through DRAM.
    pub bytes: u64,
}

impl Kernel {
    /// Creates a kernel descriptor with explicit work counts.
    pub fn new(name: &'static str, kind: KernelKind, flops: u64, bytes: u64) -> Self {
        Kernel {
            name,
            kind,
            flops,
            bytes,
        }
    }

    /// A dense GEMM of shape `[m, k] x [k, n]` in f32.
    pub fn gemm(name: &'static str, m: usize, k: usize, n: usize) -> Self {
        let flops = 2 * m as u64 * k as u64 * n as u64;
        let bytes = 4 * (m * k + k * n + m * n) as u64;
        Kernel::new(name, KernelKind::Gemm, flops, bytes)
    }

    /// An elementwise kernel over `elems` f32 values with `ops_per_elem`
    /// arithmetic operations and `streams` tensor operands (inputs + outputs).
    pub fn elementwise(name: &'static str, elems: usize, ops_per_elem: u64, streams: u64) -> Self {
        Kernel::new(
            name,
            KernelKind::Elementwise,
            elems as u64 * ops_per_elem,
            4 * elems as u64 * streams,
        )
    }

    /// A row gather: `rows` rows of `cols` f32 values selected by index.
    pub fn gather(name: &'static str, rows: usize, cols: usize) -> Self {
        let elems = rows as u64 * cols as u64;
        Kernel::new(name, KernelKind::Gather, 0, 8 * elems + 4 * rows as u64)
    }

    /// A row scatter-add: `rows` rows of `cols` f32 values accumulated by index.
    pub fn scatter(name: &'static str, rows: usize, cols: usize) -> Self {
        let elems = rows as u64 * cols as u64;
        // read src + read-modify-write dst (atomics) + index array
        Kernel::new(
            name,
            KernelKind::Scatter,
            elems,
            12 * elems + 4 * rows as u64,
        )
    }

    /// A segment reduction over `rows` input rows of `cols` values into
    /// `segments` output rows.
    pub fn segment(name: &'static str, rows: usize, cols: usize, segments: usize) -> Self {
        let in_elems = rows as u64 * cols as u64;
        let out_elems = segments as u64 * cols as u64;
        Kernel::new(
            name,
            KernelKind::Segment,
            in_elems,
            4 * (in_elems + out_elems) + 4 * rows as u64,
        )
    }

    /// A host<->device or peer transfer of `bytes` bytes.
    pub fn transfer(name: &'static str, bytes: u64) -> Self {
        Kernel::new(name, KernelKind::Transfer, 0, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_work_counts() {
        let k = Kernel::gemm("mm", 4, 8, 2);
        assert_eq!(k.flops, 2 * 4 * 8 * 2);
        assert_eq!(k.bytes, 4 * (4 * 8 + 8 * 2 + 4 * 2));
        assert_eq!(k.kind, KernelKind::Gemm);
    }

    #[test]
    fn elementwise_streams_scale_bytes() {
        let unary = Kernel::elementwise("relu", 100, 1, 2);
        let binary = Kernel::elementwise("add", 100, 1, 3);
        assert!(binary.bytes > unary.bytes);
    }

    #[test]
    fn labels_are_distinct() {
        use KernelKind::*;
        let kinds = [
            Gemm,
            Elementwise,
            Reduction,
            Gather,
            Scatter,
            Segment,
            Softmax,
            Norm,
            SpMM,
            SDDMM,
            Transfer,
        ];
        let mut labels: Vec<_> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn scatter_costs_more_bytes_than_gather() {
        let g = Kernel::gather("g", 100, 16);
        let s = Kernel::scatter("s", 100, 16);
        assert!(s.bytes > g.bytes, "scatter RMW traffic must exceed gather");
    }
}
