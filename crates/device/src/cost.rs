//! Roofline cost model for simulated kernels and host-side framework work.
//!
//! A kernel's device time is `max(flops / eff_flops, bytes / eff_bw)` plus a
//! fixed device-side scheduling overhead; issuing it also costs the host a
//! launch overhead. The efficiency factors per [`KernelKind`] encode the
//! well-known behaviour of GNN workloads on GPUs: GEMMs approach peak FLOP/s
//! while gather/scatter/segment kernels are bound by irregular DRAM access.
//!
//! The host-side constants model the Python/C++ driver work the paper's
//! time-breakdown figures attribute to "data loading": collating a mini-batch
//! of graphs into one disjoint-union graph. The DGL-like framework pays a
//! documented multiplier for its heterograph generalization (see
//! `rgl::loader`).

use crate::kernel::{Kernel, KernelKind};

/// Analytical device + host cost model.
///
/// Construct via [`CostModel::rtx2080ti`] (the paper's hardware) or build a
/// custom one with [`CostModel::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth in bytes/s.
    pub peak_bw: f64,
    /// Host-side cost of issuing one kernel (seconds).
    pub launch_overhead: f64,
    /// Device-side fixed cost per kernel (scheduling, tail effects; seconds).
    pub kernel_overhead: f64,
    /// Usable device DRAM capacity in bytes. The static memory certifier
    /// (`gnn-lint`) compares each cell's certified peak footprint against
    /// this when deciding `peak-exceeds-device-memory`.
    pub device_memory: u64,
    /// Compute efficiency factor per kernel kind (fraction of `peak_flops`).
    flops_eff: [f64; 11],
    /// Bandwidth efficiency factor per kernel kind (fraction of `peak_bw`).
    bw_eff: [f64; 11],
    /// Hypothetical what-if speedups (identity on every real model); see
    /// [`CostModel::with_speedups`].
    speedups: Speedups,
}

pub use gnn_obs::whatif::{Speedups, COMPONENT_HOST, COMPONENT_LAUNCH, WHATIF_COMPONENTS};

/// Human-readable label of what-if component `component` (a kernel kind
/// label in [`PRICED_KINDS`] order, `"launch"`, or `"host"`).
///
/// # Panics
///
/// Panics if `component >= WHATIF_COMPONENTS`.
pub fn component_label(component: usize) -> &'static str {
    match component {
        COMPONENT_LAUNCH => "launch",
        COMPONENT_HOST => "host",
        i => PRICED_KINDS[i].label(),
    }
}

/// Every kernel kind the cost model prices, in efficiency-table order.
/// The counter model ([`crate::counters`]) and the `counter-coverage` lint
/// both iterate this list, so pricing a new kind without giving it a
/// FLOPs/bytes formula is a lint failure, not a silent gap.
pub const PRICED_KINDS: [KernelKind; 11] = [
    KernelKind::Gemm,
    KernelKind::Elementwise,
    KernelKind::Reduction,
    KernelKind::Gather,
    KernelKind::Scatter,
    KernelKind::Segment,
    KernelKind::Softmax,
    KernelKind::Norm,
    KernelKind::SpMM,
    KernelKind::SDDMM,
    KernelKind::Transfer,
];

pub(crate) fn kind_index(kind: KernelKind) -> usize {
    match kind {
        KernelKind::Gemm => 0,
        KernelKind::Elementwise => 1,
        KernelKind::Reduction => 2,
        KernelKind::Gather => 3,
        KernelKind::Scatter => 4,
        KernelKind::Segment => 5,
        KernelKind::Softmax => 6,
        KernelKind::Norm => 7,
        KernelKind::SpMM => 8,
        KernelKind::SDDMM => 9,
        KernelKind::Transfer => 10,
    }
}

impl CostModel {
    /// Cost model calibrated to the paper's NVIDIA RTX 2080Ti.
    ///
    /// Peak numbers are the published specs (13.45 TFLOP/s fp32, 616 GB/s
    /// GDDR6); efficiency factors are typical measured fractions for each
    /// kernel class on Turing (GEMM ~55% of peak FLOP/s for mid-size
    /// matrices, streaming elementwise ~80% of bandwidth, atomically
    /// scattered access ~25%...). Launch overhead of ~6 µs matches CUDA
    /// driver measurements and makes small-kernel-dominated workloads
    /// launch-bound, which is exactly the regime the paper observes.
    pub fn rtx2080ti() -> Self {
        CostModel {
            peak_flops: 13.45e12,
            peak_bw: 616.0e9,
            launch_overhead: 6.0e-6,
            kernel_overhead: 1.5e-6,
            device_memory: 11 * (1u64 << 30),
            //           gemm  elem  red   gath  scat  seg   smax  norm  spmm  sddmm xfer
            flops_eff: [
                0.55, 0.05, 0.05, 0.02, 0.02, 0.03, 0.03, 0.05, 0.10, 0.05, 1.0,
            ],
            // GNN gathers/scatters move whole feature rows (hundreds of
            // contiguous bytes), so their effective bandwidth sits well
            // above random-word access, below pure streaming.
            bw_eff: [
                0.85, 0.80, 0.70, 0.55, 0.50, 0.48, 0.45, 0.65, 0.55, 0.45, 0.60,
            ],
            speedups: Speedups::identity(),
        }
    }

    /// Cost model for an NVIDIA A100 (SXM, fp32 non-tensor-core): ~19.5
    /// TFLOP/s and 1555 GB/s HBM2e, same CUDA launch overheads. Useful for
    /// asking how the study's conclusions shift on newer hardware: more
    /// bandwidth narrows the device-side gaps, but launch-bound workloads
    /// stay launch-bound — GNN utilization drops even lower.
    pub fn a100() -> Self {
        CostModel {
            peak_flops: 19.5e12,
            peak_bw: 1555.0e9,
            device_memory: 40 * (1u64 << 30),
            ..CostModel::rtx2080ti()
        }
    }

    /// Starts building a custom cost model from the 2080Ti defaults.
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder {
            model: CostModel::rtx2080ti(),
        }
    }

    /// Device execution time of `kernel` in seconds (excluding launch).
    ///
    /// Computed as the unscaled roofline time divided by the kernel kind's
    /// what-if speedup factor (`1.0` on every real model); the division is
    /// last so causal replay can reproduce an overlaid model exactly.
    pub fn kernel_time(&self, kernel: &Kernel) -> f64 {
        let (compute, traffic) = self.roofline_terms(kernel);
        let base = self.kernel_overhead + compute.max(traffic);
        base / self.speedups.kinds[kind_index(kernel.kind)]
    }

    /// The two roofline legs of `kernel`'s duration, in seconds: time under
    /// the effective compute rate and time under the effective bandwidth.
    /// `kernel_time` is their max plus the fixed kernel overhead; the
    /// counter model uses the individual terms to classify boundness.
    pub fn roofline_terms(&self, kernel: &Kernel) -> (f64, f64) {
        let i = kind_index(kernel.kind);
        let compute = kernel.flops as f64 / (self.peak_flops * self.flops_eff[i]);
        let traffic = kernel.bytes as f64 / (self.peak_bw * self.bw_eff[i]);
        (compute, traffic)
    }

    /// The `(flops, bandwidth)` efficiency fractions applied to `kind`.
    pub fn efficiency(&self, kind: KernelKind) -> (f64, f64) {
        let i = kind_index(kind);
        (self.flops_eff[i], self.bw_eff[i])
    }

    /// Host time spent issuing one kernel, in seconds.
    pub fn launch_time(&self) -> f64 {
        self.launch_overhead / self.speedups.launch
    }

    /// Derives a hypothetical model with `speedups` overlaid: every cost is
    /// the base model's value divided by the matching factor. The receiver
    /// is not mutated, so the real model stays intact.
    ///
    /// # Panics
    ///
    /// Panics if any factor is not positive (`f64::INFINITY` is allowed and
    /// removes the component's cost entirely).
    pub fn with_speedups(&self, speedups: &Speedups) -> CostModel {
        for (i, &k) in speedups.kinds.iter().enumerate() {
            assert!(
                k > 0.0,
                "speedup for {} must be positive",
                component_label(i)
            );
        }
        assert!(speedups.launch > 0.0, "launch speedup must be positive");
        assert!(speedups.host > 0.0, "host speedup must be positive");
        let mut m = self.clone();
        m.speedups = Speedups {
            kinds: std::array::from_fn(|i| self.speedups.kinds[i] * speedups.kinds[i]),
            launch: self.speedups.launch * speedups.launch,
            host: self.speedups.host * speedups.host,
        };
        m
    }

    /// The what-if speedup overlay in effect (identity on real models).
    pub fn speedups(&self) -> &Speedups {
        &self.speedups
    }

    /// The factor dividing pure host work, consumed by
    /// [`crate::session::Session::host`].
    pub fn host_speedup(&self) -> f64 {
        self.speedups.host
    }
}

/// Builder for custom [`CostModel`]s (used by calibration tests and ablations).
#[derive(Debug, Clone)]
pub struct CostModelBuilder {
    model: CostModel,
}

impl CostModelBuilder {
    /// Sets peak fp32 throughput (FLOP/s).
    pub fn peak_flops(mut self, v: f64) -> Self {
        self.model.peak_flops = v;
        self
    }

    /// Sets peak DRAM bandwidth (bytes/s).
    pub fn peak_bw(mut self, v: f64) -> Self {
        self.model.peak_bw = v;
        self
    }

    /// Sets host launch overhead per kernel (seconds).
    pub fn launch_overhead(mut self, v: f64) -> Self {
        self.model.launch_overhead = v;
        self
    }

    /// Sets device fixed overhead per kernel (seconds).
    pub fn kernel_overhead(mut self, v: f64) -> Self {
        self.model.kernel_overhead = v;
        self
    }

    /// Sets the usable device DRAM capacity (bytes).
    pub fn device_memory(mut self, bytes: u64) -> Self {
        self.model.device_memory = bytes;
        self
    }

    /// Sets the efficiency factors for one kernel kind.
    pub fn efficiency(mut self, kind: KernelKind, flops_frac: f64, bw_frac: f64) -> Self {
        let i = kind_index(kind);
        self.model.flops_eff[i] = flops_frac;
        self.model.bw_eff[i] = bw_frac;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CostModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_is_compute_bound_at_scale() {
        let m = CostModel::rtx2080ti();
        let big = Kernel::gemm("mm", 4096, 4096, 4096);
        let t = m.kernel_time(&big);
        let compute = big.flops as f64 / (m.peak_flops * 0.55);
        assert!((t - (compute + m.kernel_overhead)).abs() < 1e-9);
    }

    #[test]
    fn scatter_is_memory_bound() {
        let m = CostModel::rtx2080ti();
        let k = Kernel::scatter("sc", 1_000_000, 64);
        let traffic = k.bytes as f64 / (m.peak_bw * 0.50);
        assert!((m.kernel_time(&k) - (traffic + m.kernel_overhead)).abs() < 1e-12);
    }

    #[test]
    fn tiny_kernel_dominated_by_overhead() {
        let m = CostModel::rtx2080ti();
        let k = Kernel::elementwise("relu", 8, 1, 2);
        let t = m.kernel_time(&k);
        assert!(
            t < 2.0 * m.kernel_overhead,
            "tiny kernels should be overhead bound: {t}"
        );
    }

    #[test]
    fn a100_is_strictly_faster_per_kernel() {
        let t = CostModel::rtx2080ti();
        let a = CostModel::a100();
        for k in [
            Kernel::gemm("mm", 512, 512, 512),
            Kernel::scatter("sc", 100_000, 64),
            Kernel::elementwise("relu", 1_000_000, 1, 2),
        ] {
            assert!(a.kernel_time(&k) < t.kernel_time(&k), "{}", k.name);
        }
        // Launch overhead is a host property: unchanged.
        assert_eq!(a.launch_time(), t.launch_time());
    }

    #[test]
    fn device_memory_capacities() {
        assert_eq!(CostModel::rtx2080ti().device_memory, 11u64 << 30);
        assert_eq!(CostModel::a100().device_memory, 40u64 << 30);
        let m = CostModel::builder().device_memory(1 << 20).build();
        assert_eq!(m.device_memory, 1 << 20);
    }

    #[test]
    fn builder_overrides_apply() {
        let m = CostModel::builder()
            .peak_flops(1e12)
            .launch_overhead(1e-5)
            .efficiency(KernelKind::Gemm, 1.0, 1.0)
            .build();
        assert_eq!(m.peak_flops, 1e12);
        assert_eq!(m.launch_time(), 1e-5);
        let k = Kernel::gemm("mm", 1024, 1024, 1024);
        let compute = k.flops as f64 / 1e12;
        assert!((m.kernel_time(&k) - (compute + m.kernel_overhead)).abs() < 1e-12);
    }

    #[test]
    fn speedup_overlay_divides_exactly() {
        let base = CostModel::rtx2080ti();
        for (i, kind) in PRICED_KINDS.iter().enumerate() {
            let k = Kernel::new("k", *kind, 1_000_000, 4_000_000);
            let twice = base.with_speedups(&Speedups::component(i, 2.0));
            // Bit-exact: the overlay divides the base value as its last step.
            assert_eq!(twice.kernel_time(&k), base.kernel_time(&k) / 2.0);
            let gone = base.with_speedups(&Speedups::component(i, f64::INFINITY));
            assert_eq!(gone.kernel_time(&k), 0.0);
            // Other kinds are untouched.
            let other = PRICED_KINDS[(i + 1) % PRICED_KINDS.len()];
            let o = Kernel::new("o", other, 1_000_000, 4_000_000);
            assert_eq!(twice.kernel_time(&o), base.kernel_time(&o));
        }
        let launch = base.with_speedups(&Speedups::component(COMPONENT_LAUNCH, 4.0));
        assert_eq!(launch.launch_time(), base.launch_time() / 4.0);
        let host = base.with_speedups(&Speedups::component(COMPONENT_HOST, 2.0));
        assert_eq!(host.host_speedup(), 2.0);
        // The receiver itself is never mutated.
        assert_eq!(base, CostModel::rtx2080ti());
        assert!(base.speedups().is_identity());
        assert!(!launch.speedups().is_identity());
    }

    #[test]
    fn component_labels_cover_all_levers() {
        let labels: Vec<&str> = (0..WHATIF_COMPONENTS).map(component_label).collect();
        assert_eq!(labels.len(), 13);
        assert_eq!(labels[COMPONENT_LAUNCH], "launch");
        assert_eq!(labels[COMPONENT_HOST], "host");
        assert!(labels.contains(&"gemm") && labels.contains(&"transfer"));
        let unique: std::collections::HashSet<&str> = labels.iter().copied().collect();
        assert_eq!(unique.len(), labels.len(), "labels must be distinct");
    }

    #[test]
    fn scatter_slower_than_gather_same_shape() {
        let m = CostModel::rtx2080ti();
        let g = Kernel::gather("g", 100_000, 64);
        let s = Kernel::scatter("s", 100_000, 64);
        assert!(m.kernel_time(&s) > m.kernel_time(&g));
    }

    #[test]
    fn fused_spmm_beats_gather_plus_scatter() {
        // The rationale for DGL's fused GSpMM kernel: one fused launch should
        // be cheaper than the gather + scatter pair RustyG issues.
        let m = CostModel::rtx2080ti();
        let edges = 50_000;
        let cols = 64;
        let fused = Kernel::new(
            "gspmm",
            KernelKind::SpMM,
            (edges * cols) as u64,
            (8 * edges * cols + 8 * edges) as u64,
        );
        let gather = Kernel::gather("g", edges, cols);
        let scatter = Kernel::scatter("s", edges, cols);
        assert!(
            m.kernel_time(&fused) + m.launch_time()
                < m.kernel_time(&gather) + m.kernel_time(&scatter) + 2.0 * m.launch_time()
        );
    }
}
