//! Dense, row-major, 2-D f32 storage.
//!
//! Every value in the study is a matrix: node-feature matrices `[N, F]`,
//! per-edge matrices `[E, F]`, weight matrices `[F_in, F_out]`, column
//! vectors `[N, 1]`, and scalars `[1, 1]`. A fixed-rank representation keeps
//! indexing trivial and lets the inner loops vectorize.
//!
//! `NdArray` is pure math with no autograd and no device instrumentation —
//! those live in [`crate::autograd`] and [`crate::ops`].

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Default)]
pub struct NdArray {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for NdArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NdArray[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl NdArray {
    /// Creates an array of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        NdArray {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an array filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        NdArray {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `[1, 1]` scalar.
    pub fn scalar(value: f32) -> Self {
        NdArray::full(1, 1, value)
    }

    /// Creates an array from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "shape [{rows}x{cols}] vs {} elems",
            data.len()
        );
        NdArray { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the backing buffer in bytes.
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `[1, 1]` array.
    ///
    /// # Panics
    ///
    /// Panics if the array is not a scalar.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.shape(),
            (1, 1),
            "item() on non-scalar {:?}",
            self.shape()
        );
        self.data[0]
    }

    /// Elementwise map into a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> NdArray {
        NdArray {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with `other` into a new array.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        NdArray {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &NdArray) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &NdArray) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dense matmul `self [m,k] @ b [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, b: &NdArray) -> NdArray {
        assert_eq!(
            self.cols,
            b.rows,
            "matmul [{:?}] x [{:?}]",
            self.shape(),
            b.shape()
        );
        let (m, k, n) = (self.rows, self.cols, b.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &a_ik) in arow.iter().enumerate().take(k) {
                if a_ik == 0.0 {
                    continue;
                }
                let brow = &b.data[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += a_ik * bv;
                }
            }
        }
        NdArray {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// `self [m,k] @ b.T` where `b` is `[n,k]`, giving `[m,n]`.
    pub fn matmul_nt(&self, b: &NdArray) -> NdArray {
        assert_eq!(
            self.cols,
            b.cols,
            "matmul_nt [{:?}] x [{:?}]^T",
            self.shape(),
            b.shape()
        );
        let (m, k, n) = (self.rows, self.cols, b.rows);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = b.row(j);
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += arow[kk] * brow[kk];
                }
                *o = acc;
            }
        }
        NdArray {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// `self.T @ b` where `self` is `[m,k]` and `b` is `[m,n]`, giving `[k,n]`.
    pub fn matmul_tn(&self, b: &NdArray) -> NdArray {
        assert_eq!(
            self.rows,
            b.rows,
            "matmul_tn [{:?}]^T x [{:?}]",
            self.shape(),
            b.shape()
        );
        let (m, k, n) = (self.rows, self.cols, b.cols);
        let mut out = vec![0.0f32; k * n];
        for i in 0..m {
            let arow = self.row(i);
            let brow = &b.data[i * n..(i + 1) * n];
            for (kk, &a_ik) in arow.iter().enumerate().take(k) {
                if a_ik == 0.0 {
                    continue;
                }
                let orow = &mut out[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += a_ik * bv;
                }
            }
        }
        NdArray {
            rows: k,
            cols: n,
            data: out,
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> NdArray {
        let mut out = NdArray::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Sum of every element.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Per-column sums, shape `[1, cols]`.
    pub fn col_sums(&self) -> NdArray {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        NdArray {
            rows: 1,
            cols: self.cols,
            data: out,
        }
    }

    /// Per-row sums, shape `[rows, 1]`.
    pub fn row_sums(&self) -> NdArray {
        let data = (0..self.rows).map(|r| self.row(r).iter().sum()).collect();
        NdArray {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Index of the maximum element of each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl From<Vec<f32>> for NdArray {
    /// Converts a flat vector into a column vector `[n, 1]`.
    fn from(v: Vec<f32>) -> Self {
        let rows = v.len();
        NdArray {
            rows,
            cols: 1,
            data: v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = NdArray::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = NdArray::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let direct = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert_eq!(direct, via_t);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = NdArray::from_vec(5, 3, (0..15).map(|i| i as f32 * 0.5).collect());
        let b = NdArray::from_vec(5, 2, (0..10).map(|i| i as f32).collect());
        let direct = a.matmul_tn(&b);
        let via_t = a.transpose().matmul(&b);
        assert_eq!(direct, via_t);
    }

    #[test]
    fn col_and_row_sums() {
        let a = NdArray::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.col_sums().data(), &[5., 7., 9.]);
        assert_eq!(a.row_sums().data(), &[6., 15.]);
        assert_eq!(a.sum(), 21.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = NdArray::from_vec(2, 3, vec![1., 3., 3., 0., -1., -2.]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn map_zip_axpy() {
        let a = NdArray::from_vec(1, 3, vec![1., -2., 3.]);
        let b = NdArray::from_vec(1, 3, vec![1., 1., 1.]);
        assert_eq!(a.map(f32::abs).data(), &[1., 2., 3.]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[2., -1., 4.]);
        let mut c = b.clone();
        c.axpy(2.0, &a);
        assert_eq!(c.data(), &[3., -3., 7.]);
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(NdArray::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "item() on non-scalar")]
    fn item_rejects_matrix() {
        NdArray::zeros(2, 2).item();
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        NdArray::zeros(2, 3).matmul(&NdArray::zeros(2, 3));
    }

    #[test]
    fn non_finite_detection() {
        let mut a = NdArray::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.data_mut()[3] = f32::NAN;
        assert!(a.has_non_finite());
    }
}
