//! Reverse-mode automatic differentiation.
//!
//! A [`Tensor`] is a shared handle to a value plus (when gradients are
//! needed) a record of the operation that produced it. Calling
//! [`Tensor::backward`] on a scalar loss walks the recorded DAG in reverse
//! topological order, invoking each operation's [`Backward`] implementation,
//! which accumulates gradients into its parents via [`accumulate`].
//!
//! Like PyTorch, the tape is *pruned eagerly*: an operation whose inputs all
//! have `needs_grad == false` produces a plain leaf, so inference-mode
//! forward passes keep no graph alive.
//!
//! The engine is single-threaded (`Rc`/`RefCell`); the study's simulated
//! device executes one stream, so there is nothing to parallelize.

use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use crate::ndarray::NdArray;

/// The backward rule of a differentiable operation.
///
/// Implementations read whatever forward state they captured at construction
/// and push gradients into `parents` with [`accumulate`]. Frameworks outside
/// this crate (e.g. `rgl`'s fused GSpMM) implement this trait to register
/// custom fused operations.
pub trait Backward {
    /// Propagates `grad` (gradient w.r.t. this op's output) to `parents`.
    fn backward(&self, grad: &NdArray, parents: &[Tensor]);

    /// Operation name for debugging.
    fn name(&self) -> &'static str;
}

struct Node {
    parents: Vec<Tensor>,
    op: Box<dyn Backward>,
}

struct Inner {
    id: u64,
    data: RefCell<NdArray>,
    grad: RefCell<Option<NdArray>>,
    requires_grad: bool,
    needs_grad: bool,
    node: RefCell<Option<Node>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Tear down long parent chains iteratively: a 10k-layer-deep tape
        // (e.g. hundreds of epochs of ops chained through running losses)
        // must not overflow the stack through recursive Rc drops.
        let mut stack: Vec<Node> = Vec::new();
        if let Some(node) = self.node.get_mut().take() {
            stack.push(node);
        }
        while let Some(node) = stack.pop() {
            for parent in node.parents {
                let mut rc = parent.inner;
                if let Some(inner) = Rc::get_mut(&mut rc) {
                    if let Some(n) = inner.node.get_mut().take() {
                        stack.push(n);
                    }
                }
            }
        }
    }
}

/// A shared, differentiable matrix value.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.data.borrow();
        write!(
            f,
            "Tensor(id={}, shape={:?}, requires_grad={})",
            self.inner.id,
            d.shape(),
            self.inner.requires_grad
        )
    }
}

fn next_id() -> u64 {
    use std::cell::Cell;
    thread_local! {
        static NEXT: Cell<u64> = const { Cell::new(0) };
    }
    NEXT.with(|n| {
        let id = n.get();
        n.set(id + 1);
        id
    })
}

thread_local! {
    static GRAD_ENABLED: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Host cost of the autograd engine per executed backward node (queueing,
/// ready-count tracking, hook dispatch — torch's engine overhead).
const ENGINE_OVERHEAD_PER_NODE: f64 = 12e-6;

/// Whether operations currently record the tape (see [`no_grad`]).
pub fn grad_enabled() -> bool {
    GRAD_ENABLED.with(std::cell::Cell::get)
}

/// Runs `f` in inference mode: no operation inside records a backward node,
/// so no forward activation is retained by the tape — PyTorch's
/// `torch.no_grad()`. Nesting is allowed; the previous state is restored on
/// exit (also on panic).
///
/// # Example
///
/// ```
/// use gnn_tensor::{autograd::no_grad, NdArray, Tensor};
///
/// let w = Tensor::param(NdArray::scalar(2.0));
/// let y = no_grad(|| w.scale(3.0));
/// assert!(!y.needs_grad());
/// y.backward(); // no-op: nothing was recorded
/// assert!(w.grad().is_none());
/// ```
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            GRAD_ENABLED.with(|g| g.set(self.0));
        }
    }
    let _restore = Restore(GRAD_ENABLED.with(|g| g.replace(false)));
    f()
}

/// Runs `f` as an explicit inference pass: tape recording is disabled (as
/// in [`no_grad`]), and the caller is expected to drive layers with
/// `training = false` so dropout is the identity and batch norm reads its
/// running statistics.
///
/// Semantically this is [`no_grad`] under a name that states intent — the
/// serving path (`gnn-serve`) wraps every forward in it. The eval-parity
/// tests assert the contract that makes it safe: an eval-mode forward
/// produces bit-identical outputs with and without the tape, so skipping
/// recording is purely a memory/tape optimization, never a numerics change.
pub fn inference<T>(f: impl FnOnce() -> T) -> T {
    no_grad(f)
}

impl Tensor {
    /// Creates a constant leaf (no gradient tracking).
    pub fn new(data: NdArray) -> Self {
        Tensor {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: false,
                needs_grad: false,
                node: RefCell::new(None),
            }),
        }
    }

    /// Creates a trainable parameter leaf.
    pub fn param(data: NdArray) -> Self {
        Tensor {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: true,
                needs_grad: true,
                node: RefCell::new(None),
            }),
        }
    }

    /// Creates an interior tensor produced by a differentiable op.
    ///
    /// Registers a device allocation for the output buffer. If no parent
    /// needs gradients, the node is pruned and the result is a constant leaf
    /// (inference mode keeps no tape).
    pub fn from_op(data: NdArray, parents: Vec<Tensor>, op: Box<dyn Backward>) -> Self {
        gnn_device::alloc(data.byte_size());
        let needs = grad_enabled() && parents.iter().any(Tensor::needs_grad);
        let node = if needs {
            Some(Node { parents, op })
        } else {
            None
        };
        Tensor {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: false,
                needs_grad: needs,
                node: RefCell::new(node),
            }),
        }
    }

    /// Unique id of this tensor.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether this is a trainable leaf.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Whether gradients flow through this tensor.
    pub fn needs_grad(&self) -> bool {
        self.inner.needs_grad
    }

    /// Borrows the value.
    pub fn data(&self) -> Ref<'_, NdArray> {
        self.inner.data.borrow()
    }

    /// Mutably borrows the value (used by optimizers; does not touch the tape).
    pub fn data_mut(&self) -> RefMut<'_, NdArray> {
        self.inner.data.borrow_mut()
    }

    /// `(rows, cols)` of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.data.borrow().shape()
    }

    /// Clones the accumulated gradient, if any.
    pub fn grad(&self) -> Option<NdArray> {
        self.inner.grad.borrow().clone()
    }

    /// Borrows the accumulated gradient.
    pub fn grad_ref(&self) -> Ref<'_, Option<NdArray>> {
        self.inner.grad.borrow()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// The scalar value of a `[1, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar.
    pub fn item(&self) -> f32 {
        self.inner.data.borrow().item()
    }

    /// A constant leaf sharing a copy of this tensor's current value.
    pub fn detach(&self) -> Tensor {
        Tensor::new(self.inner.data.borrow().clone())
    }

    /// Runs reverse-mode differentiation from this tensor, seeding with ones.
    ///
    /// Typically called on the scalar loss. Gradients of interior tensors are
    /// consumed during the walk; gradients of leaves with
    /// `requires_grad == true` remain readable via [`Tensor::grad`] and are
    /// *accumulated* across calls until [`Tensor::zero_grad`].
    pub fn backward(&self) {
        let seed = {
            let d = self.inner.data.borrow();
            NdArray::full(d.rows(), d.cols(), 1.0)
        };
        self.backward_with(seed);
    }

    /// Runs reverse-mode differentiation with an explicit seed gradient.
    ///
    /// # Panics
    ///
    /// Panics if the seed shape does not match the tensor shape.
    pub fn backward_with(&self, seed: NdArray) {
        assert_eq!(seed.shape(), self.shape(), "backward seed shape mismatch");
        if !self.inner.needs_grad {
            return;
        }
        accumulate(self, seed);

        // Reverse topological order via iterative post-order DFS.
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                topo.push(t);
                continue;
            }
            if !visited.insert(t.id()) {
                continue;
            }
            stack.push((t.clone(), true));
            if let Some(node) = t.inner.node.borrow().as_ref() {
                for p in &node.parents {
                    if p.needs_grad() && !visited.contains(&p.id()) {
                        stack.push((p.clone(), false));
                    }
                }
            }
        }

        for t in topo.iter().rev() {
            let node = t.inner.node.borrow();
            let Some(node) = node.as_ref() else { continue };
            // Interior gradients are consumed: they are not observable after
            // backward, matching PyTorch's default.
            let Some(grad) = t.inner.grad.borrow_mut().take() else {
                continue;
            };
            // Engine bookkeeping per executed node (queueing, ready-count
            // tracking, hook dispatch) — the host-side cost of torch's
            // autograd engine.
            gnn_device::host(ENGINE_OVERHEAD_PER_NODE);
            node.op.backward(&grad, &node.parents);
        }
    }
}

/// Adds `g` into `t`'s gradient buffer (no-op if `t` does not need grad).
///
/// The first contribution moves the buffer in (tracked as a device
/// allocation); later contributions record an elementwise accumulation
/// kernel, matching how real frameworks fuse the first write and launch
/// `add_` kernels for the rest.
///
/// # Panics
///
/// Panics if `g`'s shape differs from `t`'s value shape.
pub fn accumulate(t: &Tensor, g: NdArray) {
    if !t.inner.needs_grad {
        return;
    }
    assert_eq!(g.shape(), t.shape(), "gradient shape mismatch for {t:?}");
    let mut slot = t.inner.grad.borrow_mut();
    match slot.as_mut() {
        Some(acc) => {
            gnn_device::record(gnn_device::Kernel::elementwise("grad_accum", g.len(), 1, 3));
            acc.add_assign(&g);
        }
        None => {
            gnn_device::alloc(g.byte_size());
            *slot = Some(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = a + b elementwise, minimal op for engine tests.
    struct AddBack;
    impl Backward for AddBack {
        fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
            accumulate(&parents[0], grad.clone());
            accumulate(&parents[1], grad.clone());
        }
        fn name(&self) -> &'static str {
            "add"
        }
    }

    fn add(a: &Tensor, b: &Tensor) -> Tensor {
        let data = a.data().zip(&b.data(), |x, y| x + y);
        Tensor::from_op(data, vec![a.clone(), b.clone()], Box::new(AddBack))
    }

    /// y = a * a (tests repeated-parent accumulation).
    struct SquareBack {
        saved: NdArray,
    }
    impl Backward for SquareBack {
        fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
            let g = grad.zip(&self.saved, |g, x| 2.0 * g * x);
            accumulate(&parents[0], g);
        }
        fn name(&self) -> &'static str {
            "square"
        }
    }

    fn square(a: &Tensor) -> Tensor {
        let saved = a.data().clone();
        let data = a.data().map(|x| x * x);
        Tensor::from_op(data, vec![a.clone()], Box::new(SquareBack { saved }))
    }

    #[test]
    fn add_gradients_flow_to_both_parents() {
        let a = Tensor::param(NdArray::scalar(2.0));
        let b = Tensor::param(NdArray::scalar(3.0));
        let y = add(&a, &b);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 1.0);
        assert_eq!(b.grad().unwrap().item(), 1.0);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // y = a^2 + a^2, dy/da = 4a
        let a = Tensor::param(NdArray::scalar(3.0));
        let s1 = square(&a);
        let s2 = square(&a);
        let y = add(&s1, &s2);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 12.0);
    }

    #[test]
    fn shared_subexpression_evaluated_once_in_backward() {
        // y = (a^2) + (a^2 reused) — the same tensor used twice.
        let a = Tensor::param(NdArray::scalar(2.0));
        let s = square(&a);
        let y = add(&s, &s);
        y.backward();
        // dy/ds = 2, ds/da = 2a=4 => dy/da = 8
        assert_eq!(a.grad().unwrap().item(), 8.0);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let a = Tensor::param(NdArray::scalar(1.0));
        let c = Tensor::new(NdArray::scalar(5.0));
        let y = add(&a, &c);
        y.backward();
        assert!(c.grad().is_none());
        assert_eq!(a.grad().unwrap().item(), 1.0);
    }

    #[test]
    fn tape_pruned_when_no_parent_needs_grad() {
        let a = Tensor::new(NdArray::scalar(1.0));
        let b = Tensor::new(NdArray::scalar(2.0));
        let y = add(&a, &b);
        assert!(!y.needs_grad());
        // backward on a pruned tensor is a no-op, not a panic.
        y.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn grad_accumulates_across_backward_calls_until_zeroed() {
        let a = Tensor::param(NdArray::scalar(1.0));
        let y1 = square(&a);
        y1.backward();
        let y2 = square(&a);
        y2.backward();
        assert_eq!(a.grad().unwrap().item(), 4.0);
        a.zero_grad();
        assert!(a.grad().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let a = Tensor::param(NdArray::scalar(1.0));
        let mut y = add(&a, &a);
        for _ in 0..50_000 {
            let c = Tensor::new(NdArray::scalar(0.0));
            y = add(&y, &c);
        }
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn detach_cuts_the_graph() {
        let a = Tensor::param(NdArray::scalar(2.0));
        let s = square(&a).detach();
        let y = square(&s);
        y.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "backward seed shape mismatch")]
    fn wrong_seed_shape_panics() {
        let a = Tensor::param(NdArray::zeros(2, 2));
        let y = square(&a);
        y.backward_with(NdArray::zeros(1, 1));
    }
}

#[cfg(test)]
mod no_grad_tests {
    use super::*;

    #[test]
    fn no_grad_prunes_tape() {
        let w = Tensor::param(NdArray::scalar(2.0));
        let y = no_grad(|| w.scale(3.0));
        assert!(!y.needs_grad());
        assert!(grad_enabled(), "state must be restored");
    }

    #[test]
    fn no_grad_nests_and_restores() {
        assert!(grad_enabled());
        no_grad(|| {
            assert!(!grad_enabled());
            no_grad(|| assert!(!grad_enabled()));
            assert!(!grad_enabled());
        });
        assert!(grad_enabled());
    }

    #[test]
    fn no_grad_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            no_grad(|| panic!("boom"));
        });
        assert!(result.is_err());
        assert!(grad_enabled(), "state must be restored after panic");
    }

    #[test]
    fn training_after_no_grad_still_works() {
        let w = Tensor::param(NdArray::scalar(1.0));
        no_grad(|| w.scale(2.0));
        let y = w.scale(2.0);
        y.backward();
        assert_eq!(w.grad().unwrap().item(), 2.0);
    }
}
