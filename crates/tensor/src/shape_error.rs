//! Typed shape/index errors shared by runtime checks and `gnn-lint`.
//!
//! Every shape precondition of the hot tensor ops (`matmul`, the segment
//! reductions, gather/scatter) is described by a [`ShapeError`]. The runtime
//! paths panic with its `Display` rendering; the static analyzer (`gnn-lint`)
//! reports the *same* rendering as a finding, so a shape defect produces an
//! identical message whether it is caught before the run or mid-epoch.

use std::fmt;

/// What went wrong, with the concrete dimensions involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeErrorKind {
    /// Matmul inner dimensions disagree: `lhs [m, k]` times `rhs [k', n]`
    /// with `k != k'`.
    InnerDim {
        /// Columns of the left operand.
        lhs_cols: usize,
        /// Rows of the right operand.
        rhs_rows: usize,
    },
    /// A segment-id array does not have one id per input row.
    IdsLength {
        /// Length of the id array.
        ids: usize,
        /// Number of input rows.
        rows: usize,
    },
    /// A segment id is `>= num_segments`.
    SegmentOutOfBounds {
        /// The number of output segments.
        num_segments: usize,
    },
    /// A gather/scatter index is out of bounds for the indexed extent.
    IndexOutOfBounds {
        /// Name of the violated bound (`"n"`, `"out_rows"`, ...).
        bound_name: &'static str,
        /// The extent the index must stay below.
        bound: usize,
    },
    /// An index array's length disagrees with the rows it addresses.
    IndexLength {
        /// Length of the index array.
        ids: usize,
        /// Number of rows being scattered.
        rows: usize,
    },
    /// Two operands that must share a width do not.
    WidthMismatch {
        /// Columns of the left operand.
        lhs_cols: usize,
        /// Columns of the right operand.
        rhs_cols: usize,
    },
    /// A feature width is not divisible by the head count.
    ColsNotDivisible {
        /// The feature width.
        cols: usize,
        /// The head count.
        heads: usize,
    },
}

/// A typed shape/index error: the op that detected it plus the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    /// Name of the operation whose precondition failed.
    pub op: &'static str,
    /// The violated precondition.
    pub kind: ShapeErrorKind,
}

impl ShapeError {
    /// Matmul inner-dimension mismatch.
    pub fn inner_dim(op: &'static str, lhs_cols: usize, rhs_rows: usize) -> Self {
        ShapeError {
            op,
            kind: ShapeErrorKind::InnerDim { lhs_cols, rhs_rows },
        }
    }

    /// Segment-id array length mismatch.
    pub fn ids_length(op: &'static str, ids: usize, rows: usize) -> Self {
        ShapeError {
            op,
            kind: ShapeErrorKind::IdsLength { ids, rows },
        }
    }

    /// Segment id out of bounds.
    pub fn segment_oob(op: &'static str, num_segments: usize) -> Self {
        ShapeError {
            op,
            kind: ShapeErrorKind::SegmentOutOfBounds { num_segments },
        }
    }

    /// Gather/scatter index out of bounds for `bound_name = bound`.
    pub fn index_oob(op: &'static str, bound_name: &'static str, bound: usize) -> Self {
        ShapeError {
            op,
            kind: ShapeErrorKind::IndexOutOfBounds { bound_name, bound },
        }
    }

    /// Index array length mismatch.
    pub fn index_length(op: &'static str, ids: usize, rows: usize) -> Self {
        ShapeError {
            op,
            kind: ShapeErrorKind::IndexLength { ids, rows },
        }
    }

    /// Operand width mismatch.
    pub fn width(op: &'static str, lhs_cols: usize, rhs_cols: usize) -> Self {
        ShapeError {
            op,
            kind: ShapeErrorKind::WidthMismatch { lhs_cols, rhs_cols },
        }
    }

    /// Width not divisible by the head count.
    pub fn heads(op: &'static str, cols: usize, heads: usize) -> Self {
        ShapeError {
            op,
            kind: ShapeErrorKind::ColsNotDivisible { cols, heads },
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ShapeErrorKind::InnerDim { lhs_cols, rhs_rows } => write!(
                f,
                "{}: inner dimensions disagree (lhs cols = {lhs_cols}, rhs rows = {rhs_rows})",
                self.op
            ),
            ShapeErrorKind::IdsLength { ids, rows } => {
                write!(
                    f,
                    "{}: ids length mismatch (ids = {ids}, rows = {rows})",
                    self.op
                )
            }
            ShapeErrorKind::SegmentOutOfBounds { num_segments } => write!(
                f,
                "{}: segment id out of bounds (num_segments = {num_segments})",
                self.op
            ),
            ShapeErrorKind::IndexOutOfBounds { bound_name, bound } => {
                write!(
                    f,
                    "{} index out of bounds ({bound_name} = {bound})",
                    self.op
                )
            }
            ShapeErrorKind::IndexLength { ids, rows } => write!(
                f,
                "{} index length mismatch (ids = {ids}, rows = {rows})",
                self.op
            ),
            ShapeErrorKind::WidthMismatch { lhs_cols, rhs_cols } => write!(
                f,
                "{}: operand widths differ (lhs cols = {lhs_cols}, rhs cols = {rhs_cols})",
                self.op
            ),
            ShapeErrorKind::ColsNotDivisible { cols, heads } => write!(
                f,
                "{}: cols not divisible by heads (cols = {cols}, heads = {heads})",
                self.op
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_keep_grep_compatible_substrings() {
        // Downstream tests (and users' muscle memory) match on these
        // substrings; renderings must keep them stable.
        assert!(ShapeError::segment_oob("segment_sum", 2)
            .to_string()
            .contains("segment id out of bounds (num_segments = 2)"));
        assert!(ShapeError::ids_length("segment_sum", 3, 4)
            .to_string()
            .contains("ids length mismatch"));
        assert!(ShapeError::index_oob("gather_rows", "n", 5)
            .to_string()
            .contains("gather_rows index out of bounds (n = 5)"));
        assert!(ShapeError::index_length("scatter_add_rows", 1, 2)
            .to_string()
            .contains("index length mismatch"));
        assert!(ShapeError::inner_dim("matmul", 80, 64)
            .to_string()
            .contains("inner dimensions disagree"));
    }

    #[test]
    fn error_trait_and_equality() {
        let e = ShapeError::heads("gspmm_mul_sum", 7, 2);
        let _: &dyn std::error::Error = &e;
        assert_eq!(e, ShapeError::heads("gspmm_mul_sum", 7, 2));
        assert!(e.to_string().contains("cols not divisible by heads"));
    }
}
