//! Neural-network building blocks: initialization, linear layers, batch
//! norm with running statistics, dropout, and MLPs.
//!
//! Layers follow a lightweight convention instead of a framework `Module`
//! trait: each exposes `forward(...)` and `params(&self) -> Vec<Tensor>`,
//! which the training harness flattens into the optimizer.

use std::cell::RefCell;

use rand::Rng;

use crate::autograd::Tensor;
use crate::ndarray::NdArray;

/// Weight initialization.
pub mod init {
    use super::*;

    /// Glorot/Xavier uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn glorot_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> NdArray {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        NdArray::from_vec(fan_in, fan_out, data)
    }

    /// Uniform initialization in `[-limit, limit]`.
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> NdArray {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        NdArray::from_vec(rows, cols, data)
    }
}

/// A dense affine layer `y = x W + b`.
#[derive(Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
}

impl Linear {
    /// Creates a Glorot-initialized `[in_dim, out_dim]` layer with bias.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            weight: Tensor::param(init::glorot_uniform(in_dim, out_dim, rng)),
            bias: Some(Tensor::param(NdArray::zeros(1, out_dim))),
        }
    }

    /// Creates a Glorot-initialized layer without bias.
    pub fn new_no_bias<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            weight: Tensor::param(init::glorot_uniform(in_dim, out_dim, rng)),
            bias: None,
        }
    }

    /// Applies the layer.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add_bias(b),
            None => y,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.shape().0
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.shape().1
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

/// Batch normalization over rows with running statistics.
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    running_mean: RefCell<NdArray>,
    running_var: RefCell<NdArray>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `dim` features with PyTorch defaults
    /// (`momentum = 0.1`, `eps = 1e-5`).
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            gamma: Tensor::param(NdArray::full(1, dim, 1.0)),
            beta: Tensor::param(NdArray::zeros(1, dim)),
            running_mean: RefCell::new(NdArray::zeros(1, dim)),
            running_var: RefCell::new(NdArray::full(1, dim, 1.0)),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Applies the layer; training mode updates running statistics.
    pub fn forward(&self, x: &Tensor, training: bool) -> Tensor {
        if training {
            let out = x.batch_norm_train(&self.gamma, &self.beta, self.eps);
            let mut rm = self.running_mean.borrow_mut();
            let mut rv = self.running_var.borrow_mut();
            for (r, &b) in rm.data_mut().iter_mut().zip(out.batch_mean.data()) {
                *r = (1.0 - self.momentum) * *r + self.momentum * b;
            }
            for (r, &b) in rv.data_mut().iter_mut().zip(out.batch_var.data()) {
                *r = (1.0 - self.momentum) * *r + self.momentum * b;
            }
            out.out
        } else {
            x.batch_norm_eval(
                &self.gamma,
                &self.beta,
                &self.running_mean.borrow(),
                &self.running_var.borrow(),
                self.eps,
            )
        }
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    /// Snapshot of the running statistics `(mean, var)`.
    ///
    /// Training forwards mutate these buffers, so checkpoint/retry
    /// machinery must capture them alongside the parameters to reproduce a
    /// run exactly.
    pub fn running_stats(&self) -> (Vec<f32>, Vec<f32>) {
        (
            self.running_mean.borrow().data().to_vec(),
            self.running_var.borrow().data().to_vec(),
        )
    }

    /// Restores running statistics captured by
    /// [`BatchNorm1d::running_stats`].
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the layer's feature dim.
    pub fn set_running_stats(&self, mean: &[f32], var: &[f32]) {
        self.running_mean
            .borrow_mut()
            .data_mut()
            .copy_from_slice(mean);
        self.running_var
            .borrow_mut()
            .data_mut()
            .copy_from_slice(var);
    }
}

/// Dropout layer.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} out of [0, 1)"
        );
        Dropout { p }
    }

    /// Applies dropout in training mode; identity otherwise.
    pub fn forward<R: Rng + ?Sized>(&self, x: &Tensor, training: bool, rng: &mut R) -> Tensor {
        if training && self.p > 0.0 {
            x.dropout(self.p, rng)
        } else {
            x.clone()
        }
    }
}

/// A multi-layer perceptron with ReLU between hidden layers.
///
/// Used as GIN's update function and as the graph classifier head.
#[derive(Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP through the given layer `dims` (e.g. `[in, hidden, out]`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Applies the MLP (ReLU after every layer except the last).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                h = h.relu();
            }
        }
        h
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(Linear::params).collect()
    }
}

/// Total bytes needed on device for `params` plus gradient plus two Adam
/// moment buffers (the persistent footprint the paper's `nvidia-smi`
/// readings include).
pub fn optimizer_state_bytes(params: &[Tensor]) -> u64 {
    params.iter().map(|p| 4 * p.data().byte_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(8, 3, &mut rng);
        let x = Tensor::new(NdArray::zeros(5, 8));
        assert_eq!(l.forward(&x).shape(), (5, 3));
        assert_eq!(l.params().len(), 2);
        assert_eq!(l.in_dim(), 8);
        assert_eq!(l.out_dim(), 3);
        let nb = Linear::new_no_bias(8, 3, &mut rng);
        assert_eq!(nb.params().len(), 1);
    }

    #[test]
    fn glorot_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = init::glorot_uniform(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= limit));
        // Not degenerate.
        assert!(w.data().iter().any(|&v| v.abs() > limit * 0.5));
    }

    #[test]
    fn batchnorm_running_stats_move_toward_batch() {
        let bn = BatchNorm1d::new(1);
        let x = Tensor::new(NdArray::from_vec(4, 1, vec![10., 10., 10., 10.]));
        bn.forward(&x, true);
        let rm = bn.running_mean.borrow().item();
        assert!((rm - 1.0).abs() < 1e-6, "0.9*0 + 0.1*10 = 1.0, got {rm}");
        // Eval mode must not move stats.
        bn.forward(&x, false);
        assert_eq!(bn.running_mean.borrow().item(), rm);
    }

    #[test]
    fn mlp_forward_and_param_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&[4, 8, 2], &mut rng);
        let x = Tensor::new(NdArray::zeros(3, 4));
        assert_eq!(mlp.forward(&x).shape(), (3, 2));
        assert_eq!(mlp.params().len(), 4);
    }

    #[test]
    fn dropout_layer_identity_in_eval() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dropout::new(0.9);
        let x = Tensor::new(NdArray::full(1, 10, 1.0));
        let y = d.forward(&x, false, &mut rng);
        assert_eq!(y.data().data(), &[1.0; 10]);
    }

    #[test]
    fn optimizer_state_counts_four_copies() {
        let p = Tensor::param(NdArray::zeros(10, 10));
        assert_eq!(optimizer_state_bytes(&[p]), 4 * 400);
    }

    #[test]
    fn eval_forward_is_bit_identical_with_and_without_tape() {
        // The inference-mode contract gnn-serve relies on: running an
        // eval-mode (training = false) forward under `inference` must change
        // nothing about the numbers — only whether a tape exists.
        let mut rng = StdRng::seed_from_u64(11);
        let lin = Linear::new(6, 4, &mut rng);
        let bn = BatchNorm1d::new(4);
        bn.set_running_stats(&[0.1, -0.2, 0.3, 0.05], &[1.2, 0.8, 1.0, 2.0]);
        let drop = Dropout::new(0.5);
        let x = Tensor::new(init::uniform(5, 6, 1.0, &mut rng));

        let run = |rng: &mut StdRng| {
            let h = lin.forward(&x);
            let h = bn.forward(&h, false);
            let h = drop.forward(&h, false, rng);
            h.relu()
        };
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let taped = run(&mut rng_a);
        let untaped = crate::autograd::inference(|| run(&mut rng_b));
        assert_eq!(taped.data().data(), untaped.data().data());
        // The taped output is differentiable; the inference one kept no tape.
        assert!(taped.needs_grad());
        assert!(!untaped.needs_grad());
        // Eval-mode batch norm must not have touched its running stats.
        assert_eq!(bn.running_stats().0, vec![0.1, -0.2, 0.3, 0.05]);
    }
}
