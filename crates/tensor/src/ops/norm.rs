//! Normalization kernels: batch normalization and row-wise L2 normalization.
//!
//! Batch norm appears in GIN and in all four-layer graph-classification
//! architectures of the study; L2 row normalization is GraphSAGE's
//! "project onto the unit ball" step.

// Kernel-style loops co-index several slices; index form is clearer here.
#![allow(clippy::needless_range_loop)]

use gnn_device::{record, Kernel, KernelKind};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

/// Result of a training-mode batch-norm application.
///
/// `batch_mean` / `batch_var` let the owning layer update its running
/// statistics (a non-differentiable side effect, like PyTorch).
#[derive(Debug)]
pub struct BatchNormOutput {
    /// The normalized, scaled, shifted activations.
    pub out: Tensor,
    /// Per-feature batch mean `[1, F]`.
    pub batch_mean: NdArray,
    /// Per-feature biased batch variance `[1, F]`.
    pub batch_var: NdArray,
}

struct BatchNormBack {
    xhat: NdArray,
    invstd: Vec<f32>,
    gamma: Vec<f32>,
}

impl Backward for BatchNormBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let (n, f) = grad.shape();
        record(Kernel::new(
            "batch_norm_back",
            KernelKind::Norm,
            (4 * n * f) as u64,
            (20 * n * f) as u64,
        ));
        let mut dbeta = vec![0.0f32; f];
        let mut dgamma = vec![0.0f32; f];
        for r in 0..n {
            let g = grad.row(r);
            let xh = self.xhat.row(r);
            for j in 0..f {
                dbeta[j] += g[j];
                dgamma[j] += g[j] * xh[j];
            }
        }
        if parents[0].needs_grad() {
            let nf = n as f32;
            let mut dx = NdArray::zeros(n, f);
            for r in 0..n {
                let g = grad.row(r);
                let xh = self.xhat.row(r);
                let dr = dx.row_mut(r);
                for j in 0..f {
                    dr[j] = self.gamma[j] * self.invstd[j] / nf
                        * (nf * g[j] - dbeta[j] - xh[j] * dgamma[j]);
                }
            }
            accumulate(&parents[0], dx);
        }
        accumulate(&parents[1], NdArray::from_vec(1, f, dgamma));
        accumulate(&parents[2], NdArray::from_vec(1, f, dbeta));
    }
    fn name(&self) -> &'static str {
        "batch_norm"
    }
}

struct BatchNormEvalBack {
    scale: Vec<f32>, // gamma * invstd (per feature)
    xhat: NdArray,
}

impl Backward for BatchNormEvalBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let (n, f) = grad.shape();
        record(Kernel::new(
            "batch_norm_eval_back",
            KernelKind::Norm,
            (2 * n * f) as u64,
            (12 * n * f) as u64,
        ));
        if parents[0].needs_grad() {
            let mut dx = NdArray::zeros(n, f);
            for r in 0..n {
                let g = grad.row(r);
                let dr = dx.row_mut(r);
                for j in 0..f {
                    dr[j] = g[j] * self.scale[j];
                }
            }
            accumulate(&parents[0], dx);
        }
        let mut dgamma = vec![0.0f32; f];
        let mut dbeta = vec![0.0f32; f];
        for r in 0..n {
            let g = grad.row(r);
            let xh = self.xhat.row(r);
            for j in 0..f {
                dgamma[j] += g[j] * xh[j];
                dbeta[j] += g[j];
            }
        }
        accumulate(&parents[1], NdArray::from_vec(1, f, dgamma));
        accumulate(&parents[2], NdArray::from_vec(1, f, dbeta));
    }
    fn name(&self) -> &'static str {
        "batch_norm_eval"
    }
}

struct L2NormalizeBack {
    y: NdArray,
    norms: Vec<f32>,
}

impl Backward for L2NormalizeBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let (n, f) = grad.shape();
        record(Kernel::new(
            "l2_normalize_back",
            KernelKind::Norm,
            (3 * n * f) as u64,
            (16 * n * f) as u64,
        ));
        let mut dx = NdArray::zeros(n, f);
        for r in 0..n {
            let g = grad.row(r);
            let y = self.y.row(r);
            let dot: f32 = g.iter().zip(y).map(|(&a, &b)| a * b).sum();
            let inv = 1.0 / self.norms[r];
            let dr = dx.row_mut(r);
            for j in 0..f {
                dr[j] = (g[j] - y[j] * dot) * inv;
            }
        }
        accumulate(&parents[0], dx);
    }
    fn name(&self) -> &'static str {
        "l2_normalize"
    }
}

impl Tensor {
    /// Training-mode batch normalization of `self [N, F]` with learnable
    /// `gamma [1, F]` and `beta [1, F]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or `N == 0`.
    pub fn batch_norm_train(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> BatchNormOutput {
        let x = self.data().clone();
        let (n, f) = x.shape();
        assert!(n > 0, "batch_norm on empty batch");
        assert_eq!(gamma.shape(), (1, f), "gamma shape");
        assert_eq!(beta.shape(), (1, f), "beta shape");
        record(Kernel::new(
            "batch_norm",
            KernelKind::Norm,
            (5 * n * f) as u64,
            (16 * n * f) as u64,
        ));
        let mean = {
            let mut m = x.col_sums();
            for v in m.data_mut() {
                *v /= n as f32;
            }
            m
        };
        let mut var = NdArray::zeros(1, f);
        for r in 0..n {
            let xr = x.row(r);
            for j in 0..f {
                let d = xr[j] - mean.data()[j];
                var.data_mut()[j] += d * d;
            }
        }
        for v in var.data_mut() {
            *v /= n as f32;
        }
        let invstd: Vec<f32> = var.data().iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let gv: Vec<f32> = gamma.data().data().to_vec();
        let bv: Vec<f32> = beta.data().data().to_vec();
        let mut xhat = NdArray::zeros(n, f);
        let mut out = NdArray::zeros(n, f);
        for r in 0..n {
            let xr = x.row(r);
            let xhr = xhat.row_mut(r);
            let or = out.row_mut(r);
            for j in 0..f {
                xhr[j] = (xr[j] - mean.data()[j]) * invstd[j];
                or[j] = gv[j] * xhr[j] + bv[j];
            }
        }
        let t = Tensor::from_op(
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(BatchNormBack {
                xhat,
                invstd,
                gamma: gv,
            }),
        );
        BatchNormOutput {
            out: t,
            batch_mean: mean,
            batch_var: var,
        }
    }

    /// Inference-mode batch normalization using running statistics.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn batch_norm_eval(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        running_mean: &NdArray,
        running_var: &NdArray,
        eps: f32,
    ) -> Tensor {
        let x = self.data().clone();
        let (n, f) = x.shape();
        assert_eq!(gamma.shape(), (1, f), "gamma shape");
        assert_eq!(beta.shape(), (1, f), "beta shape");
        assert_eq!(running_mean.shape(), (1, f), "running mean shape");
        assert_eq!(running_var.shape(), (1, f), "running var shape");
        record(Kernel::new(
            "batch_norm_eval",
            KernelKind::Norm,
            (3 * n * f) as u64,
            (12 * n * f) as u64,
        ));
        let invstd: Vec<f32> = running_var
            .data()
            .iter()
            .map(|&v| 1.0 / (v + eps).sqrt())
            .collect();
        let gv: Vec<f32> = gamma.data().data().to_vec();
        let bv: Vec<f32> = beta.data().data().to_vec();
        let mut xhat = NdArray::zeros(n, f);
        let mut out = NdArray::zeros(n, f);
        for r in 0..n {
            let xr = x.row(r);
            let xhr = xhat.row_mut(r);
            let or = out.row_mut(r);
            for j in 0..f {
                xhr[j] = (xr[j] - running_mean.data()[j]) * invstd[j];
                or[j] = gv[j] * xhr[j] + bv[j];
            }
        }
        let scale: Vec<f32> = gv.iter().zip(&invstd).map(|(&g, &i)| g * i).collect();
        Tensor::from_op(
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(BatchNormEvalBack { scale, xhat }),
        )
    }

    /// Projects each row onto the unit L2 ball: `y = x / max(||x||, eps)`.
    pub fn l2_normalize_rows(&self, eps: f32) -> Tensor {
        let x = self.data().clone();
        let (n, f) = x.shape();
        record(Kernel::new(
            "l2_normalize",
            KernelKind::Norm,
            (3 * n * f) as u64,
            (8 * n * f) as u64,
        ));
        let mut out = NdArray::zeros(n, f);
        let mut norms = vec![0.0f32; n];
        for r in 0..n {
            let xr = x.row(r);
            let norm = xr.iter().map(|&v| v * v).sum::<f32>().sqrt().max(eps);
            norms[r] = norm;
            let or = out.row_mut(r);
            for j in 0..f {
                or[j] = xr[j] / norm;
            }
        }
        Tensor::from_op(
            out.clone(),
            vec![self.clone()],
            Box::new(L2NormalizeBack { y: out, norms }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_norm_zero_mean_unit_var() {
        let x = Tensor::param(NdArray::from_vec(4, 1, vec![1., 2., 3., 4.]));
        let gamma = Tensor::param(NdArray::from_vec(1, 1, vec![1.]));
        let beta = Tensor::param(NdArray::from_vec(1, 1, vec![0.]));
        let bn = x.batch_norm_train(&gamma, &beta, 1e-5);
        let y = bn.out.data();
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
        assert_eq!(bn.batch_mean.item(), 2.5);
    }

    #[test]
    fn batch_norm_gradcheck() {
        let vals = vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4];
        let x = Tensor::param(NdArray::from_vec(3, 2, vals.clone()));
        let gamma = Tensor::param(NdArray::from_vec(1, 2, vec![1.5, 0.7]));
        let beta = Tensor::param(NdArray::from_vec(1, 2, vec![0.1, -0.2]));
        // f = sum(w * bn(x)) with asymmetric weights
        let w = Tensor::new(NdArray::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        x.batch_norm_train(&gamma, &beta, 1e-5)
            .out
            .mul(&w)
            .backward();
        let analytic = x.grad().unwrap();

        let f = |v: &[f32]| -> f32 {
            let weights = [1.0f32, 2., 3., 4., 5., 6.];
            let g = [1.5f32, 0.7];
            let b = [0.1f32, -0.2];
            let mut total = 0.0;
            for j in 0..2 {
                let col: Vec<f32> = (0..3).map(|r| v[r * 2 + j]).collect();
                let mu: f32 = col.iter().sum::<f32>() / 3.0;
                let var: f32 = col.iter().map(|&c| (c - mu) * (c - mu)).sum::<f32>() / 3.0;
                let istd = 1.0 / (var + 1e-5).sqrt();
                for (r, &c) in col.iter().enumerate() {
                    total += weights[r * 2 + j] * (g[j] * (c - mu) * istd + b[j]);
                }
            }
            total
        };
        let eps = 1e-3;
        for i in 0..vals.len() {
            let mut up = vals.clone();
            up[i] += eps;
            let mut dn = vals.clone();
            dn[i] -= eps;
            let numeric = (f(&up) - f(&dn)) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[i]).abs() < 5e-2,
                "i={i}: {numeric} vs {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn batch_norm_eval_uses_running_stats() {
        let x = Tensor::new(NdArray::from_vec(2, 1, vec![3., 5.]));
        let gamma = Tensor::param(NdArray::from_vec(1, 1, vec![2.]));
        let beta = Tensor::param(NdArray::from_vec(1, 1, vec![1.]));
        let rm = NdArray::from_vec(1, 1, vec![4.0]);
        let rv = NdArray::from_vec(1, 1, vec![1.0]);
        let y = x.batch_norm_eval(&gamma, &beta, &rm, &rv, 0.0);
        // (3-4)/1*2+1 = -1 ; (5-4)/1*2+1 = 3
        assert!((y.data().data()[0] + 1.0).abs() < 1e-5);
        assert!((y.data().data()[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn l2_normalize_unit_rows() {
        let x = Tensor::param(NdArray::from_vec(2, 2, vec![3., 4., 0., 0.]));
        let y = x.l2_normalize_rows(1e-12);
        let d = y.data();
        assert!((d.at(0, 0) - 0.6).abs() < 1e-6);
        assert!((d.at(0, 1) - 0.8).abs() < 1e-6);
        // zero row stays finite
        assert_eq!(d.at(1, 0), 0.0);
        drop(d);
        y.backward();
        assert!(!x.grad().unwrap().has_non_finite());
    }

    #[test]
    fn l2_normalize_gradcheck() {
        let vals = vec![0.8, -0.5, 1.2];
        let x = Tensor::param(NdArray::from_vec(1, 3, vals.clone()));
        let w = Tensor::new(NdArray::from_vec(1, 3, vec![1., 2., 3.]));
        x.l2_normalize_rows(1e-12).mul(&w).backward();
        let analytic = x.grad().unwrap();
        let f = |v: &[f32]| -> f32 {
            let n = v.iter().map(|&a| a * a).sum::<f32>().sqrt();
            v.iter()
                .zip([1.0f32, 2., 3.])
                .map(|(&a, w)| a / n * w)
                .sum()
        };
        let eps = 1e-3;
        for i in 0..3 {
            let mut up = vals.clone();
            up[i] += eps;
            let mut dn = vals.clone();
            dn[i] -= eps;
            let numeric = (f(&up) - f(&dn)) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[i]).abs() < 1e-2,
                "i={i}: {numeric} vs {}",
                analytic.data()[i]
            );
        }
    }
}
