//! Full reductions to scalars.

use gnn_device::{record, Kernel, KernelKind};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

struct SumAllBack {
    shape: (usize, usize),
}

impl Backward for SumAllBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let g = grad.item();
        record(Kernel::elementwise(
            "sum_back",
            self.shape.0 * self.shape.1,
            1,
            2,
        ));
        accumulate(&parents[0], NdArray::full(self.shape.0, self.shape.1, g));
    }
    fn name(&self) -> &'static str {
        "sum_all"
    }
}

struct MeanAllBack {
    shape: (usize, usize),
}

impl Backward for MeanAllBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let n = (self.shape.0 * self.shape.1) as f32;
        let g = grad.item() / n;
        record(Kernel::elementwise(
            "mean_back",
            self.shape.0 * self.shape.1,
            1,
            2,
        ));
        accumulate(&parents[0], NdArray::full(self.shape.0, self.shape.1, g));
    }
    fn name(&self) -> &'static str {
        "mean_all"
    }
}

impl Tensor {
    /// Sum of all elements, as a `[1, 1]` tensor.
    pub fn sum_all(&self) -> Tensor {
        let x = self.data();
        record(Kernel::new(
            "sum_all",
            KernelKind::Reduction,
            x.len() as u64,
            4 * x.len() as u64,
        ));
        let s = NdArray::scalar(x.sum());
        let shape = x.shape();
        drop(x);
        Tensor::from_op(s, vec![self.clone()], Box::new(SumAllBack { shape }))
    }

    /// Mean of all elements, as a `[1, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean_all(&self) -> Tensor {
        let x = self.data();
        assert!(!x.is_empty(), "mean of empty tensor");
        record(Kernel::new(
            "mean_all",
            KernelKind::Reduction,
            x.len() as u64,
            4 * x.len() as u64,
        ));
        let s = NdArray::scalar(x.sum() / x.len() as f32);
        let shape = x.shape();
        drop(x);
        Tensor::from_op(s, vec![self.clone()], Box::new(MeanAllBack { shape }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_all_grad_is_ones() {
        let x = Tensor::param(NdArray::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let s = x.sum_all();
        assert_eq!(s.item(), 10.0);
        s.backward();
        assert_eq!(x.grad().unwrap().data(), &[1.; 4]);
    }

    #[test]
    fn mean_all_grad_is_uniform() {
        let x = Tensor::param(NdArray::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let m = x.mean_all();
        assert_eq!(m.item(), 2.5);
        m.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "mean of empty tensor")]
    fn mean_empty_panics() {
        Tensor::new(NdArray::zeros(0, 3)).mean_all();
    }
}

struct SumColsBack {
    cols: usize,
}

impl Backward for SumColsBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise(
            "sum_cols_back",
            grad.rows() * self.cols,
            1,
            2,
        ));
        let mut dx = NdArray::zeros(grad.rows(), self.cols);
        for r in 0..grad.rows() {
            let g = grad.at(r, 0);
            for v in dx.row_mut(r) {
                *v = g;
            }
        }
        accumulate(&parents[0], dx);
    }
    fn name(&self) -> &'static str {
        "sum_cols"
    }
}

impl Tensor {
    /// Row-wise sum of `self [N, F]`, producing `[N, 1]`.
    pub fn sum_cols(&self) -> Tensor {
        let x = self.data();
        record(Kernel::new(
            "sum_cols",
            KernelKind::Reduction,
            x.len() as u64,
            4 * (x.len() + x.rows()) as u64,
        ));
        let out = x.row_sums();
        let cols = x.cols();
        drop(x);
        Tensor::from_op(out, vec![self.clone()], Box::new(SumColsBack { cols }))
    }
}

#[cfg(test)]
mod sum_cols_tests {
    use super::*;

    #[test]
    fn sum_cols_values_and_grads() {
        let x = Tensor::param(NdArray::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let y = x.sum_cols();
        assert_eq!(y.data().data(), &[6., 15.]);
        let w = Tensor::new(NdArray::from_vec(2, 1, vec![1., 10.]));
        y.mul(&w).backward();
        assert_eq!(x.grad().unwrap().data(), &[1., 1., 1., 10., 10., 10.]);
    }
}
