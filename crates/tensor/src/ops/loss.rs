//! Classification losses and accuracy.

// Kernel-style loops co-index several slices; index form is clearer here.
#![allow(clippy::needless_range_loop)]

use gnn_device::{record, Kernel, KernelKind};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

struct CrossEntropyBack {
    /// softmax(logits) with the true-class probability reduced by 1, divided
    /// by the batch size — i.e. d(mean CE)/d(logits) for unit upstream grad.
    dlogits: NdArray,
}

impl Backward for CrossEntropyBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::new(
            "cross_entropy_back",
            KernelKind::Softmax,
            self.dlogits.len() as u64,
            (8 * self.dlogits.len()) as u64,
        ));
        let g = grad.item();
        accumulate(&parents[0], self.dlogits.map(|v| v * g));
    }
    fn name(&self) -> &'static str {
        "cross_entropy"
    }
}

/// Mean cross-entropy between `logits [N, C]` and integer `labels`.
///
/// Numerically stable (log-sum-exp with max shift); fuses log-softmax and
/// NLL in one recorded kernel, as cuDNN does.
///
/// # Panics
///
/// Panics if `labels.len() != N`, `N == 0`, or a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[u32]) -> Tensor {
    let x = logits.data();
    let (n, c) = x.shape();
    assert!(n > 0, "cross_entropy on empty batch");
    assert_eq!(labels.len(), n, "labels length mismatch");
    assert!(
        labels.iter().all(|&l| (l as usize) < c),
        "label out of range ({c} classes)"
    );
    record(Kernel::new(
        "cross_entropy",
        KernelKind::Softmax,
        (5 * n * c) as u64,
        (12 * n * c) as u64,
    ));
    let mut total = 0.0f64;
    let mut dlogits = NdArray::zeros(n, c);
    for r in 0..n {
        let row = x.row(r);
        let m = row.iter().cloned().fold(f32::MIN, f32::max);
        let sum_exp: f32 = row.iter().map(|&v| (v - m).exp()).sum();
        let lse = m + sum_exp.ln();
        let label = labels[r] as usize;
        total += f64::from(lse - row[label]);
        let dr = dlogits.row_mut(r);
        for j in 0..c {
            dr[j] = ((row[j] - m).exp() / sum_exp - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    let loss = NdArray::scalar((total / n as f64) as f32);
    drop(x);
    Tensor::from_op(
        loss,
        vec![logits.clone()],
        Box::new(CrossEntropyBack { dlogits }),
    )
}

/// Fraction of rows whose argmax equals the label, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of logit rows.
pub fn accuracy(logits: &Tensor, labels: &[u32]) -> f64 {
    let x = logits.data();
    assert_eq!(labels.len(), x.rows(), "labels length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = x.argmax_rows();
    let correct = preds
        .iter()
        .zip(labels)
        .filter(|&(&p, &l)| p == l as usize)
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_logits_give_low_loss_high_acc() {
        let logits = Tensor::param(NdArray::from_vec(2, 3, vec![10., 0., 0., 0., 10., 0.]));
        let labels = [0u32, 1];
        let loss = cross_entropy(&logits, &labels);
        assert!(loss.item() < 1e-3);
        assert_eq!(accuracy(&logits, &labels), 1.0);
    }

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Tensor::param(NdArray::zeros(4, 5));
        let loss = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss.item() - 5.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot_over_n() {
        let logits = Tensor::param(NdArray::from_vec(1, 2, vec![0., 0.]));
        let loss = cross_entropy(&logits, &[1]);
        loss.backward();
        let g = logits.grad().unwrap();
        assert!((g.data()[0] - 0.5).abs() < 1e-6);
        assert!((g.data()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let logits = Tensor::param(NdArray::from_vec(2, 2, vec![0.5, -0.5, 0.2, 0.1]));
        let labels = [1u32, 0];
        let l0 = cross_entropy(&logits, &labels);
        let start = l0.item();
        l0.backward();
        let g = logits.grad().unwrap();
        logits.data_mut().axpy(-1.0, &g);
        let l1 = cross_entropy(&logits, &labels);
        assert!(l1.item() < start, "{} !< {start}", l1.item());
    }

    #[test]
    fn stable_for_large_logits() {
        let logits = Tensor::param(NdArray::from_vec(1, 2, vec![1000.0, -1000.0]));
        let loss = cross_entropy(&logits, &[0]);
        assert!(loss.item().is_finite());
        loss.backward();
        assert!(!logits.grad().unwrap().has_non_finite());
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::new(NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 0.]));
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let logits = Tensor::new(NdArray::zeros(1, 2));
        cross_entropy(&logits, &[5]);
    }
}
