//! Elementwise and broadcast arithmetic.

use gnn_device::{record, Kernel};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

struct AddBack;
impl Backward for AddBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        accumulate(&parents[0], grad.clone());
        accumulate(&parents[1], grad.clone());
    }
    fn name(&self) -> &'static str {
        "add"
    }
}

struct SubBack;
impl Backward for SubBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        accumulate(&parents[0], grad.clone());
        record(Kernel::elementwise("sub_back", grad.len(), 1, 2));
        accumulate(&parents[1], grad.map(|g| -g));
    }
    fn name(&self) -> &'static str {
        "sub"
    }
}

struct MulBack {
    a: NdArray,
    b: NdArray,
}
impl Backward for MulBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("mul_back", grad.len(), 2, 4));
        accumulate(&parents[0], grad.zip(&self.b, |g, b| g * b));
        accumulate(&parents[1], grad.zip(&self.a, |g, a| g * a));
    }
    fn name(&self) -> &'static str {
        "mul"
    }
}

struct DivBack {
    a: NdArray,
    b: NdArray,
}
impl Backward for DivBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("div_back", grad.len(), 4, 4));
        accumulate(&parents[0], grad.zip(&self.b, |g, b| g / b));
        let mut db = grad.zip(&self.a, |g, a| g * a);
        for (d, &b) in db.data_mut().iter_mut().zip(self.b.data()) {
            *d = -*d / (b * b);
        }
        accumulate(&parents[1], db);
    }
    fn name(&self) -> &'static str {
        "div"
    }
}

struct ScaleBack {
    c: f32,
}
impl Backward for ScaleBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("scale_back", grad.len(), 1, 2));
        accumulate(&parents[0], grad.map(|g| g * self.c));
    }
    fn name(&self) -> &'static str {
        "scale"
    }
}

struct AddScalarBack;
impl Backward for AddScalarBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        accumulate(&parents[0], grad.clone());
    }
    fn name(&self) -> &'static str {
        "add_scalar"
    }
}

struct AddBiasBack;
impl Backward for AddBiasBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        accumulate(&parents[0], grad.clone());
        record(Kernel::new(
            "bias_back",
            gnn_device::KernelKind::Reduction,
            grad.len() as u64,
            4 * (grad.len() + grad.cols()) as u64,
        ));
        accumulate(&parents[1], grad.col_sums());
    }
    fn name(&self) -> &'static str {
        "add_bias"
    }
}

struct MulColBack {
    a: NdArray,
    c: NdArray,
}
impl Backward for MulColBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("mul_col_back", grad.len(), 2, 4));
        let (n, f) = grad.shape();
        let mut da = NdArray::zeros(n, f);
        let mut dc = NdArray::zeros(n, 1);
        for r in 0..n {
            let cr = self.c.at(r, 0);
            let gr = grad.row(r);
            let ar = self.a.row(r);
            let dar = da.row_mut(r);
            let mut acc = 0.0;
            for j in 0..f {
                dar[j] = gr[j] * cr;
                acc += gr[j] * ar[j];
            }
            *dc.at_mut(r, 0) = acc;
        }
        accumulate(&parents[0], da);
        accumulate(&parents[1], dc);
    }
    fn name(&self) -> &'static str {
        "mul_col"
    }
}

struct ScaleByBack {
    x: NdArray,
    s: f32,
}
impl Backward for ScaleByBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("scale_by_back", grad.len(), 2, 3));
        accumulate(&parents[0], grad.map(|g| g * self.s));
        let ds: f32 = grad
            .data()
            .iter()
            .zip(self.x.data())
            .map(|(&g, &x)| g * x)
            .sum();
        accumulate(&parents[1], NdArray::scalar(ds));
    }
    fn name(&self) -> &'static str {
        "scale_by"
    }
}

impl Tensor {
    /// Elementwise `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let data = self.data().zip(&other.data(), |a, b| a + b);
        record(Kernel::elementwise("add", data.len(), 1, 3));
        Tensor::from_op(data, vec![self.clone(), other.clone()], Box::new(AddBack))
    }

    /// Elementwise `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let data = self.data().zip(&other.data(), |a, b| a - b);
        record(Kernel::elementwise("sub", data.len(), 1, 3));
        Tensor::from_op(data, vec![self.clone(), other.clone()], Box::new(SubBack))
    }

    /// Elementwise `self * other` (Hadamard product).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let (a, b) = (self.data().clone(), other.data().clone());
        let data = a.zip(&b, |x, y| x * y);
        record(Kernel::elementwise("mul", data.len(), 1, 3));
        Tensor::from_op(
            data,
            vec![self.clone(), other.clone()],
            Box::new(MulBack { a, b }),
        )
    }

    /// Elementwise `self / other`.
    pub fn div(&self, other: &Tensor) -> Tensor {
        let (a, b) = (self.data().clone(), other.data().clone());
        let data = a.zip(&b, |x, y| x / y);
        record(Kernel::elementwise("div", data.len(), 1, 3));
        Tensor::from_op(
            data,
            vec![self.clone(), other.clone()],
            Box::new(DivBack { a, b }),
        )
    }

    /// `self * c` for a compile-time-known constant `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        let data = self.data().map(|x| x * c);
        record(Kernel::elementwise("scale", data.len(), 1, 2));
        Tensor::from_op(data, vec![self.clone()], Box::new(ScaleBack { c }))
    }

    /// `self + c` elementwise for a constant `c`.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let data = self.data().map(|x| x + c);
        record(Kernel::elementwise("add_scalar", data.len(), 1, 2));
        Tensor::from_op(data, vec![self.clone()], Box::new(AddScalarBack))
    }

    /// `self * s` where `s` is a learnable `[1, 1]` tensor (e.g. GIN's
    /// `1 + eps`).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a scalar tensor.
    pub fn scale_by(&self, s: &Tensor) -> Tensor {
        assert_eq!(s.shape(), (1, 1), "scale_by expects a scalar tensor");
        let sv = s.item();
        let x = self.data().clone();
        let data = x.map(|v| v * sv);
        record(Kernel::elementwise("scale_by", data.len(), 1, 2));
        Tensor::from_op(
            data,
            vec![self.clone(), s.clone()],
            Box::new(ScaleByBack { x, s: sv }),
        )
    }

    /// Adds a `[1, F]` bias row to every row of `self [N, F]`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `[1, self.cols]`.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let b = bias.data().clone();
        let x = self.data();
        assert_eq!(b.shape(), (1, x.cols()), "bias shape mismatch");
        let mut data = x.clone();
        for r in 0..data.rows() {
            for (v, &bv) in data.row_mut(r).iter_mut().zip(b.data()) {
                *v += bv;
            }
        }
        drop(x);
        record(Kernel::elementwise("add_bias", data.len(), 1, 3));
        Tensor::from_op(
            data,
            vec![self.clone(), bias.clone()],
            Box::new(AddBiasBack),
        )
    }

    /// Multiplies each row of `self [N, F]` by the per-row scalar in
    /// `col [N, 1]` (degree normalization and attention weighting).
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `[self.rows, 1]`.
    pub fn mul_col(&self, col: &Tensor) -> Tensor {
        let (a, c) = (self.data().clone(), col.data().clone());
        assert_eq!(c.shape(), (a.rows(), 1), "mul_col shape mismatch");
        let mut data = a.clone();
        for r in 0..data.rows() {
            let cv = c.at(r, 0);
            for v in data.row_mut(r) {
                *v *= cv;
            }
        }
        record(Kernel::elementwise("mul_col", data.len(), 1, 3));
        Tensor::from_op(
            data,
            vec![self.clone(), col.clone()],
            Box::new(MulColBack { a, c }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::param(NdArray::from_vec(rows, cols, v))
    }

    #[test]
    fn add_sub_mul_div_values_and_grads() {
        let a = t(1, 3, vec![1., 2., 3.]);
        let b = t(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data().data(), &[5., 7., 9.]);
        assert_eq!(a.sub(&b).data().data(), &[-3., -3., -3.]);
        assert_eq!(a.mul(&b).data().data(), &[4., 10., 18.]);
        let q = a.div(&b);
        assert!((q.data().at(0, 0) - 0.25).abs() < 1e-6);

        let y = a.mul(&b);
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[4., 5., 6.]);
        assert_eq!(b.grad().unwrap().data(), &[1., 2., 3.]);
    }

    #[test]
    fn div_gradients() {
        let a = t(1, 2, vec![2.0, 6.0]);
        let b = t(1, 2, vec![4.0, 3.0]);
        let y = a.div(&b);
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[0.25, 1.0 / 3.0]);
        // d(a/b)/db = -a/b^2
        let db = b.grad().unwrap();
        assert!((db.at(0, 0) - (-2.0 / 16.0)).abs() < 1e-6);
        assert!((db.at(0, 1) - (-6.0 / 9.0)).abs() < 1e-6);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = t(1, 2, vec![1., -2.]);
        let y = a.scale(3.0).add_scalar(1.0);
        assert_eq!(y.data().data(), &[4., -5.]);
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[3., 3.]);
    }

    #[test]
    fn scale_by_learnable_scalar() {
        let a = t(1, 2, vec![2., 3.]);
        let s = Tensor::param(NdArray::scalar(1.5));
        let y = a.scale_by(&s);
        assert_eq!(y.data().data(), &[3.0, 4.5]);
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.5, 1.5]);
        assert_eq!(s.grad().unwrap().item(), 5.0); // sum(x) = 2 + 3
    }

    #[test]
    fn add_bias_broadcasts_and_reduces_grad() {
        let x = t(2, 3, vec![0., 0., 0., 1., 1., 1.]);
        let b = t(1, 3, vec![1., 2., 3.]);
        let y = x.add_bias(&b);
        assert_eq!(y.data().data(), &[1., 2., 3., 2., 3., 4.]);
        y.backward();
        assert_eq!(b.grad().unwrap().data(), &[2., 2., 2.]);
        assert_eq!(x.grad().unwrap().data(), &[1.; 6]);
    }

    #[test]
    fn mul_col_scales_rows() {
        let x = t(2, 2, vec![1., 2., 3., 4.]);
        let c = t(2, 1, vec![10., 100.]);
        let y = x.mul_col(&c);
        assert_eq!(y.data().data(), &[10., 20., 300., 400.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[10., 10., 100., 100.]);
        assert_eq!(c.grad().unwrap().data(), &[3., 7.]);
    }

    #[test]
    #[should_panic(expected = "zip shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = t(1, 2, vec![0., 0.]);
        let b = t(2, 1, vec![0., 0.]);
        a.add(&b);
    }

    #[test]
    fn ops_record_kernels() {
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        let a = t(4, 4, vec![1.0; 16]);
        let b = t(4, 4, vec![2.0; 16]);
        let y = a.add(&b).mul(&a);
        y.backward();
        let report = gnn_device::session::finish(h);
        assert!(
            report.kernel_count >= 3,
            "fwd add+mul and backward kernels expected"
        );
    }
}

struct MulRowBack {
    a: NdArray,
    r: NdArray,
}
impl Backward for MulRowBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("mul_row_back", grad.len(), 2, 4));
        let (n, f) = grad.shape();
        if parents[0].needs_grad() {
            let mut da = NdArray::zeros(n, f);
            for row in 0..n {
                let gr = grad.row(row);
                let dar = da.row_mut(row);
                for j in 0..f {
                    dar[j] = gr[j] * self.r.data()[j];
                }
            }
            accumulate(&parents[0], da);
        }
        if parents[1].needs_grad() {
            let mut dr = NdArray::zeros(1, f);
            for row in 0..n {
                let gr = grad.row(row);
                let ar = self.a.row(row);
                for j in 0..f {
                    dr.data_mut()[j] += gr[j] * ar[j];
                }
            }
            accumulate(&parents[1], dr);
        }
    }
    fn name(&self) -> &'static str {
        "mul_row"
    }
}

impl Tensor {
    /// Multiplies every row of `self [N, F]` elementwise by `row [1, F]`
    /// (feature-wise scaling, e.g. Gaussian-kernel inverse bandwidths).
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `[1, self.cols]`.
    pub fn mul_row(&self, row: &Tensor) -> Tensor {
        let (a, r) = (self.data().clone(), row.data().clone());
        assert_eq!(r.shape(), (1, a.cols()), "mul_row shape mismatch");
        let mut data = a.clone();
        for i in 0..data.rows() {
            for (v, &rv) in data.row_mut(i).iter_mut().zip(r.data()) {
                *v *= rv;
            }
        }
        record(Kernel::elementwise("mul_row", data.len(), 1, 3));
        Tensor::from_op(
            data,
            vec![self.clone(), row.clone()],
            Box::new(MulRowBack { a, r }),
        )
    }
}

#[cfg(test)]
mod mul_row_tests {
    use super::*;

    #[test]
    fn mul_row_values_and_grads() {
        let x = Tensor::param(NdArray::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let r = Tensor::param(NdArray::from_vec(1, 2, vec![10., 100.]));
        let y = x.mul_row(&r);
        assert_eq!(y.data().data(), &[10., 200., 30., 400.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[10., 100., 10., 100.]);
        assert_eq!(r.grad().unwrap().data(), &[4., 6.]);
    }
}
