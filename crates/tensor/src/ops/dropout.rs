//! Inverted dropout.

use gnn_device::{record, Kernel};
use rand::Rng;

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

struct DropoutBack {
    mask: NdArray, // already scaled by 1/(1-p)
}

impl Backward for DropoutBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("dropout_back", grad.len(), 1, 3));
        accumulate(&parents[0], grad.zip(&self.mask, |g, m| g * m));
    }
    fn name(&self) -> &'static str {
        "dropout"
    }
}

impl Tensor {
    /// Inverted dropout with drop probability `p`, drawing the mask from
    /// `rng`. With `p == 0` this is a no-op (no kernel recorded, like
    /// PyTorch's fast path).
    ///
    /// Inference-mode callers should simply not call this (dropout layers
    /// skip it when not training).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn dropout<R: Rng + ?Sized>(&self, p: f32, rng: &mut R) -> Tensor {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} out of [0, 1)"
        );
        if p == 0.0 {
            return self.clone();
        }
        let x = self.data();
        let keep = 1.0 / (1.0 - p);
        let mask_vals: Vec<f32> = (0..x.len())
            .map(|_| if rng.gen::<f32>() < p { 0.0 } else { keep })
            .collect();
        let mask = NdArray::from_vec(x.rows(), x.cols(), mask_vals);
        record(Kernel::elementwise("dropout", x.len(), 2, 3));
        let out = x.zip(&mask, |v, m| v * m);
        drop(x);
        Tensor::from_op(out, vec![self.clone()], Box::new(DropoutBack { mask }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_p_is_identity_and_shares_value() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::param(NdArray::from_vec(1, 3, vec![1., 2., 3.]));
        let y = x.dropout(0.0, &mut rng);
        assert_eq!(y.data().data(), &[1., 2., 3.]);
        assert_eq!(y.id(), x.id());
    }

    #[test]
    fn surviving_elements_are_scaled() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::param(NdArray::full(1, 1000, 1.0));
        let y = x.dropout(0.5, &mut rng);
        let d = y.data();
        let kept = d.data().iter().filter(|&&v| v != 0.0).count();
        // Every kept element must be exactly 1/(1-p) = 2.0.
        assert!(d.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expectation preserved within sampling noise.
        assert!((400..600).contains(&kept), "kept = {kept}");
    }

    #[test]
    fn backward_masks_gradient_identically() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::param(NdArray::full(1, 64, 1.0));
        let y = x.dropout(0.25, &mut rng);
        let fwd: Vec<f32> = y.data().data().to_vec();
        y.backward();
        let g = x.grad().unwrap();
        for (f, gv) in fwd.iter().zip(g.data()) {
            assert_eq!(f, gv, "grad mask must equal forward mask for unit input");
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn p_one_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        Tensor::new(NdArray::zeros(1, 1)).dropout(1.0, &mut rng);
    }
}
