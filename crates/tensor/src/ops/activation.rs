//! Pointwise nonlinearities.

use gnn_device::{record, Kernel};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

/// Backward rule of a pointwise op whose derivative can be computed from the
/// forward *output* (`y`): relu, leaky-relu, sigmoid, tanh, exp.
struct FromOutputBack {
    y: NdArray,
    dydx_from_y: fn(f32) -> f32,
    op: &'static str,
}

impl Backward for FromOutputBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise(self.op, grad.len(), 2, 3));
        accumulate(
            &parents[0],
            grad.zip(&self.y, |g, y| g * (self.dydx_from_y)(y)),
        );
    }
    fn name(&self) -> &'static str {
        self.op
    }
}

/// Backward rule of a pointwise op whose derivative needs the forward
/// *input* (`x`): log, leaky-relu with slope, sqrt-like ops.
struct FromInputBack {
    x: NdArray,
    dydx_from_x: Box<dyn Fn(f32) -> f32>,
    op: &'static str,
}

impl Backward for FromInputBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise(self.op, grad.len(), 2, 3));
        accumulate(
            &parents[0],
            grad.zip(&self.x, |g, x| g * (self.dydx_from_x)(x)),
        );
    }
    fn name(&self) -> &'static str {
        self.op
    }
}

fn unary_from_output(
    x: &Tensor,
    f: fn(f32) -> f32,
    dydx_from_y: fn(f32) -> f32,
    op: &'static str,
) -> Tensor {
    let y = x.data().map(f);
    record(Kernel::elementwise(op, y.len(), 2, 2));
    Tensor::from_op(
        y.clone(),
        vec![x.clone()],
        Box::new(FromOutputBack { y, dydx_from_y, op }),
    )
}

impl Tensor {
    /// Rectified linear unit `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        unary_from_output(
            self,
            |x| x.max(0.0),
            |y| if y > 0.0 { 1.0 } else { 0.0 },
            "relu",
        )
    }

    /// Leaky ReLU with negative slope `slope` (GAT uses 0.2).
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        let x = self.data().clone();
        let y = x.map(|v| if v > 0.0 { v } else { slope * v });
        record(Kernel::elementwise("leaky_relu", y.len(), 2, 2));
        Tensor::from_op(
            y,
            vec![self.clone()],
            Box::new(FromInputBack {
                x,
                dydx_from_x: Box::new(move |v| if v > 0.0 { 1.0 } else { slope }),
                op: "leaky_relu",
            }),
        )
    }

    /// Logistic sigmoid `1 / (1 + e^-x)`.
    pub fn sigmoid(&self) -> Tensor {
        unary_from_output(
            self,
            |x| 1.0 / (1.0 + (-x).exp()),
            |y| y * (1.0 - y),
            "sigmoid",
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh_act(&self) -> Tensor {
        unary_from_output(self, f32::tanh, |y| 1.0 - y * y, "tanh")
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        unary_from_output(self, f32::exp, |y| y, "exp")
    }

    /// Elementwise natural logarithm.
    pub fn log(&self) -> Tensor {
        let x = self.data().clone();
        let y = x.map(f32::ln);
        record(Kernel::elementwise("log", y.len(), 2, 2));
        Tensor::from_op(
            y,
            vec![self.clone()],
            Box::new(FromInputBack {
                x,
                dydx_from_x: Box::new(|v| 1.0 / v),
                op: "log",
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::param(NdArray::from_vec(1, n, v))
    }

    #[test]
    fn relu_forward_backward() {
        let x = t(vec![-1.0, 0.0, 2.0]);
        let y = x.relu();
        assert_eq!(y.data().data(), &[0.0, 0.0, 2.0]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let x = t(vec![-2.0, 3.0]);
        let y = x.leaky_relu(0.2);
        let yd: Vec<f32> = y.data().data().to_vec();
        assert!((yd[0] + 0.4).abs() < 1e-6);
        assert_eq!(yd[1], 3.0);
        y.backward();
        let g = x.grad().unwrap();
        assert!((g.data()[0] - 0.2).abs() < 1e-6);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn sigmoid_matches_closed_form_grad() {
        let x = t(vec![0.0, 1.0, -1.0]);
        let y = x.sigmoid();
        assert!((y.data().data()[0] - 0.5).abs() < 1e-6);
        y.backward();
        let g = x.grad().unwrap();
        // sigmoid'(0) = 0.25
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_grad() {
        let x = t(vec![0.5]);
        let y = x.tanh_act();
        y.backward();
        let expect = 1.0 - 0.5f32.tanh().powi(2);
        assert!((x.grad().unwrap().data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn exp_log_roundtrip_grads() {
        let x = t(vec![0.7]);
        let y = x.exp().log(); // identity
        assert!((y.data().data()[0] - 0.7).abs() < 1e-5);
        y.backward();
        assert!((x.grad().unwrap().data()[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn numeric_gradcheck_sigmoid_chain() {
        let v = vec![0.3, -0.6, 1.2];
        let x = t(v.clone());
        // f = sum(sigmoid(relu(x)))
        let y = x.relu().sigmoid();
        y.backward();
        let analytic = x.grad().unwrap();
        let f = |vals: &[f32]| -> f32 {
            vals.iter()
                .map(|&a| 1.0 / (1.0 + (-a.max(0.0)).exp()))
                .sum()
        };
        let eps = 1e-3;
        for i in 0..v.len() {
            let mut up = v.clone();
            up[i] += eps;
            let mut dn = v.clone();
            dn[i] -= eps;
            let numeric = (f(&up) - f(&dn)) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[i]).abs() < 1e-2,
                "i={i}: {numeric} vs {}",
                analytic.data()[i]
            );
        }
    }
}
