//! Segment reductions and segment softmax.
//!
//! A *segment* operation reduces rows that share an id — the primitive behind
//! neighborhood aggregation keyed by destination node and graph readout keyed
//! by graph id. DGL exposes these as its segment-reduce operator (the paper's
//! Section IV-C notes DGL's pooling builds on it); attention models normalize
//! per-destination scores with a segment softmax.

use gnn_device::{record, Kernel, KernelKind};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;
use crate::ops::index::gather_raw;
use crate::ops::Ids;
use crate::shape_error::ShapeError;

/// Number of rows per segment as f32 (0 for empty segments).
pub fn segment_counts(ids: &[u32], num_segments: usize) -> Vec<f32> {
    let mut counts = vec![0.0f32; num_segments];
    for &i in ids {
        debug_assert!(
            (i as usize) < num_segments,
            "segment_counts: segment id out of bounds (num_segments = {num_segments})"
        );
        counts[i as usize] += 1.0;
    }
    counts
}

/// Validates a segment-id array against the rows it indexes and the segment
/// count it scatters into. Shared by the runtime ops (which panic on `Err`)
/// and the `gnn-lint` index-safety pass (which reports the same message).
pub fn check_ids(
    ids: &[u32],
    rows: usize,
    num_segments: usize,
    op: &'static str,
) -> Result<(), ShapeError> {
    if ids.len() != rows {
        return Err(ShapeError::ids_length(op, ids.len(), rows));
    }
    if ids.iter().any(|&i| (i as usize) >= num_segments) {
        return Err(ShapeError::segment_oob(op, num_segments));
    }
    Ok(())
}

fn assert_ids(ids: &[u32], rows: usize, num_segments: usize, op: &'static str) {
    if let Err(e) = check_ids(ids, rows, num_segments, op) {
        panic!("{e}");
    }
}

struct SegmentSumBack {
    ids: Ids,
}

impl Backward for SegmentSumBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::gather(
            "segment_sum_back",
            self.ids.len(),
            grad.cols(),
        ));
        accumulate(&parents[0], gather_raw(grad, &self.ids));
    }
    fn name(&self) -> &'static str {
        "segment_sum"
    }
}

struct SegmentMeanBack {
    ids: Ids,
    inv_counts: Vec<f32>,
}

impl Backward for SegmentMeanBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::gather(
            "segment_mean_back",
            self.ids.len(),
            grad.cols(),
        ));
        let mut g = gather_raw(grad, &self.ids);
        for (r, &i) in self.ids.iter().enumerate() {
            let s = self.inv_counts[i as usize];
            for v in g.row_mut(r) {
                *v *= s;
            }
        }
        accumulate(&parents[0], g);
    }
    fn name(&self) -> &'static str {
        "segment_mean"
    }
}

struct SegmentMaxBack {
    /// For each output element `(segment, col)`, the input row that won.
    argmax: Vec<i64>,
    in_rows: usize,
}

impl Backward for SegmentMaxBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::scatter(
            "segment_max_back",
            grad.rows(),
            grad.cols(),
        ));
        let cols = grad.cols();
        let mut out = NdArray::zeros(self.in_rows, cols);
        for s in 0..grad.rows() {
            for c in 0..cols {
                let winner = self.argmax[s * cols + c];
                if winner >= 0 {
                    *out.at_mut(winner as usize, c) += grad.at(s, c);
                }
            }
        }
        accumulate(&parents[0], out);
    }
    fn name(&self) -> &'static str {
        "segment_max"
    }
}

struct SegmentSoftmaxBack {
    ids: Ids,
    num_segments: usize,
    y: NdArray,
}

impl Backward for SegmentSoftmaxBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        // dx = y * (g - s[seg]) with s[seg] = sum_{rows in seg} g * y
        record(Kernel::new(
            "segment_softmax_back",
            KernelKind::Softmax,
            2 * grad.len() as u64,
            16 * grad.len() as u64,
        ));
        let cols = grad.cols();
        let mut seg_dot = NdArray::zeros(self.num_segments, cols);
        for (r, &i) in self.ids.iter().enumerate() {
            let gr = grad.row(r);
            let yr = self.y.row(r);
            let sd = seg_dot.row_mut(i as usize);
            for c in 0..cols {
                sd[c] += gr[c] * yr[c];
            }
        }
        let mut dx = NdArray::zeros(grad.rows(), cols);
        for (r, &i) in self.ids.iter().enumerate() {
            let gr = grad.row(r);
            let yr = self.y.row(r);
            let sd = seg_dot.row(i as usize);
            let dr = dx.row_mut(r);
            for c in 0..cols {
                dr[c] = yr[c] * (gr[c] - sd[c]);
            }
        }
        accumulate(&parents[0], dx);
    }
    fn name(&self) -> &'static str {
        "segment_softmax"
    }
}

impl Tensor {
    /// Sums rows of `self [E, F]` into segments, producing `[S, F]`.
    ///
    /// Numerically identical to [`Tensor::scatter_add_rows`] but recorded as a
    /// fused segment-reduction kernel (DGL's operator) rather than an atomic
    /// scatter (PyG's `scatter` API).
    ///
    /// # Panics
    ///
    /// Panics if ids are out of bounds or mismatched in length.
    pub fn segment_sum(&self, ids: &Ids, num_segments: usize) -> Tensor {
        let x = self.data();
        assert_ids(ids, x.rows(), num_segments, "segment_sum");
        record(Kernel::segment(
            "segment_sum",
            x.rows(),
            x.cols(),
            num_segments,
        ));
        let mut out = NdArray::zeros(num_segments, x.cols());
        for (r, &i) in ids.iter().enumerate() {
            let dst = out.row_mut(i as usize);
            for (d, &s) in dst.iter_mut().zip(x.row(r)) {
                *d += s;
            }
        }
        drop(x);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(SegmentSumBack { ids: ids.clone() }),
        )
    }

    /// Averages rows of `self [E, F]` per segment, producing `[S, F]`.
    /// Empty segments produce zero rows.
    pub fn segment_mean(&self, ids: &Ids, num_segments: usize) -> Tensor {
        let x = self.data();
        assert_ids(ids, x.rows(), num_segments, "segment_mean");
        record(Kernel::segment(
            "segment_mean",
            x.rows(),
            x.cols(),
            num_segments,
        ));
        let counts = segment_counts(ids, num_segments);
        let inv_counts: Vec<f32> = counts
            .iter()
            .map(|&c| if c > 0.0 { 1.0 / c } else { 0.0 })
            .collect();
        let mut out = NdArray::zeros(num_segments, x.cols());
        for (r, &i) in ids.iter().enumerate() {
            let dst = out.row_mut(i as usize);
            for (d, &s) in dst.iter_mut().zip(x.row(r)) {
                *d += s;
            }
        }
        for (s, &ic) in inv_counts.iter().enumerate() {
            for v in out.row_mut(s) {
                *v *= ic;
            }
        }
        drop(x);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(SegmentMeanBack {
                ids: ids.clone(),
                inv_counts,
            }),
        )
    }

    /// Takes the per-column maximum of rows within each segment, producing
    /// `[S, F]`. Empty segments produce zero rows and receive no gradient.
    pub fn segment_max(&self, ids: &Ids, num_segments: usize) -> Tensor {
        let x = self.data();
        assert_ids(ids, x.rows(), num_segments, "segment_max");
        record(Kernel::segment(
            "segment_max",
            x.rows(),
            x.cols(),
            num_segments,
        ));
        let cols = x.cols();
        let mut out = NdArray::full(num_segments, cols, f32::NEG_INFINITY);
        let mut argmax = vec![-1i64; num_segments * cols];
        for (r, &i) in ids.iter().enumerate() {
            let seg = i as usize;
            for (c, &v) in x.row(r).iter().enumerate() {
                if v > out.at(seg, c) {
                    *out.at_mut(seg, c) = v;
                    argmax[seg * cols + c] = r as i64;
                }
            }
        }
        // Empty segments: report 0 like torch_scatter's default reduce.
        for v in out.data_mut() {
            if *v == f32::NEG_INFINITY {
                *v = 0.0;
            }
        }
        let in_rows = x.rows();
        drop(x);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(SegmentMaxBack { argmax, in_rows }),
        )
    }

    /// Softmax over rows sharing a segment id, column-wise (attention
    /// normalization: rows are edges, segments are destination nodes, columns
    /// are attention heads). Produces the same shape as the input.
    pub fn segment_softmax(&self, ids: &Ids, num_segments: usize) -> Tensor {
        let x = self.data();
        assert_ids(ids, x.rows(), num_segments, "segment_softmax");
        record(Kernel::new(
            "segment_softmax",
            KernelKind::Softmax,
            3 * x.len() as u64,
            20 * x.len() as u64,
        ));
        let cols = x.cols();
        // Shifted exp for numerical stability.
        let mut seg_max = NdArray::full(num_segments, cols, f32::NEG_INFINITY);
        for (r, &i) in ids.iter().enumerate() {
            let sm = seg_max.row_mut(i as usize);
            for (c, &v) in x.row(r).iter().enumerate() {
                if v > sm[c] {
                    sm[c] = v;
                }
            }
        }
        let mut y = NdArray::zeros(x.rows(), cols);
        let mut seg_sum = NdArray::zeros(num_segments, cols);
        for (r, &i) in ids.iter().enumerate() {
            let sm = seg_max.row(i as usize);
            let yr = y.row_mut(r);
            for (c, &v) in x.row(r).iter().enumerate() {
                yr[c] = (v - sm[c]).exp();
            }
            let ss = seg_sum.row_mut(i as usize);
            for c in 0..cols {
                ss[c] += yr[c];
            }
        }
        for (r, &i) in ids.iter().enumerate() {
            let ss = seg_sum.row(i as usize);
            let yr = y.row_mut(r);
            for c in 0..cols {
                yr[c] /= ss[c].max(1e-16);
            }
        }
        drop(x);
        Tensor::from_op(
            y.clone(),
            vec![self.clone()],
            Box::new(SegmentSoftmaxBack {
                ids: ids.clone(),
                num_segments,
                y,
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn ids(v: Vec<u32>) -> Ids {
        Rc::new(v)
    }

    #[test]
    fn counts() {
        assert_eq!(segment_counts(&[0, 0, 2], 3), vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn segment_sum_and_back() {
        let x = Tensor::param(NdArray::from_vec(3, 1, vec![1., 2., 3.]));
        let y = x.segment_sum(&ids(vec![0, 1, 0]), 2);
        assert_eq!(y.data().data(), &[4., 2.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[1., 1., 1.]);
    }

    #[test]
    fn segment_mean_handles_empty_segment() {
        let x = Tensor::param(NdArray::from_vec(2, 1, vec![2., 4.]));
        let y = x.segment_mean(&ids(vec![0, 0]), 2);
        assert_eq!(y.data().data(), &[3., 0.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.5, 0.5]);
    }

    #[test]
    fn segment_max_values_and_grads() {
        let x = Tensor::param(NdArray::from_vec(4, 1, vec![1., 5., 2., -1.]));
        let y = x.segment_max(&ids(vec![0, 0, 1, 1]), 2);
        assert_eq!(y.data().data(), &[5., 2.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0., 1., 1., 0.]);
    }

    #[test]
    fn segment_max_empty_segment_is_zero() {
        let x = Tensor::param(NdArray::from_vec(1, 1, vec![-7.]));
        let y = x.segment_max(&ids(vec![1]), 3);
        assert_eq!(y.data().data(), &[0., -7., 0.]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let x = Tensor::param(NdArray::from_vec(
            4,
            2,
            vec![1., 0., 2., 0., 5., 1., 3., 1.],
        ));
        let sid = ids(vec![0, 0, 1, 1]);
        let y = x.segment_softmax(&sid, 2);
        let d = y.data();
        for c in 0..2 {
            assert!((d.at(0, c) + d.at(1, c) - 1.0).abs() < 1e-5);
            assert!((d.at(2, c) + d.at(3, c) - 1.0).abs() < 1e-5);
        }
        // Larger score gets larger probability.
        assert!(d.at(1, 0) > d.at(0, 0));
        assert!(d.at(2, 0) > d.at(3, 0));
    }

    #[test]
    fn segment_softmax_gradcheck() {
        let vals = vec![0.5, -0.3, 1.2, 0.1];
        let sid = vec![0u32, 0, 1, 1];
        let x = Tensor::param(NdArray::from_vec(4, 1, vals.clone()));
        // f = sum(softmax * weights) to create non-trivial grads
        let w = Tensor::new(NdArray::from_vec(4, 1, vec![1., 2., 3., 4.]));
        let y = x.segment_softmax(&ids(sid.clone()), 2).mul(&w);
        y.backward();
        let analytic = x.grad().unwrap();
        let f = |v: &[f32]| {
            let weights = [1.0f32, 2., 3., 4.];
            let mut total = 0.0;
            for seg in 0..2 {
                let rows: Vec<usize> = (0..4).filter(|&r| sid[r] == seg as u32).collect();
                let m = rows.iter().map(|&r| v[r]).fold(f32::MIN, f32::max);
                let sum: f32 = rows.iter().map(|&r| (v[r] - m).exp()).sum();
                for &r in &rows {
                    total += (v[r] - m).exp() / sum * weights[r];
                }
            }
            total
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut up = vals.clone();
            up[i] += eps;
            let mut dn = vals.clone();
            dn[i] -= eps;
            let numeric = (f(&up) - f(&dn)) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[i]).abs() < 1e-2,
                "i={i}: {numeric} vs {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn segment_softmax_stable_for_large_scores() {
        let x = Tensor::new(NdArray::from_vec(2, 1, vec![1000.0, 999.0]));
        let y = x.segment_softmax(&ids(vec![0, 0]), 1);
        assert!(!y.data().has_non_finite());
    }

    #[test]
    #[should_panic(expected = "segment id out of bounds")]
    fn oob_segment_panics() {
        let x = Tensor::new(NdArray::zeros(1, 1));
        x.segment_sum(&ids(vec![3]), 2);
    }
}
