//! Row gather and scatter-add through index arrays.
//!
//! These two kernels are the backbone of PyG-style message passing: messages
//! are built by gathering source-node rows along edges and aggregated by
//! scatter-adding them into destination-node rows. Their backward rules are
//! each other.

use gnn_device::{record, Kernel};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;
use crate::ops::Ids;
use crate::shape_error::ShapeError;

/// Validates a gather index array against the number of source rows.
/// Shared by [`Tensor::gather_rows`] (panics on `Err`) and the `gnn-lint`
/// index-safety pass (reports the same message).
pub fn check_gather_idx(idx: &[u32], n: usize) -> Result<(), ShapeError> {
    if idx.iter().any(|&i| (i as usize) >= n) {
        return Err(ShapeError::index_oob("gather_rows", "n", n));
    }
    Ok(())
}

/// Validates a scatter index array against source rows and output extent.
/// Shared by [`Tensor::scatter_add_rows`] and the `gnn-lint` index pass.
pub fn check_scatter_idx(idx: &[u32], src_rows: usize, out_rows: usize) -> Result<(), ShapeError> {
    if idx.len() != src_rows {
        return Err(ShapeError::index_length(
            "scatter_add_rows",
            idx.len(),
            src_rows,
        ));
    }
    if idx.iter().any(|&i| (i as usize) >= out_rows) {
        return Err(ShapeError::index_oob(
            "scatter_add_rows",
            "out_rows",
            out_rows,
        ));
    }
    Ok(())
}

pub(crate) fn gather_raw(x: &NdArray, idx: &[u32]) -> NdArray {
    let cols = x.cols();
    let mut out = NdArray::zeros(idx.len(), cols);
    for (r, &i) in idx.iter().enumerate() {
        debug_assert!(
            (i as usize) < x.rows(),
            "gather_raw index out of bounds (n = {})",
            x.rows()
        );
        out.row_mut(r).copy_from_slice(x.row(i as usize));
    }
    out
}

pub(crate) fn scatter_add_raw(src: &NdArray, idx: &[u32], out_rows: usize) -> NdArray {
    let cols = src.cols();
    let mut out = NdArray::zeros(out_rows, cols);
    for (r, &i) in idx.iter().enumerate() {
        debug_assert!(
            (i as usize) < out_rows,
            "scatter_add_raw index out of bounds (out_rows = {out_rows})"
        );
        let dst = &mut out.data_mut()[i as usize * cols..(i as usize + 1) * cols];
        for (d, &s) in dst.iter_mut().zip(src.row(r)) {
            *d += s;
        }
    }
    out
}

struct GatherBack {
    idx: Ids,
    src_rows: usize,
}

impl Backward for GatherBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::scatter("gather_back", grad.rows(), grad.cols()));
        accumulate(&parents[0], scatter_add_raw(grad, &self.idx, self.src_rows));
    }
    fn name(&self) -> &'static str {
        "gather_rows"
    }
}

struct ScatterAddBack {
    idx: Ids,
}

impl Backward for ScatterAddBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::gather(
            "scatter_add_back",
            self.idx.len(),
            grad.cols(),
        ));
        accumulate(&parents[0], gather_raw(grad, &self.idx));
    }
    fn name(&self) -> &'static str {
        "scatter_add_rows"
    }
}

impl Tensor {
    /// Selects rows of `self [N, F]` by `idx`, producing `[idx.len(), F]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &Ids) -> Tensor {
        let x = self.data();
        let n = x.rows();
        if let Err(e) = check_gather_idx(idx, n) {
            panic!("{e}");
        }
        record(Kernel::gather("gather_rows", idx.len(), x.cols()));
        let out = gather_raw(&x, idx);
        drop(x);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(GatherBack {
                idx: idx.clone(),
                src_rows: n,
            }),
        )
    }

    /// Accumulates the rows of `self [E, F]` into `out_rows` destination rows
    /// selected by `idx`, producing `[out_rows, F]`.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.rows()` or any index is out of bounds.
    pub fn scatter_add_rows(&self, idx: &Ids, out_rows: usize) -> Tensor {
        let x = self.data();
        if let Err(e) = check_scatter_idx(idx, x.rows(), out_rows) {
            panic!("{e}");
        }
        record(Kernel::scatter("scatter_add_rows", x.rows(), x.cols()));
        let out = scatter_add_raw(&x, idx, out_rows);
        drop(x);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(ScatterAddBack { idx: idx.clone() }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn ids(v: Vec<u32>) -> Ids {
        Rc::new(v)
    }

    #[test]
    fn gather_selects_rows() {
        let x = Tensor::param(NdArray::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let y = x.gather_rows(&ids(vec![2, 0, 2]));
        assert_eq!(y.data().data(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn gather_backward_scatters() {
        let x = Tensor::param(NdArray::from_vec(3, 1, vec![1., 2., 3.]));
        let y = x.gather_rows(&ids(vec![2, 0, 2]));
        y.backward();
        // row 2 gathered twice, row 0 once, row 1 never.
        assert_eq!(x.grad().unwrap().data(), &[1., 0., 2.]);
    }

    #[test]
    fn scatter_add_accumulates() {
        let src = Tensor::param(NdArray::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let y = src.scatter_add_rows(&ids(vec![1, 1, 0]), 2);
        assert_eq!(y.data().data(), &[3., 3., 3., 3.]);
    }

    #[test]
    fn scatter_backward_gathers() {
        let src = Tensor::param(NdArray::from_vec(2, 1, vec![1., 2.]));
        let y = src.scatter_add_rows(&ids(vec![1, 1]), 3);
        // weight row 1 by 5 through a mul, to see grads route back.
        let w = Tensor::new(NdArray::from_vec(3, 1, vec![0., 5., 0.]));
        let z = y.mul(&w);
        z.backward();
        assert_eq!(src.grad().unwrap().data(), &[5., 5.]);
    }

    #[test]
    fn gather_then_scatter_is_message_passing_roundtrip() {
        // out[d] = sum over edges e with dst[e]==d of x[src[e]] — one GNN
        // aggregation. For a 2-cycle each node receives the other's feature.
        let x = Tensor::param(NdArray::from_vec(2, 1, vec![10., 20.]));
        let src = ids(vec![0, 1]);
        let dst = ids(vec![1, 0]);
        let msg = x.gather_rows(&src);
        let agg = msg.scatter_add_rows(&dst, 2);
        assert_eq!(agg.data().data(), &[20., 10.]);
        agg.backward();
        assert_eq!(x.grad().unwrap().data(), &[1., 1.]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_oob_panics() {
        let x = Tensor::new(NdArray::zeros(2, 2));
        x.gather_rows(&ids(vec![5]));
    }

    #[test]
    #[should_panic(expected = "index length mismatch")]
    fn scatter_length_mismatch_panics() {
        let x = Tensor::new(NdArray::zeros(2, 2));
        x.scatter_add_rows(&ids(vec![0]), 2);
    }
}
