//! Multi-head helpers for attention-style models.
//!
//! Head-structured tensors are stored flat as `[N, H * D]` (head-major
//! columns). These ops provide the two per-head contractions GAT-style
//! layers need without a general reshape/broadcast machinery:
//! [`Tensor::head_dot`] projects features onto a per-head attention vector
//! and [`Tensor::mul_per_head`] weights per-head feature blocks by per-head
//! scalars.

use gnn_device::{record, Kernel};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

fn head_dims(total_cols: usize, heads: usize, op: &str) -> usize {
    assert!(heads > 0, "{op}: heads must be positive");
    assert_eq!(
        total_cols % heads,
        0,
        "{op}: columns {total_cols} not divisible by heads {heads}"
    );
    total_cols / heads
}

struct HeadDotBack {
    x: NdArray,
    a: NdArray,
    heads: usize,
}

impl Backward for HeadDotBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let d = self.x.cols() / self.heads;
        record(Kernel::elementwise("head_dot_back", self.x.len(), 2, 4));
        if parents[0].needs_grad() {
            let mut dx = NdArray::zeros(self.x.rows(), self.x.cols());
            for r in 0..self.x.rows() {
                let gr = grad.row(r);
                let dxr = dx.row_mut(r);
                for h in 0..self.heads {
                    let g = gr[h];
                    for k in 0..d {
                        dxr[h * d + k] = g * self.a.data()[h * d + k];
                    }
                }
            }
            accumulate(&parents[0], dx);
        }
        if parents[1].needs_grad() {
            let mut da = NdArray::zeros(1, self.x.cols());
            for r in 0..self.x.rows() {
                let gr = grad.row(r);
                let xr = self.x.row(r);
                for h in 0..self.heads {
                    let g = gr[h];
                    for k in 0..d {
                        da.data_mut()[h * d + k] += g * xr[h * d + k];
                    }
                }
            }
            accumulate(&parents[1], da);
        }
    }
    fn name(&self) -> &'static str {
        "head_dot"
    }
}

struct MulPerHeadBack {
    x: NdArray,
    w: NdArray,
    heads: usize,
}

impl Backward for MulPerHeadBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let d = self.x.cols() / self.heads;
        record(Kernel::elementwise("mul_per_head_back", self.x.len(), 2, 4));
        if parents[0].needs_grad() {
            let mut dx = NdArray::zeros(self.x.rows(), self.x.cols());
            for r in 0..self.x.rows() {
                let gr = grad.row(r);
                let wr = self.w.row(r);
                let dxr = dx.row_mut(r);
                for h in 0..self.heads {
                    for k in 0..d {
                        dxr[h * d + k] = gr[h * d + k] * wr[h];
                    }
                }
            }
            accumulate(&parents[0], dx);
        }
        if parents[1].needs_grad() {
            let mut dw = NdArray::zeros(self.x.rows(), self.heads);
            for r in 0..self.x.rows() {
                let gr = grad.row(r);
                let xr = self.x.row(r);
                let dwr = dw.row_mut(r);
                for h in 0..self.heads {
                    let mut acc = 0.0;
                    for k in 0..d {
                        acc += gr[h * d + k] * xr[h * d + k];
                    }
                    dwr[h] = acc;
                }
            }
            accumulate(&parents[1], dw);
        }
    }
    fn name(&self) -> &'static str {
        "mul_per_head"
    }
}

impl Tensor {
    /// Per-head dot product with an attention vector: for `self [N, H*D]` and
    /// `a [1, H*D]`, produces `[N, H]` with
    /// `out[n, h] = sum_k self[n, h*D+k] * a[0, h*D+k]`.
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree or are not divisible by `heads`.
    pub fn head_dot(&self, a: &Tensor, heads: usize) -> Tensor {
        let x = self.data().clone();
        let av = a.data().clone();
        assert_eq!(av.shape(), (1, x.cols()), "head_dot attention vector shape");
        let d = head_dims(x.cols(), heads, "head_dot");
        record(Kernel::elementwise("head_dot", x.len(), 2, 3));
        let mut out = NdArray::zeros(x.rows(), heads);
        for r in 0..x.rows() {
            let xr = x.row(r);
            let orow = out.row_mut(r);
            for h in 0..heads {
                let mut acc = 0.0;
                for k in 0..d {
                    acc += xr[h * d + k] * av.data()[h * d + k];
                }
                orow[h] = acc;
            }
        }
        Tensor::from_op(
            out,
            vec![self.clone(), a.clone()],
            Box::new(HeadDotBack { x, a: av, heads }),
        )
    }

    /// Scales each head's feature block by a per-row, per-head scalar: for
    /// `self [N, H*D]` and `w [N, H]`, produces `[N, H*D]` with
    /// `out[n, h*D+k] = self[n, h*D+k] * w[n, h]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul_per_head(&self, w: &Tensor, heads: usize) -> Tensor {
        let x = self.data().clone();
        let wv = w.data().clone();
        assert_eq!(wv.shape(), (x.rows(), heads), "mul_per_head weight shape");
        let d = head_dims(x.cols(), heads, "mul_per_head");
        record(Kernel::elementwise("mul_per_head", x.len(), 1, 3));
        let mut out = NdArray::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let xr = x.row(r);
            let wr = wv.row(r);
            let orow = out.row_mut(r);
            for h in 0..heads {
                for k in 0..d {
                    orow[h * d + k] = xr[h * d + k] * wr[h];
                }
            }
        }
        Tensor::from_op(
            out,
            vec![self.clone(), w.clone()],
            Box::new(MulPerHeadBack { x, w: wv, heads }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dot_two_heads() {
        // 2 heads x 2 dims. Row: [1,2 | 3,4], a: [1,0 | 0,1]
        let x = Tensor::param(NdArray::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let a = Tensor::param(NdArray::from_vec(1, 4, vec![1., 0., 0., 1.]));
        let y = x.head_dot(&a, 2);
        assert_eq!(y.data().data(), &[1., 4.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[1., 0., 0., 1.]);
        assert_eq!(a.grad().unwrap().data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn single_head_dot_is_rowwise_dot() {
        let x = Tensor::param(NdArray::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let a = Tensor::param(NdArray::from_vec(1, 3, vec![1., 1., 1.]));
        let y = x.head_dot(&a, 1);
        assert_eq!(y.data().data(), &[6., 15.]);
    }

    #[test]
    fn mul_per_head_scales_blocks() {
        let x = Tensor::param(NdArray::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let w = Tensor::param(NdArray::from_vec(1, 2, vec![10., 100.]));
        let y = x.mul_per_head(&w, 2);
        assert_eq!(y.data().data(), &[10., 20., 300., 400.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[10., 10., 100., 100.]);
        assert_eq!(w.grad().unwrap().data(), &[3., 7.]);
    }

    #[test]
    #[should_panic(expected = "not divisible by heads")]
    fn indivisible_heads_panics() {
        let x = Tensor::new(NdArray::zeros(1, 5));
        let a = Tensor::new(NdArray::zeros(1, 5));
        x.head_dot(&a, 2);
    }
}
