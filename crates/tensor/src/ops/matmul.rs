//! Dense matrix multiplication (the cuBLAS GEMM of the simulated device).

use gnn_device::{record, Kernel};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;
use crate::shape_error::ShapeError;

/// Validates matmul inner dimensions; `Err` carries the exact message the
/// runtime panics with (and that `gnn-lint` reports statically).
pub fn check_matmul(lhs_cols: usize, rhs_rows: usize) -> Result<(), ShapeError> {
    if lhs_cols != rhs_rows {
        return Err(ShapeError::inner_dim("matmul", lhs_cols, rhs_rows));
    }
    Ok(())
}

struct MatmulBack {
    a: NdArray,
    b: NdArray,
}

impl Backward for MatmulBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        // dA = dC @ B^T
        if parents[0].needs_grad() {
            record(Kernel::gemm(
                "matmul_back_a",
                grad.rows(),
                grad.cols(),
                self.b.rows(),
            ));
            accumulate(&parents[0], grad.matmul_nt(&self.b));
        }
        // dB = A^T @ dC
        if parents[1].needs_grad() {
            record(Kernel::gemm(
                "matmul_back_b",
                self.a.cols(),
                self.a.rows(),
                grad.cols(),
            ));
            accumulate(&parents[1], self.a.matmul_tn(grad));
        }
    }

    fn name(&self) -> &'static str {
        "matmul"
    }
}

impl Tensor {
    /// Dense matmul `self [m,k] @ other [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree, with the [`ShapeError`] rendering
    /// `gnn-lint` reports for the same defect.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (a, b) = (self.data().clone(), other.data().clone());
        if let Err(e) = check_matmul(a.cols(), b.rows()) {
            panic!("{e}");
        }
        record(Kernel::gemm("matmul", a.rows(), a.cols(), b.cols()));
        let data = a.matmul(&b);
        Tensor::from_op(
            data,
            vec![self.clone(), other.clone()],
            Box::new(MatmulBack { a, b }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_forward_known() {
        let a = Tensor::param(NdArray::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = Tensor::param(NdArray::from_vec(2, 2, vec![5., 6., 7., 8.]));
        let c = a.matmul(&b);
        assert_eq!(c.data().data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        // y = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones
        let a = Tensor::param(NdArray::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let b = Tensor::param(NdArray::from_vec(3, 2, vec![1., -1., 0.5, 2., -2., 0.]));
        let y = a.matmul(&b);
        y.backward();
        let ones = NdArray::full(2, 2, 1.0);
        assert_eq!(a.grad().unwrap(), ones.matmul_nt(&b.data()));
        assert_eq!(b.grad().unwrap(), a.data().matmul_tn(&ones));
    }

    #[test]
    fn matmul_gradient_numerical_check() {
        // Finite-difference check on a single element.
        let mut base = vec![0.3, -0.7, 0.2, 0.9, -0.1, 0.4];
        let bv = vec![0.5, 1.5, -0.5, 0.25, 2.0, -1.0];
        let f = |av: &[f32]| {
            let a = NdArray::from_vec(2, 3, av.to_vec());
            let b = NdArray::from_vec(3, 2, bv.clone());
            a.matmul(&b).sum()
        };
        let a = Tensor::param(NdArray::from_vec(2, 3, base.clone()));
        let b = Tensor::param(NdArray::from_vec(3, 2, bv.clone()));
        a.matmul(&b).backward();
        let analytic = a.grad().unwrap();
        let eps = 1e-3;
        for i in 0..base.len() {
            let orig = base[i];
            base[i] = orig + eps;
            let up = f(&base);
            base[i] = orig - eps;
            let down = f(&base);
            base[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[i]).abs() < 1e-2,
                "grad mismatch at {i}: {numeric} vs {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "matmul: inner dimensions disagree (lhs cols = 3, rhs rows = 2)")]
    fn matmul_inner_dim_mismatch_panics_with_shape_error() {
        let a = Tensor::new(NdArray::zeros(2, 3));
        let b = Tensor::new(NdArray::zeros(2, 2));
        a.matmul(&b);
    }

    #[test]
    fn matmul_records_gemm_kernels() {
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        let a = Tensor::param(NdArray::zeros(8, 8));
        let b = Tensor::param(NdArray::zeros(8, 8));
        a.matmul(&b).backward();
        let report = gnn_device::session::finish(h);
        let gemms = report
            .kind_counts
            .iter()
            .find(|(k, _)| *k == gnn_device::KernelKind::Gemm)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(gemms, 3, "forward + two backward GEMMs");
    }
}
