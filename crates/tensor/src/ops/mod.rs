//! Differentiable, device-instrumented tensor operations.
//!
//! Each operation:
//! 1. computes its result on the CPU (real numerics — accuracies in the study
//!    come from genuinely training the models), and
//! 2. reports the kernels a GPU implementation would launch to the
//!    thread-local [`gnn_device::Session`] — in both the forward and the
//!    backward direction.
//!
//! The division into modules mirrors kernel families:
//! [`arith`] elementwise/broadcast arithmetic, [`matmul`] dense GEMM,
//! [`activation`] pointwise nonlinearities, [`reduce`] full reductions,
//! [`index`] gather/scatter through index arrays, [`segment`]
//! variable-length segment reductions and segment softmax, [`heads`]
//! multi-head helpers for attention models, [`norm`] batch/L2 normalization,
//! [`dropout`], and [`loss`] classification losses.

pub mod activation;
pub mod arith;
pub mod dropout;
pub mod heads;
pub mod index;
pub mod loss;
pub mod matmul;
pub mod norm;
pub mod reduce;
pub mod segment;
pub mod shape;

/// Shared row-index array used by gather/scatter/segment operations.
///
/// Index arrays are built once per mini-batch by the framework loaders and
/// shared (`Rc`) between the forward tape and the backward closures.
pub type Ids = std::rc::Rc<Vec<u32>>;

pub use loss::cross_entropy;
pub use norm::BatchNormOutput;
pub use segment::segment_counts;
