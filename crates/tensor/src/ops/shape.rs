//! Column concatenation and column selection.

use gnn_device::{record, Kernel};

use crate::autograd::{accumulate, Backward, Tensor};
use crate::ndarray::NdArray;

struct ConcatColsBack {
    cols_a: usize,
    cols_b: usize,
}

impl Backward for ConcatColsBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("concat_back", grad.len(), 0, 2));
        let n = grad.rows();
        let mut da = NdArray::zeros(n, self.cols_a);
        let mut db = NdArray::zeros(n, self.cols_b);
        for r in 0..n {
            let g = grad.row(r);
            da.row_mut(r).copy_from_slice(&g[..self.cols_a]);
            db.row_mut(r).copy_from_slice(&g[self.cols_a..]);
        }
        accumulate(&parents[0], da);
        accumulate(&parents[1], db);
    }
    fn name(&self) -> &'static str {
        "concat_cols"
    }
}

struct SelectColBack {
    col: usize,
    cols: usize,
}

impl Backward for SelectColBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        record(Kernel::elementwise("select_col_back", grad.len(), 0, 2));
        let mut dx = NdArray::zeros(grad.rows(), self.cols);
        for r in 0..grad.rows() {
            *dx.at_mut(r, self.col) = grad.at(r, 0);
        }
        accumulate(&parents[0], dx);
    }
    fn name(&self) -> &'static str {
        "select_col"
    }
}

impl Tensor {
    /// Concatenates `self [N, F1]` and `other [N, F2]` along columns into
    /// `[N, F1 + F2]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        let a = self.data();
        let b = other.data();
        assert_eq!(a.rows(), b.rows(), "concat_cols row mismatch");
        let (ca, cb) = (a.cols(), b.cols());
        record(Kernel::elementwise("concat_cols", a.len() + b.len(), 0, 3));
        let mut out = NdArray::zeros(a.rows(), ca + cb);
        for r in 0..a.rows() {
            out.row_mut(r)[..ca].copy_from_slice(a.row(r));
            out.row_mut(r)[ca..].copy_from_slice(b.row(r));
        }
        drop(a);
        drop(b);
        Tensor::from_op(
            out,
            vec![self.clone(), other.clone()],
            Box::new(ConcatColsBack {
                cols_a: ca,
                cols_b: cb,
            }),
        )
    }

    /// Extracts column `col` as an `[N, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn select_col(&self, col: usize) -> Tensor {
        let x = self.data();
        assert!(col < x.cols(), "select_col {col} out of {} cols", x.cols());
        record(Kernel::elementwise("select_col", x.rows(), 0, 2));
        let data: Vec<f32> = (0..x.rows()).map(|r| x.at(r, col)).collect();
        let cols = x.cols();
        drop(x);
        let n = data.len();
        Tensor::from_op(
            NdArray::from_vec(n, 1, data),
            vec![self.clone()],
            Box::new(SelectColBack { col, cols }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_split_grads() {
        let a = Tensor::param(NdArray::from_vec(2, 1, vec![1., 2.]));
        let b = Tensor::param(NdArray::from_vec(2, 2, vec![3., 4., 5., 6.]));
        let y = a.concat_cols(&b);
        assert_eq!(y.data().data(), &[1., 3., 4., 2., 5., 6.]);
        let w = Tensor::new(NdArray::from_vec(2, 3, vec![1., 10., 100., 2., 20., 200.]));
        y.mul(&w).backward();
        assert_eq!(a.grad().unwrap().data(), &[1., 2.]);
        assert_eq!(b.grad().unwrap().data(), &[10., 100., 20., 200.]);
    }

    #[test]
    fn select_col_grads_route_to_column() {
        let x = Tensor::param(NdArray::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let y = x.select_col(1);
        assert_eq!(y.data().data(), &[2., 5.]);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0., 1., 0., 0., 1., 0.]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn select_col_oob() {
        Tensor::new(NdArray::zeros(1, 2)).select_col(2);
    }
}
