//! # gnn-tensor
//!
//! Dense f32 tensor library with reverse-mode autograd, purpose-built for the
//! GNN framework performance study. It plays the role PyTorch plays under
//! PyG/DGL in the original paper: the numerical substrate both frameworks
//! lower to.
//!
//! Two properties matter for the study:
//!
//! 1. **Real numerics** — models genuinely train; accuracies in the
//!    reproduced tables come from actual gradient descent, not a mock.
//! 2. **Device instrumentation** — every op reports the kernels a GPU
//!    implementation would launch (forward *and* backward) to the
//!    thread-local [`gnn_device::Session`], so the simulated timeline,
//!    memory, and utilization reflect the actual op stream of each
//!    framework.
//!
//! # Example: one step of logistic regression
//!
//! ```
//! use gnn_tensor::{cross_entropy, NdArray, Tensor};
//!
//! let x = Tensor::new(NdArray::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]));
//! let w = Tensor::param(NdArray::zeros(2, 2));
//! let labels = [0u32, 0, 1, 1];
//!
//! let loss = cross_entropy(&x.matmul(&w), &labels);
//! loss.backward();
//! let grad = w.grad().expect("parameter gradient");
//! w.data_mut().axpy(-0.5, &grad); // SGD step
//! w.zero_grad();
//! ```

pub mod autograd;
pub mod ndarray;
pub mod nn;
pub mod ops;
pub mod shape_error;

pub use autograd::{accumulate, grad_enabled, inference, no_grad, Backward, Tensor};
pub use ndarray::NdArray;
pub use ops::loss::{accuracy, cross_entropy};
pub use ops::Ids;
pub use shape_error::{ShapeError, ShapeErrorKind};
