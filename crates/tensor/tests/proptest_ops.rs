//! Property-based tests of the tensor engine: algebraic identities, adjoint
//! relationships between forward/backward pairs, and randomized gradient
//! checks against finite differences.

use gnn_tensor::{NdArray, Tensor};
use proptest::prelude::*;
use std::rc::Rc;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

fn ids_strategy(len: usize, max: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..max, len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// ⟨gather(x), y⟩ == ⟨x, scatter_add(y)⟩ — gather and scatter-add are
    /// adjoint linear maps, the identity their backward rules rely on.
    #[test]
    fn gather_scatter_are_adjoint(
        xv in finite_vec(8 * 3),
        yv in finite_vec(6 * 3),
        idx in ids_strategy(6, 8),
    ) {
        let x = NdArray::from_vec(8, 3, xv);
        let y = NdArray::from_vec(6, 3, yv);
        let ids: gnn_tensor::Ids = Rc::new(idx);

        let xt = Tensor::new(x.clone());
        let gathered = xt.gather_rows(&ids);
        let lhs: f32 = gathered
            .data()
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| a * b)
            .sum();

        let yt = Tensor::new(y);
        let scattered = yt.scatter_add_rows(&ids, 8);
        let rhs: f32 = scattered
            .data()
            .data()
            .iter()
            .zip(x.data())
            .map(|(&a, &b)| a * b)
            .sum();

        prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// segment_sum conserves mass: column sums of the output equal column
    /// sums of the input.
    #[test]
    fn segment_sum_conserves_mass(
        xv in finite_vec(10 * 2),
        idx in ids_strategy(10, 4),
    ) {
        let x = Tensor::new(NdArray::from_vec(10, 2, xv));
        let ids: gnn_tensor::Ids = Rc::new(idx);
        let out = x.segment_sum(&ids, 4);
        let in_sums = x.data().col_sums();
        let out_sums = out.data().col_sums();
        for (a, b) in in_sums.data().iter().zip(out_sums.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// segment_softmax outputs are a probability distribution within every
    /// non-empty segment.
    #[test]
    fn segment_softmax_is_distribution(
        xv in finite_vec(12),
        idx in ids_strategy(12, 5),
    ) {
        let x = Tensor::new(NdArray::from_vec(12, 1, xv));
        let ids: gnn_tensor::Ids = Rc::new(idx.clone());
        let y = x.segment_softmax(&ids, 5);
        let d = y.data();
        for &v in d.data() {
            prop_assert!((0.0..=1.0 + 1e-5).contains(&v), "prob {v} out of range");
        }
        for seg in 0..5u32 {
            let total: f32 = idx
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == seg)
                .map(|(r, _)| d.at(r, 0))
                .sum();
            let count = idx.iter().filter(|&&s| s == seg).count();
            if count > 0 {
                prop_assert!((total - 1.0).abs() < 1e-4, "segment {seg} sums to {total}");
            }
        }
    }

    /// matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        av in finite_vec(4 * 3),
        bv in finite_vec(3 * 2),
        cv in finite_vec(3 * 2),
    ) {
        let a = NdArray::from_vec(4, 3, av);
        let b = NdArray::from_vec(3, 2, bv);
        let c = NdArray::from_vec(3, 2, cv);
        let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Randomized finite-difference gradient check of a composite
    /// expression: loss = sum(relu(xW) ⊙ m).
    #[test]
    fn gradcheck_linear_relu_chain(
        xv in finite_vec(3 * 4),
        wv in finite_vec(4 * 2),
        mv in finite_vec(3 * 2),
    ) {
        let f = |xvals: &[f32]| -> f32 {
            let x = NdArray::from_vec(3, 4, xvals.to_vec());
            let w = NdArray::from_vec(4, 2, wv.clone());
            let h = x.matmul(&w).map(|v| v.max(0.0));
            h.data().iter().zip(&mv).map(|(&a, &b)| a * b).sum()
        };
        let x = Tensor::param(NdArray::from_vec(3, 4, xv.clone()));
        let w = Tensor::new(NdArray::from_vec(4, 2, wv.clone()));
        let m = Tensor::new(NdArray::from_vec(3, 2, mv.clone()));
        x.matmul(&w).relu().mul(&m).sum_all().backward();
        let g = x.grad().unwrap();
        let eps = 1e-2;
        for i in 0..xv.len() {
            // Skip points near the ReLU kink where the derivative jumps.
            let pre = {
                let x0 = NdArray::from_vec(3, 4, xv.clone());
                let w0 = NdArray::from_vec(4, 2, wv.clone());
                x0.matmul(&w0)
            };
            if pre.data().iter().any(|v| v.abs() < 0.05) {
                continue;
            }
            let mut up = xv.clone();
            up[i] += eps;
            let mut dn = xv.clone();
            dn[i] -= eps;
            let numeric = (f(&up) - f(&dn)) / (2.0 * eps);
            prop_assert!(
                (numeric - g.data()[i]).abs() < 0.1 * (1.0 + numeric.abs()),
                "i = {i}: numeric {numeric} vs analytic {}",
                g.data()[i]
            );
        }
    }

    /// L2-normalized rows have norm <= 1 (== 1 away from the eps floor).
    #[test]
    fn l2_normalize_bounds_norms(xv in finite_vec(5 * 3)) {
        let x = Tensor::new(NdArray::from_vec(5, 3, xv));
        let y = x.l2_normalize_rows(1e-6);
        for r in 0..5 {
            let n: f32 = y.data().row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!(n <= 1.0 + 1e-4, "row {r} norm {n}");
        }
    }

    /// Batch-norm (training) output has per-column mean ~0 and variance ~1
    /// with identity affine parameters.
    #[test]
    fn batch_norm_standardizes(xv in finite_vec(16 * 2)) {
        let x = Tensor::new(NdArray::from_vec(16, 2, xv.clone()));
        // Skip degenerate columns (all values equal → zero variance).
        for c in 0..2 {
            let col: Vec<f32> = (0..16).map(|r| xv[r * 2 + c]).collect();
            let spread = col.iter().cloned().fold(f32::MIN, f32::max)
                - col.iter().cloned().fold(f32::MAX, f32::min);
            prop_assume!(spread > 0.1);
        }
        let gamma = Tensor::new(NdArray::full(1, 2, 1.0));
        let beta = Tensor::new(NdArray::zeros(1, 2));
        let out = x.batch_norm_train(&gamma, &beta, 1e-5).out;
        let d = out.data();
        for c in 0..2 {
            let mean: f32 = (0..16).map(|r| d.at(r, c)).sum::<f32>() / 16.0;
            let var: f32 =
                (0..16).map(|r| (d.at(r, c) - mean).powi(2)).sum::<f32>() / 16.0;
            prop_assert!(mean.abs() < 1e-3, "col {c} mean {mean}");
            prop_assert!((var - 1.0).abs() < 1e-2, "col {c} var {var}");
        }
    }

    /// Cross-entropy is minimized by the one-hot logits of the labels:
    /// the loss of strongly-correct logits is below any random logits.
    #[test]
    fn cross_entropy_ordering(lv in finite_vec(4 * 3), labels in ids_strategy(4, 3)) {
        let random = Tensor::new(NdArray::from_vec(4, 3, lv));
        let mut perfect = NdArray::zeros(4, 3);
        for (r, &l) in labels.iter().enumerate() {
            *perfect.at_mut(r, l as usize) = 20.0;
        }
        let perfect = Tensor::new(perfect);
        let l_rand = gnn_tensor::cross_entropy(&random, &labels).item();
        let l_perf = gnn_tensor::cross_entropy(&perfect, &labels).item();
        prop_assert!(l_perf <= l_rand + 1e-6, "{l_perf} vs {l_rand}");
    }

    /// Autograd linearity: grad of (a·f) is a·(grad of f).
    #[test]
    fn gradient_scales_linearly(xv in finite_vec(6), alpha in 0.5f32..4.0) {
        let x1 = Tensor::param(NdArray::from_vec(2, 3, xv.clone()));
        x1.sigmoid().sum_all().backward();
        let g1 = x1.grad().unwrap();

        let x2 = Tensor::param(NdArray::from_vec(2, 3, xv));
        x2.sigmoid().sum_all().scale(alpha).backward();
        let g2 = x2.grad().unwrap();

        for (a, b) in g1.data().iter().zip(g2.data()) {
            prop_assert!((a * alpha - b).abs() < 1e-4, "{a} * {alpha} vs {b}");
        }
    }
}
