//! # gnn-faults: deterministic fault injection for the GNN study
//!
//! Long benchmarking campaigns die in the worst possible way: hours into a
//! 60-cell sweep, one device OOM or NaN loss aborts the whole process and
//! leaves no artifacts. This crate provides the *controlled* version of
//! those failures so the rest of the workspace can practice surviving them:
//!
//! - A [`FaultPlan`] is a **seeded, deterministic schedule** of faults —
//!   "the 120th device allocation fails", "kernel launch 300 is corrupt",
//!   "PCIe transfer 10 runs 4× slow", "replica 2 dies at data-parallel step
//!   3", "the training loss at epoch 2 is poisoned to NaN", "serving shard
//!   1 is blacked out over simulated seconds [0.03, 0.09)". No wall-clock
//!   randomness anywhere: the same plan and workload always produce the
//!   same faults at the same simulated instants. Fleet-level kinds
//!   ([`FaultKind::ShardBlackout`], [`FaultKind::NetStraggler`]) trigger on
//!   simulated-time windows instead of counters — the serve clock is
//!   deterministic, so the triggers still are.
//! - A thread-local [`Injector`] (install pattern identical to
//!   `gnn_device::session` / `gnn_obs`) is consulted by hooks inside the
//!   *real* code paths: `gnn_device::Session::{alloc, record}`,
//!   `gnn_device::DataParallel::step_time`, and the `gnn-train` loss
//!   computation. With no injector installed every hook is a no-op, so
//!   production runs pay a thread-local read per hook and nothing else.
//! - Faults that model asynchronous device errors (OOM, kernel faults) use
//!   **sticky-error semantics** like CUDA: the hook records a pending
//!   [`Fault`] and execution continues until the supervisor synchronizes
//!   with [`take_pending`] at a step boundary.
//!
//! Every fired fault is appended to the injector's [`FaultLog`] and emitted
//! as an instant event on the `faults` track of the `gnn-obs` trace, so
//! Chrome traces show exactly where a run was perturbed.
//!
//! The supervision layer that consumes these faults — retry with backoff,
//! checkpoint/resume, batch halving, world shrinking — lives in
//! `gnn_train::supervisor`; the sweep isolation that turns per-cell
//! failures into `CellOutcome` records lives in `gnn_core::runner`.

pub mod inject;
pub mod plan;

pub use inject::{
    events_since, finish, install, is_active, on_alloc, on_dp_step, on_kernel, poison_loss,
    set_cell, set_epoch, shard_down, shard_net_factor, take_pending, transfer_factor, Fault,
    FaultEvent, FaultLog, Injector, InjectorHandle,
};
pub use plan::{FaultKind, FaultPlan, FaultSpec, PlanParseError};
