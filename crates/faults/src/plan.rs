//! Fault plans: seeded, deterministic schedules of injected failures.
//!
//! A plan is data, not behaviour: a list of [`FaultSpec`]s saying *what*
//! fires and *when* (in terms of deterministic workload counters — the Nth
//! allocation, the Nth kernel launch — never wall-clock time). The
//! [`crate::Injector`] turns a plan into fired events; `gnn-lint` audits a
//! plan against a configured run before anything executes.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What kind of fault fires, and its trigger.
///
/// All counters are 1-based and count events of their own category since
/// the injector was installed (allocations, kernel launches, PCIe
/// transfers, data-parallel steps), so a plan is deterministic for a given
/// workload regardless of timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// One-shot device OOM: the `at`-th allocation fails (sticky error,
    /// surfaced at the next synchronization). Retrying the step succeeds.
    Oom {
        /// 1-based allocation index.
        at: u64,
    },
    /// Persistent memory ceiling: every allocation that would push current
    /// device memory above `bytes` fails. Unlike [`FaultKind::Oom`] this
    /// refires until the workload shrinks (e.g. the supervisor halves the
    /// batch size).
    MemLimit {
        /// Device capacity in bytes.
        bytes: u64,
    },
    /// Transient kernel fault: the `at`-th kernel launch is corrupt
    /// (sticky error). Retrying the step succeeds.
    KernelFault {
        /// 1-based kernel-launch index.
        at: u64,
    },
    /// PCIe straggler: the `at`-th transfer runs `factor`× slower than the
    /// link model predicts. Not an error — just lost time.
    PcieStraggler {
        /// 1-based transfer index.
        at: u64,
        /// Slowdown multiplier (> 1).
        factor: f64,
    },
    /// Replica `gpu` drops out of the data-parallel world at the `at`-th
    /// data-parallel step. The supervisor shrinks the world and re-prices.
    ReplicaFailure {
        /// 0-based replica index.
        gpu: usize,
        /// 1-based data-parallel step index.
        at: u64,
    },
    /// The training loss reported at `epoch` (0-based) is poisoned to NaN.
    NanLoss {
        /// 0-based epoch index.
        epoch: u64,
    },
    /// Fleet-level shard blackout: endpoint shard `shard` is unreachable
    /// for the simulated-time window `[from, until)` on the serve clock.
    /// Queued work drains through the router's retry budget; new arrivals
    /// route around the dark shard. Unlike the counter-triggered kinds,
    /// the window is expressed in simulated seconds — the serve clock is
    /// itself deterministic, so the trigger still is.
    ShardBlackout {
        /// 0-based shard index.
        shard: usize,
        /// Window start (simulated seconds, inclusive).
        from: f64,
        /// Window end (simulated seconds, exclusive).
        until: f64,
    },
    /// Fleet-level network straggler: router↔shard traffic to `shard` runs
    /// `factor`× slower over the simulated-time window `[from, until)`.
    /// Not an error — just lost time on every reply crossing the link.
    NetStraggler {
        /// 0-based shard index.
        shard: usize,
        /// Window start (simulated seconds, inclusive).
        from: f64,
        /// Window end (simulated seconds, exclusive).
        until: f64,
        /// Slowdown multiplier (> 1).
        factor: f64,
    },
}

impl FaultKind {
    /// Stable machine-readable label (used in plan files, logs, traces).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Oom { .. } => "oom",
            FaultKind::MemLimit { .. } => "memlimit",
            FaultKind::KernelFault { .. } => "kernel",
            FaultKind::PcieStraggler { .. } => "pcie",
            FaultKind::ReplicaFailure { .. } => "replica",
            FaultKind::NanLoss { .. } => "nan",
            FaultKind::ShardBlackout { .. } => "blackout",
            FaultKind::NetStraggler { .. } => "netslow",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What fires and when.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Oom { at } => write!(f, "oom at={at}"),
            FaultKind::MemLimit { bytes } => write!(f, "memlimit bytes={bytes}"),
            FaultKind::KernelFault { at } => write!(f, "kernel at={at}"),
            FaultKind::PcieStraggler { at, factor } => write!(f, "pcie at={at} factor={factor}"),
            FaultKind::ReplicaFailure { gpu, at } => write!(f, "replica gpu={gpu} at={at}"),
            FaultKind::NanLoss { epoch } => write!(f, "nan epoch={epoch}"),
            FaultKind::ShardBlackout { shard, from, until } => {
                write!(f, "blackout shard={shard} from={from} until={until}")
            }
            FaultKind::NetStraggler {
                shard,
                from,
                until,
                factor,
            } => {
                write!(
                    f,
                    "netslow shard={shard} from={from} until={until} factor={factor}"
                )
            }
        }
    }
}

/// Why a plan file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-written plans);
    /// recorded so artifacts identify the campaign.
    pub seed: u64,
    /// The scheduled faults, in file/declaration order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Appends a spec (builder-style).
    pub fn with(mut self, kind: FaultKind) -> Self {
        self.specs.push(FaultSpec { kind });
        self
    }

    /// A seeded pseudo-random plan exercising the transient fault kinds
    /// (one-shot OOM, kernel fault, PCIe straggler, NaN loss). Every
    /// trigger index is drawn from `StdRng::seed_from_u64(seed)`, so the
    /// same seed always builds the same plan — no wall-clock randomness.
    ///
    /// Transient-only by construction: a supervisor that retries each fault
    /// once must reproduce the fault-free run's metrics bit-for-bit (the
    /// property the `tests/faults.rs` suite proves).
    pub fn seeded(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        FaultPlan {
            seed,
            specs: vec![
                FaultSpec {
                    kind: FaultKind::Oom {
                        at: rng.gen_range(2u64..200),
                    },
                },
                FaultSpec {
                    kind: FaultKind::KernelFault {
                        at: rng.gen_range(5u64..500),
                    },
                },
                FaultSpec {
                    kind: FaultKind::PcieStraggler {
                        at: rng.gen_range(1u64..40),
                        factor: 2.0 + f64::from(rng.gen_range(0u32..60)) / 10.0,
                    },
                },
                FaultSpec {
                    kind: FaultKind::NanLoss {
                        epoch: rng.gen_range(0u64..3),
                    },
                },
            ],
        }
    }

    /// The canonical chaos-campaign plan: the acceptance plan of the
    /// robustness layer, covering device OOM, a transient kernel fault, a
    /// PCIe straggler, NaN-loss poisoning, and a replica failure. Used by
    /// the CI `chaos` job and accepted by the bench binaries as
    /// `--faults canonical`.
    pub fn canonical() -> Self {
        let mut plan = FaultPlan::seeded(42);
        plan.specs.push(FaultSpec {
            kind: FaultKind::ReplicaFailure { gpu: 1, at: 2 },
        });
        plan
    }

    /// The canonical *fleet* chaos-campaign plan: the single-engine
    /// [`FaultPlan::canonical`] kinds plus the fleet-level failure modes — a
    /// shard blackout and a router↔shard network straggler, with windows
    /// sized to the default fleet horizon (400 requests at 2000 req/s ≈
    /// 0.2 s). Used by the CI `fleet-chaos` job and accepted by the bench
    /// binaries as `--faults canonical-fleet`.
    pub fn canonical_fleet() -> Self {
        let mut plan = FaultPlan::canonical();
        plan.specs.push(FaultSpec {
            kind: FaultKind::ShardBlackout {
                shard: 1,
                from: 0.03,
                until: 0.09,
            },
        });
        plan.specs.push(FaultSpec {
            kind: FaultKind::NetStraggler {
                shard: 0,
                from: 0.10,
                until: 0.16,
                factor: 4.0,
            },
        });
        plan
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Renders the plan in its file format (round-trips through
    /// [`FaultPlan::parse`]).
    pub fn to_text(&self) -> String {
        let mut out = format!("# gnn-faults plan\nseed {}\n", self.seed);
        for spec in &self.specs {
            out.push_str(&spec.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the plan file format: one directive per line, `#` comments.
    ///
    /// ```text
    /// # gnn-faults plan
    /// seed 42
    /// oom at=120
    /// memlimit bytes=200000000
    /// kernel at=300
    /// pcie at=10 factor=4.0
    /// replica gpu=2 at=3
    /// nan epoch=2
    /// blackout shard=1 from=0.03 until=0.09
    /// netslow shard=0 from=0.1 until=0.16 factor=4.0
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`PlanParseError`] naming the offending line.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::empty();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let err = |message: String| PlanParseError { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut words = content.split_whitespace();
            let head = words.next().expect("non-empty line has a first word");
            let mut fields: Vec<(&str, &str)> = Vec::new();
            let mut positional: Vec<&str> = Vec::new();
            for w in words {
                match w.split_once('=') {
                    Some((k, v)) => fields.push((k, v)),
                    None => positional.push(w),
                }
            }
            let field = |name: &str| -> Result<&str, PlanParseError> {
                fields
                    .iter()
                    .find(|(k, _)| *k == name)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| err(format!("`{head}` requires {name}=<value>")))
            };
            let parse_u64 = |name: &str, v: &str| -> Result<u64, PlanParseError> {
                v.parse()
                    .map_err(|e| err(format!("{name}={v} is not an integer: {e}")))
            };
            let parse_f64 = |name: &str, v: &str| -> Result<f64, PlanParseError> {
                v.parse()
                    .map_err(|e| err(format!("{name}={v} is not a number: {e}")))
            };
            match head {
                "seed" => {
                    let v = positional
                        .first()
                        .ok_or_else(|| err("`seed` requires a value".into()))?;
                    plan.seed = parse_u64("seed", v)?;
                }
                "oom" => {
                    let at = parse_u64("at", field("at")?)?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::Oom { at },
                    });
                }
                "memlimit" => {
                    let bytes = parse_u64("bytes", field("bytes")?)?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::MemLimit { bytes },
                    });
                }
                "kernel" => {
                    let at = parse_u64("at", field("at")?)?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::KernelFault { at },
                    });
                }
                "pcie" => {
                    let at = parse_u64("at", field("at")?)?;
                    let fv = field("factor")?;
                    let factor: f64 = fv
                        .parse()
                        .map_err(|e| err(format!("factor={fv} is not a number: {e}")))?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::PcieStraggler { at, factor },
                    });
                }
                "replica" => {
                    let gpu = parse_u64("gpu", field("gpu")?)? as usize;
                    let at = parse_u64("at", field("at")?)?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::ReplicaFailure { gpu, at },
                    });
                }
                "nan" => {
                    let epoch = parse_u64("epoch", field("epoch")?)?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::NanLoss { epoch },
                    });
                }
                "blackout" => {
                    let shard = parse_u64("shard", field("shard")?)? as usize;
                    let from = parse_f64("from", field("from")?)?;
                    let until = parse_f64("until", field("until")?)?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::ShardBlackout { shard, from, until },
                    });
                }
                "netslow" => {
                    let shard = parse_u64("shard", field("shard")?)? as usize;
                    let from = parse_f64("from", field("from")?)?;
                    let until = parse_f64("until", field("until")?)?;
                    let factor = parse_f64("factor", field("factor")?)?;
                    plan.specs.push(FaultSpec {
                        kind: FaultKind::NetStraggler {
                            shard,
                            from,
                            until,
                            factor,
                        },
                    });
                }
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// Loads a plan from a file.
    ///
    /// # Errors
    ///
    /// Returns the IO error message or the parse diagnostic.
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        FaultPlan::parse(&text).map_err(|e| e.to_string())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault plan (seed {}): {} fault(s)",
            self.seed,
            self.specs.len()
        )?;
        for spec in &self.specs {
            write!(f, "\n  {spec}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(FaultPlan::seeded(7), FaultPlan::seeded(7));
        assert_ne!(FaultPlan::seeded(7), FaultPlan::seeded(8));
        assert_eq!(FaultPlan::seeded(7).specs.len(), 4);
    }

    #[test]
    fn canonical_covers_all_acceptance_kinds() {
        let plan = FaultPlan::canonical();
        let labels: Vec<&str> = plan.specs.iter().map(|s| s.kind.label()).collect();
        for needed in ["oom", "kernel", "pcie", "nan", "replica"] {
            assert!(labels.contains(&needed), "canonical plan missing {needed}");
        }
    }

    #[test]
    fn text_round_trip() {
        let plan = FaultPlan::canonical().with(FaultKind::MemLimit { bytes: 1 << 30 });
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn canonical_fleet_adds_fleet_kinds_and_round_trips() {
        let plan = FaultPlan::canonical_fleet();
        let labels: Vec<&str> = plan.specs.iter().map(|s| s.kind.label()).collect();
        for needed in [
            "oom", "kernel", "pcie", "nan", "replica", "blackout", "netslow",
        ] {
            assert!(labels.contains(&needed), "fleet plan missing {needed}");
        }
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn fleet_directives_require_their_fields() {
        let err = FaultPlan::parse("blackout shard=1 from=0.1\n").unwrap_err();
        assert!(err.message.contains("until=<value>"));
        let err = FaultPlan::parse("netslow shard=0 from=0 until=soon factor=2\n").unwrap_err();
        assert!(err.message.contains("until=soon is not a number"));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = FaultPlan::parse("seed 1\nbogus at=3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
        let err = FaultPlan::parse("oom\n").unwrap_err();
        assert!(err.message.contains("at=<value>"));
        let err = FaultPlan::parse("pcie at=1 factor=fast\n").unwrap_err();
        assert!(err.message.contains("factor"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let plan = FaultPlan::parse("# header\n\n  oom at=3 # trailing\n").unwrap();
        assert_eq!(plan.specs.len(), 1);
        assert_eq!(plan.specs[0].kind, FaultKind::Oom { at: 3 });
    }
}
