//! The thread-local fault injector.
//!
//! Mirrors the install pattern of `gnn_device::session` and `gnn_obs`:
//! [`install`] arms a [`FaultPlan`] for the current thread and returns an
//! [`InjectorHandle`]; the free hook functions ([`on_alloc`], [`on_kernel`],
//! [`transfer_factor`], [`on_dp_step`], [`poison_loss`]) are called from the
//! real device/training code paths and are no-ops while nothing is
//! installed; [`finish`] disarms the injector and returns the [`FaultLog`]
//! of everything that fired.
//!
//! Faults that model asynchronous device errors (OOM, kernel corruption)
//! are *sticky*: the hook records a pending [`Fault`] and lets execution
//! continue, and the supervisor observes it at the next step boundary via
//! [`take_pending`] — the same programming model CUDA imposes on real
//! training loops.
//!
//! All triggers count deterministic workload events (allocations, kernel
//! launches, PCIe transfers, data-parallel steps) since install; the `sim`
//! arguments are simulated-time stamps supplied by the caller and are used
//! only for logging and trace emission, never for triggering.

use std::cell::RefCell;
use std::fmt;

use crate::plan::{FaultKind, FaultPlan};
use gnn_obs::{tracks, Value};

/// A fault the supervisor must react to, surfaced by [`take_pending`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A device allocation of `bytes` failed (one-shot OOM or a persistent
    /// memory ceiling).
    Oom {
        /// Size of the allocation that failed.
        bytes: u64,
    },
    /// Kernel `name` launched but produced corrupt results.
    Kernel {
        /// Name of the faulted kernel.
        name: String,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Oom { bytes } => write!(f, "device OOM allocating {bytes} B"),
            Fault::Kernel { name } => write!(f, "kernel fault in `{name}`"),
        }
    }
}

/// One fired fault, as recorded in the [`FaultLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Stable kind label (`oom`, `memlimit`, `kernel`, `pcie`, `replica`,
    /// `nan`, `blackout`, `netslow`).
    pub kind: &'static str,
    /// Human-readable description of what fired.
    pub detail: String,
    /// Simulated time at which the fault fired.
    pub sim: f64,
    /// Training epoch current when the fault fired (per [`set_epoch`]).
    pub epoch: u64,
    /// Sweep cell current when the fault fired (per [`set_cell`]).
    pub cell: String,
}

/// Everything an injector fired over its lifetime, in firing order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    /// Fired faults, oldest first.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Number of fired faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One-line-per-event rendering for reports and CSV cells.
    pub fn summary(&self) -> String {
        self.events
            .iter()
            .map(|e| format!("{}:{}", e.kind, e.detail))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// The armed fault state for one thread.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    /// One flag per plan spec; one-shot kinds set theirs on first fire.
    fired: Vec<bool>,
    /// Deterministic workload counters (events seen since install).
    allocs: u64,
    kernels: u64,
    transfers: u64,
    dp_steps: u64,
    /// Sticky fault awaiting [`take_pending`].
    pending: Option<Fault>,
    epoch: u64,
    cell: String,
    log: FaultLog,
}

impl Injector {
    fn new(plan: FaultPlan) -> Self {
        let n = plan.specs.len();
        Injector {
            plan,
            fired: vec![false; n],
            allocs: 0,
            kernels: 0,
            transfers: 0,
            dp_steps: 0,
            pending: None,
            epoch: 0,
            cell: String::new(),
            log: FaultLog::default(),
        }
    }

    fn fire(&mut self, kind: &'static str, detail: String, sim: f64) {
        gnn_obs::instant(
            tracks::FAULTS,
            kind,
            sim,
            vec![
                ("detail".to_owned(), Value::from(detail.as_str())),
                ("epoch".to_owned(), Value::from(self.epoch as f64)),
                ("cell".to_owned(), Value::from(self.cell.as_str())),
            ],
        );
        self.log.events.push(FaultEvent {
            kind,
            detail,
            sim,
            epoch: self.epoch,
            cell: self.cell.clone(),
        });
    }
}

thread_local! {
    static INJECTOR: RefCell<Option<Injector>> = const { RefCell::new(None) };
}

/// Token proving an injector is armed; pass to [`finish`] to disarm.
#[must_use = "dropping the handle leaves the injector armed; pass it to finish()"]
#[derive(Debug)]
pub struct InjectorHandle(());

/// Arms `plan` for the current thread, replacing any previous injector
/// (a replaced injector's log is discarded — a prior cell that panicked
/// mid-run must not leak faults into the next).
pub fn install(plan: FaultPlan) -> InjectorHandle {
    INJECTOR.with(|slot| *slot.borrow_mut() = Some(Injector::new(plan)));
    InjectorHandle(())
}

/// Disarms the current thread's injector and returns its [`FaultLog`].
pub fn finish(handle: InjectorHandle) -> FaultLog {
    let _ = handle;
    INJECTOR
        .with(|slot| slot.borrow_mut().take())
        .map(|inj| inj.log)
        .unwrap_or_default()
}

/// Whether an injector is armed on this thread.
pub fn is_active() -> bool {
    INJECTOR.with(|slot| slot.borrow().is_some())
}

fn with<T>(f: impl FnOnce(&mut Injector) -> T) -> Option<T> {
    INJECTOR.with(|slot| slot.borrow_mut().as_mut().map(f))
}

/// Tells the injector which training epoch is current (for `nan epoch=N`
/// triggers and event attribution). No-op when inactive.
pub fn set_epoch(epoch: u64) {
    with(|inj| inj.epoch = epoch);
}

/// Tells the injector which sweep cell is current (event attribution only).
/// No-op when inactive.
pub fn set_cell(cell: &str) {
    with(|inj| inj.cell = cell.to_owned());
}

/// Fired events from index `n` onward — lets the sweep runner slice the log
/// per cell without disarming the injector.
pub fn events_since(n: usize) -> Vec<FaultEvent> {
    with(|inj| inj.log.events.get(n..).unwrap_or_default().to_vec()).unwrap_or_default()
}

/// Takes the sticky pending fault, if any. Supervisors call this at step
/// boundaries — the injection sites themselves never unwind.
pub fn take_pending() -> Option<Fault> {
    with(|inj| inj.pending.take()).flatten()
}

/// Device-allocation hook: `bytes` requested with `current` bytes already
/// resident, at simulated time `sim`. May set a sticky OOM.
pub fn on_alloc(bytes: u64, current: u64, sim: f64) {
    with(|inj| {
        inj.allocs += 1;
        let at_now = inj.allocs;
        for i in 0..inj.plan.specs.len() {
            match inj.plan.specs[i].kind {
                FaultKind::Oom { at } if !inj.fired[i] && at_now == at => {
                    inj.fired[i] = true;
                    inj.pending = Some(Fault::Oom { bytes });
                    inj.fire("oom", format!("allocation #{at_now} of {bytes} B"), sim);
                }
                // A memory ceiling refires on every allocation that would
                // exceed it: degradation (smaller batches), not retry, is
                // the only way out.
                FaultKind::MemLimit { bytes: limit } if current + bytes > limit => {
                    inj.fired[i] = true;
                    inj.pending = Some(Fault::Oom { bytes });
                    inj.fire(
                        "memlimit",
                        format!("{} + {bytes} B exceeds {limit} B ceiling", current),
                        sim,
                    );
                }
                _ => {}
            }
        }
    });
}

/// Kernel-launch hook. May set a sticky kernel fault.
pub fn on_kernel(name: &str, sim: f64) {
    with(|inj| {
        inj.kernels += 1;
        let at_now = inj.kernels;
        for i in 0..inj.plan.specs.len() {
            if let FaultKind::KernelFault { at } = inj.plan.specs[i].kind {
                if !inj.fired[i] && at_now == at {
                    inj.fired[i] = true;
                    inj.pending = Some(Fault::Kernel {
                        name: name.to_owned(),
                    });
                    inj.fire("kernel", format!("launch #{at_now} `{name}`"), sim);
                }
            }
        }
    });
}

/// PCIe-transfer hook: returns the slowdown multiplier for this transfer
/// (1.0 when no straggler fires or no injector is armed).
pub fn transfer_factor(sim: f64) -> f64 {
    with(|inj| {
        inj.transfers += 1;
        let at_now = inj.transfers;
        let mut factor = 1.0;
        for i in 0..inj.plan.specs.len() {
            if let FaultKind::PcieStraggler { at, factor: f } = inj.plan.specs[i].kind {
                if !inj.fired[i] && at_now == at {
                    inj.fired[i] = true;
                    factor *= f;
                    inj.fire("pcie", format!("transfer #{at_now} ×{f} slowdown"), sim);
                }
            }
        }
        factor
    })
    .unwrap_or(1.0)
}

/// Data-parallel step hook: returns `Some(replica)` if a replica (0-based,
/// `< n_gpus`) fails at this step. The supervisor shrinks the world.
pub fn on_dp_step(n_gpus: usize, sim: f64) -> Option<usize> {
    with(|inj| {
        inj.dp_steps += 1;
        let at_now = inj.dp_steps;
        let mut failed = None;
        for i in 0..inj.plan.specs.len() {
            if let FaultKind::ReplicaFailure { gpu, at } = inj.plan.specs[i].kind {
                if !inj.fired[i] && at_now == at && gpu < n_gpus {
                    inj.fired[i] = true;
                    failed = Some(gpu);
                    inj.fire(
                        "replica",
                        format!("replica {gpu} died at dp step #{at_now}"),
                        sim,
                    );
                }
            }
        }
        failed
    })
    .flatten()
}

/// Fleet shard-blackout hook: returns `Some(until)` if shard `shard` is
/// blacked out at simulated time `sim` (i.e. some `blackout` spec's window
/// `[from, until)` contains `sim`), giving the router the earliest time the
/// shard can come back. Fires the trace/log event once per spec, on the
/// first observation inside its window. `None` when healthy or when no
/// injector is armed.
///
/// Unlike the counter-triggered hooks this is a pure *query* of simulated
/// time — the serve clock is deterministic, so so is the trigger.
pub fn shard_down(shard: usize, sim: f64) -> Option<f64> {
    with(|inj| {
        let mut down_until = None;
        for i in 0..inj.plan.specs.len() {
            if let FaultKind::ShardBlackout {
                shard: s,
                from,
                until,
            } = inj.plan.specs[i].kind
            {
                if s == shard && from <= sim && sim < until {
                    if !inj.fired[i] {
                        inj.fired[i] = true;
                        inj.fire(
                            "blackout",
                            format!("shard {s} dark over [{from}, {until}) s"),
                            sim,
                        );
                    }
                    down_until = Some(down_until.map_or(until, |u: f64| u.max(until)));
                }
            }
        }
        down_until
    })
    .flatten()
}

/// Fleet network-straggler hook: returns the router↔shard slowdown
/// multiplier for traffic to `shard` at simulated time `sim` (1.0 when no
/// `netslow` window is active or no injector is armed). Fires the trace/log
/// event once per spec, on the first observation inside its window.
pub fn shard_net_factor(shard: usize, sim: f64) -> f64 {
    with(|inj| {
        let mut factor = 1.0;
        for i in 0..inj.plan.specs.len() {
            if let FaultKind::NetStraggler {
                shard: s,
                from,
                until,
                factor: f,
            } = inj.plan.specs[i].kind
            {
                if s == shard && from <= sim && sim < until {
                    if !inj.fired[i] {
                        inj.fired[i] = true;
                        inj.fire(
                            "netslow",
                            format!("shard {s} link ×{f} over [{from}, {until}) s"),
                            sim,
                        );
                    }
                    factor *= f;
                }
            }
        }
        factor
    })
    .unwrap_or(1.0)
}

/// Loss-poisoning hook: returns `loss`, or NaN if a `nan epoch=N` spec
/// fires for the current epoch (one-shot).
pub fn poison_loss(loss: f32, sim: f64) -> f32 {
    with(|inj| {
        let mut out = loss;
        for i in 0..inj.plan.specs.len() {
            if let FaultKind::NanLoss { epoch } = inj.plan.specs[i].kind {
                if !inj.fired[i] && inj.epoch == epoch {
                    inj.fired[i] = true;
                    out = f32::NAN;
                    inj.fire("nan", format!("loss poisoned at epoch {epoch}"), sim);
                }
            }
        }
        out
    })
    .unwrap_or(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultPlan};

    fn plan(kinds: &[FaultKind]) -> FaultPlan {
        kinds.iter().fold(FaultPlan::empty(), |p, &k| p.with(k))
    }

    #[test]
    fn hooks_are_noops_without_install() {
        assert!(!is_active());
        on_alloc(100, 0, 0.0);
        on_kernel("gemm", 0.0);
        assert_eq!(transfer_factor(0.0), 1.0);
        assert_eq!(on_dp_step(4, 0.0), None);
        assert_eq!(poison_loss(0.5, 0.0), 0.5);
        assert_eq!(take_pending(), None);
        assert!(events_since(0).is_empty());
    }

    #[test]
    fn oom_is_one_shot_and_sticky() {
        let h = install(plan(&[FaultKind::Oom { at: 2 }]));
        on_alloc(10, 0, 0.0);
        assert_eq!(take_pending(), None);
        on_alloc(20, 10, 1.0);
        assert_eq!(take_pending(), Some(Fault::Oom { bytes: 20 }));
        assert_eq!(take_pending(), None, "take_pending clears the fault");
        on_alloc(20, 10, 2.0); // same index never refires
        assert_eq!(take_pending(), None);
        let log = finish(h);
        assert_eq!(log.len(), 1);
        assert_eq!(log.events[0].kind, "oom");
        assert!(!is_active());
    }

    #[test]
    fn memlimit_refires_until_pressure_drops() {
        let h = install(plan(&[FaultKind::MemLimit { bytes: 100 }]));
        on_alloc(60, 50, 0.0);
        assert!(take_pending().is_some());
        on_alloc(60, 50, 1.0);
        assert!(take_pending().is_some(), "ceiling refires");
        on_alloc(40, 50, 2.0);
        assert_eq!(take_pending(), None, "under the ceiling passes");
        assert_eq!(finish(h).len(), 2);
    }

    #[test]
    fn kernel_fault_names_the_kernel() {
        let h = install(plan(&[FaultKind::KernelFault { at: 1 }]));
        on_kernel("spmm", 0.5);
        assert_eq!(
            take_pending(),
            Some(Fault::Kernel {
                name: "spmm".into()
            })
        );
        finish(h);
    }

    #[test]
    fn straggler_and_replica_fire_at_their_indices() {
        let h = install(plan(&[
            FaultKind::PcieStraggler { at: 2, factor: 4.0 },
            FaultKind::ReplicaFailure { gpu: 1, at: 2 },
        ]));
        assert_eq!(transfer_factor(0.0), 1.0);
        assert_eq!(transfer_factor(1.0), 4.0);
        assert_eq!(transfer_factor(2.0), 1.0);
        assert_eq!(on_dp_step(4, 3.0), None);
        assert_eq!(on_dp_step(4, 4.0), Some(1));
        assert_eq!(on_dp_step(4, 5.0), None);
        assert_eq!(finish(h).len(), 2);
    }

    #[test]
    fn replica_outside_world_never_fires() {
        let h = install(plan(&[FaultKind::ReplicaFailure { gpu: 7, at: 1 }]));
        assert_eq!(on_dp_step(2, 0.0), None);
        assert!(finish(h).is_empty());
    }

    #[test]
    fn nan_poisons_once_at_its_epoch() {
        let h = install(plan(&[FaultKind::NanLoss { epoch: 1 }]));
        assert_eq!(poison_loss(0.7, 0.0), 0.7, "epoch 0 untouched");
        set_epoch(1);
        assert!(poison_loss(0.7, 1.0).is_nan());
        assert_eq!(poison_loss(0.6, 2.0), 0.6, "one-shot");
        finish(h);
    }

    #[test]
    fn events_since_slices_per_cell() {
        let h = install(plan(&[
            FaultKind::Oom { at: 1 },
            FaultKind::KernelFault { at: 1 },
        ]));
        set_cell("cell-a");
        on_alloc(8, 0, 0.0);
        let _ = take_pending();
        let mark = events_since(0).len();
        set_cell("cell-b");
        on_kernel("gemm", 1.0);
        let _ = take_pending();
        let tail = events_since(mark);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].cell, "cell-b");
        assert_eq!(tail[0].kind, "kernel");
        let log = finish(h);
        assert_eq!(log.events[0].cell, "cell-a");
        assert_eq!(log.summary().matches(';').count(), 1);
    }

    #[test]
    fn blackout_windows_answer_by_simulated_time() {
        let h = install(plan(&[FaultKind::ShardBlackout {
            shard: 1,
            from: 0.5,
            until: 1.5,
        }]));
        assert_eq!(shard_down(1, 0.0), None, "before the window");
        assert_eq!(shard_down(0, 1.0), None, "other shards unaffected");
        assert_eq!(shard_down(1, 0.5), Some(1.5), "window start is inclusive");
        assert_eq!(
            shard_down(1, 1.0),
            Some(1.5),
            "repeat queries keep answering"
        );
        assert_eq!(shard_down(1, 1.5), None, "window end is exclusive");
        let log = finish(h);
        assert_eq!(log.len(), 1, "event fires once per spec: {log:?}");
        assert_eq!(log.events[0].kind, "blackout");
    }

    #[test]
    fn net_straggler_scales_only_inside_its_window() {
        let h = install(plan(&[FaultKind::NetStraggler {
            shard: 0,
            from: 1.0,
            until: 2.0,
            factor: 4.0,
        }]));
        assert_eq!(shard_net_factor(0, 0.5), 1.0);
        assert_eq!(shard_net_factor(1, 1.5), 1.0, "other shards unaffected");
        assert_eq!(shard_net_factor(0, 1.0), 4.0);
        assert_eq!(shard_net_factor(0, 1.9), 4.0, "still active, logged once");
        assert_eq!(shard_net_factor(0, 2.0), 1.0, "window end is exclusive");
        let log = finish(h);
        assert_eq!(log.len(), 1, "{log:?}");
        assert_eq!(log.events[0].kind, "netslow");
    }

    #[test]
    fn fleet_hooks_are_noops_without_install() {
        assert!(!is_active());
        assert_eq!(shard_down(0, 1.0), None);
        assert_eq!(shard_net_factor(0, 1.0), 1.0);
    }

    #[test]
    fn install_replaces_previous_injector() {
        let _stale = install(plan(&[FaultKind::Oom { at: 1 }]));
        on_alloc(8, 0, 0.0);
        let h = install(plan(&[]));
        assert_eq!(take_pending(), None, "stale pending discarded");
        assert!(finish(h).is_empty(), "stale log discarded");
    }
}
