//! Property-based tests of the PyG-like conv layers on random graphs:
//! shape correctness, finiteness, determinism, and gradient flow for every
//! layer under arbitrary topology (including isolated nodes, self-loops,
//! and multi-edges).

use gnn_graph::Graph;
use gnn_tensor::{NdArray, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rustyg::{Batch, GatConv, GatedGcnConv, GcnConv, GinConv, MoNetConv, SageConv};

fn random_batch(n: usize, edges: Vec<(u32, u32)>, feats: Vec<f32>, dim: usize) -> Batch {
    let g = Graph::from_edges(n, &edges);
    Batch::from_parts(&g, NdArray::from_vec(n, dim, feats), vec![0; n], 1, vec![0])
}

fn batch_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<f32>)> {
    (3usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..25);
        let feats = proptest::collection::vec(-2.0f32..2.0, n * 4);
        (Just(n), edges, feats)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_conv_is_finite_shaped_and_differentiable(
        (n, edges, feats) in batch_strategy(),
        seed in 0u64..100,
    ) {
        let b = random_batch(n, edges, feats, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let gcn = GcnConv::new(4, 5, &mut rng);
        let sage = SageConv::new(4, 5, &mut rng);
        let gin = GinConv::new(4, 5, &mut rng);
        let gat = GatConv::new(4, 2, 2, &mut rng);
        let monet = MoNetConv::new(4, 5, 2, 2, &mut rng);
        let gated = GatedGcnConv::new(4, 5, &mut rng);

        type Case<'a> = (&'a str, Box<dyn Fn(&Batch, &Tensor) -> Tensor + 'a>, Vec<Tensor>, usize);
        let cases: Vec<Case> = vec![
            ("gcn", Box::new(|b, x| gcn.forward(b, x, true)), gcn.params(), 5),
            ("sage", Box::new(|b, x| sage.forward(b, x, true)), sage.params(), 5),
            ("gin", Box::new(|b, x| gin.forward(b, x, true)), gin.params(), 5),
            ("gat", Box::new(|b, x| gat.forward(b, x, true)), gat.params(), 4),
            ("monet", Box::new(|b, x| monet.forward(b, x, true)), monet.params(), 5),
            ("gated", Box::new(|b, x| gated.forward(b, x, true)), gated.params(), 5),
        ];
        for (name, fwd, params, expect_cols) in &cases {
            let out = fwd(&b, &b.x);
            prop_assert_eq!(out.shape().0, n, "{} rows", name);
            prop_assert_eq!(out.shape().1, *expect_cols, "{} cols", name);
            prop_assert!(!out.data().has_non_finite(), "{} produced NaN/inf", name);
            let again = fwd(&b, &b.x);
            let (o, a) = (out.data().clone(), again.data().clone());
            prop_assert_eq!(o.data(), a.data(), "{} must be deterministic", name);
            out.sum_all().backward();
            prop_assert!(params[0].grad().is_some(), "{} first param missing grad", name);
            for p in params {
                p.zero_grad();
            }
        }
    }

    /// Message passing respects graph locality: perturbing node 0's feature
    /// must not change the output of nodes more than one hop away for a
    /// single conv layer.
    #[test]
    fn one_conv_layer_is_one_hop_local(seed in 0u64..200) {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3)];
        let g = Graph::from_edges(4, &edges);
        let base_feats = vec![0.5f32; 16];
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = GcnConv::new(4, 3, &mut rng);

        let b1 = Batch::from_parts(
            &g, NdArray::from_vec(4, 4, base_feats.clone()), vec![0; 4], 1, vec![0],
        );
        let out1 = conv.forward(&b1, &b1.x, true);

        let mut changed = base_feats;
        changed[0] = -3.0;
        let b2 = Batch::from_parts(&g, NdArray::from_vec(4, 4, changed), vec![0; 4], 1, vec![0]);
        let out2 = conv.forward(&b2, &b2.x, true);

        for node in [2usize, 3] {
            for c in 0..3 {
                prop_assert!(
                    (out1.data().at(node, c) - out2.data().at(node, c)).abs() < 1e-6,
                    "node {} changed beyond one hop", node
                );
            }
        }
        let moved: f32 = (0..3)
            .map(|c| (out1.data().at(1, c) - out2.data().at(1, c)).abs())
            .sum();
        prop_assert!(moved > 1e-6, "perturbation failed to propagate one hop");
    }
}
