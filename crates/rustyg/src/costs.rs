//! Host-side cost constants of the PyG-like stack.
//!
//! These model the Python/C++ driver work that the simulated device cannot
//! see: `DataLoader` collation and the per-layer interpreter overhead of
//! dispatching a conv layer's ops from Python. Values are calibrated once
//! against published PyTorch/PyG profiling figures (Python-level per-sample
//! collate cost ~85 µs, per-layer dispatch ~60 µs) and then left alone; the
//! study's comparisons come from *structural* differences between the two
//! frameworks, with the DGL-like stack paying documented multipliers on the
//! same quantities (see `rgl::costs`).

/// Fixed Python overhead per mini-batch (`DataLoader` iteration machinery).
pub const BATCH_OVERHEAD: f64 = 120e-6;

/// Per-graph collate cost: building the `Data` object, appending index
/// offsets (Python-level loop).
pub const PER_GRAPH: f64 = 85e-6;

/// Per-node collate cost (tensor concatenation, torch-native).
pub const PER_NODE: f64 = 25e-9;

/// Per-edge collate cost (edge-index offsetting, torch-native).
pub const PER_EDGE: f64 = 35e-9;

/// Host memory bandwidth for feature concatenation (bytes/s, torch-native
/// `torch.cat`).
pub const HOST_COPY_BW: f64 = 8.0e9;

/// Python dispatch overhead at the start of each conv-layer forward.
pub const LAYER_OVERHEAD: f64 = 230e-6;

/// Python dispatch overhead of a pooling/readout call.
pub const POOL_OVERHEAD: f64 = 40e-6;

/// Collation cost of a batch with the given shape, in seconds.
pub fn collate_time(
    num_graphs: usize,
    num_nodes: usize,
    num_edges: usize,
    feature_bytes: u64,
) -> f64 {
    BATCH_OVERHEAD
        + PER_GRAPH * num_graphs as f64
        + PER_NODE * num_nodes as f64
        + PER_EDGE * num_edges as f64
        + feature_bytes as f64 / HOST_COPY_BW
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collate_scales_with_graph_count() {
        let small = collate_time(8, 300, 600, 20_000);
        let big = collate_time(128, 4800, 9600, 320_000);
        assert!(big > 10.0 * small);
    }

    #[test]
    fn per_graph_cost_dominates_small_graphs() {
        // ENZYMES-like: 128 graphs of ~33 nodes. The Python per-graph loop,
        // not the tensor copies, dominates — the paper's data-loading story.
        let t = collate_time(128, 4224, 15_906, 4224 * 18 * 4);
        let graphs_only = PER_GRAPH * 128.0;
        assert!(graphs_only / t > 0.5, "per-graph share {}", graphs_only / t);
    }
}
