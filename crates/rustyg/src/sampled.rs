//! Neighbor-sampled mini-batch loading, PyG style.
//!
//! The sampled path replaces the full-graph H2D copy with a per-batch
//! pipeline: sample the union block on the host, gather resident feature
//! rows from the device cache, transfer only the missing rows, then ship
//! the edge index. PyG keeps its flat-COO cheapness: the structure
//! transfer is `8 × edges` bytes and collation pays the same low
//! per-node/per-edge constants as [`crate::loader`] — the framework tax
//! shows up in how much *less* rgl's heterograph path likes this loop.

use std::cell::RefCell;
use std::rc::Rc;

use gnn_device::{record, FeatureCache, FetchStats, Kernel};
use gnn_graph::Graph;
use gnn_sample::{
    sample_block, RmatGraph, SampleConfigError, SampleSpec, SampledBlock, SamplerKind,
};
use gnn_tensor::NdArray;

use crate::batch::Batch;
use crate::costs;

/// Loads sampled union blocks of an [`RmatGraph`] as PyG-style batches.
#[derive(Debug)]
pub struct SampledLoader {
    graph: Rc<RmatGraph>,
    spec: SampleSpec,
    kind: SamplerKind,
    cache: RefCell<FeatureCache>,
}

impl SampledLoader {
    /// Builds a loader for `spec` over an already-generated graph.
    ///
    /// # Errors
    ///
    /// Returns the spec's [`SampleConfigError`] if it is degenerate.
    pub fn new(
        graph: Rc<RmatGraph>,
        spec: &SampleSpec,
        kind: SamplerKind,
    ) -> Result<Self, SampleConfigError> {
        spec.validate()?;
        let cache = FeatureCache::new(
            spec.cache_rows,
            spec.row_bytes(),
            graph.num_nodes(),
            spec.partitions,
            spec.home_partition,
        );
        Ok(SampledLoader {
            graph,
            spec: spec.clone(),
            kind,
            cache: RefCell::new(cache),
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &RmatGraph {
        &self.graph
    }

    /// The loader's spec.
    pub fn spec(&self) -> &SampleSpec {
        &self.spec
    }

    /// The sampler kind.
    pub fn kind(&self) -> SamplerKind {
        self.kind
    }

    /// Cumulative cache counters.
    pub fn cache_totals(&self) -> FetchStats {
        self.cache.borrow().totals()
    }

    /// Lifetime cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.borrow().hit_rate()
    }

    /// Samples and collates the block for `seeds`, paying the host
    /// sampling/collate cost, the cache's gather/transfer split, and the
    /// flat-COO structure transfer.
    ///
    /// # Errors
    ///
    /// Typed error for out-of-range seeds or an empty seed list.
    pub fn try_load_block(&self, seeds: &[u32], salt: u64) -> Result<Batch, SampleConfigError> {
        let block = sample_block(&self.graph, seeds, &self.spec.fanouts, self.kind, salt)?;
        Ok(self.collate(&block))
    }

    fn collate(&self, block: &SampledBlock) -> Batch {
        let n = block.num_nodes();
        let e = block.num_edges();
        let f = self.graph.config().feature_dim;

        let mut features = NdArray::zeros(n, f);
        for (i, &v) in block.nodes.iter().enumerate() {
            self.graph.feature_into(v, features.row_mut(i));
        }
        let labels: Vec<u32> = block.nodes.iter().map(|&v| self.graph.label(v)).collect();

        // Feature movement goes through the cache: hits stay resident,
        // misses are priced as (possibly remote) transfers.
        let stats = self.cache.borrow_mut().fetch(&block.nodes);

        // Host pays sampling + collation over the union; the copy term
        // covers only the rows that actually move.
        gnn_device::host(costs::collate_time(1, n, e, stats.bytes_moved));
        // Flat COO edge index over PCIe.
        record(Kernel::transfer("h2d_sampled_batch", 8 * e as u64));

        let union = Graph::new(n, block.src.clone(), block.dst.clone());
        Batch::from_parts(&union, features, vec![0; n], 1, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_device::{session, CostModel, Session};

    fn loader() -> SampledLoader {
        let spec = SampleSpec::get("rmat-4k").unwrap();
        let graph = Rc::new(RmatGraph::generate(spec.rmat).unwrap());
        SampledLoader::new(graph, &spec, SamplerKind::Neighbor).unwrap()
    }

    #[test]
    fn sampled_batch_has_seeds_first_and_pays_transfer() {
        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let l = loader();
        let seeds = [1u32, 2, 3];
        let b = l.try_load_block(&seeds, 0).unwrap();
        assert!(b.num_nodes >= 3);
        assert_eq!(b.num_graphs, 1);
        assert_eq!(b.labels.len(), b.num_nodes);
        let report = session::finish(handle);
        assert!(report.transfer_time() > 0.0, "misses + edge index move");
    }

    #[test]
    fn degenerate_spec_is_a_typed_error() {
        let mut spec = SampleSpec::get("rmat-4k").unwrap();
        let graph = Rc::new(RmatGraph::generate(spec.rmat).unwrap());
        spec.fanouts = vec![];
        assert_eq!(
            SampledLoader::new(graph, &spec, SamplerKind::Neighbor).err(),
            Some(SampleConfigError::NoFanouts)
        );
    }

    #[test]
    fn repeated_blocks_hit_the_cache() {
        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let l = loader();
        l.try_load_block(&[7, 8], 0).unwrap();
        let before = l.cache_totals();
        l.try_load_block(&[7, 8], 0).unwrap();
        let after = l.cache_totals();
        assert!(after.hits > before.hits, "second identical block re-hits");
        session::finish(handle);
    }

    #[test]
    fn generation_determinism_carries_into_batches() {
        let make = || {
            let handle = session::install(Session::new(CostModel::rtx2080ti()));
            let l = loader();
            let b = l.try_load_block(&[5, 6, 7], 3).unwrap();
            let row0 = b.x.data().row(0).to_vec();
            session::finish(handle);
            (b.num_nodes, b.num_edges(), b.labels.clone(), row0)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn million_node_config_validates_without_generation() {
        // The headline spec is checked for degeneracy without paying graph
        // generation (that happens once, in the bench binary).
        let spec = SampleSpec::get("rmat-1m").unwrap();
        spec.validate().unwrap();
        assert_eq!(spec.rmat.num_nodes(), 1 << 20);
    }
}
