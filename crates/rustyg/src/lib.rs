//! # rustyg — the PyG-like framework
//!
//! One of the two GNN frameworks under study, architected after PyTorch
//! Geometric:
//!
//! - **Message passing as gather → edge-compute → scatter** over flat COO
//!   index arrays ([`Batch::src`]/[`Batch::dst`]), exactly PyG's
//!   `MessagePassing` lowering onto `index_select`/`scatter_add`.
//! - **Zero-overhead mini-batching**: a batch of graphs is collated by plain
//!   concatenation with offset edge indices — the "advanced mini-batching
//!   strategy in which there is no computational or memory overhead" the
//!   paper credits to PyG (Fey & Lenssen).
//! - **Scatter-based pooling**: readout is `scatter_add` + count division,
//!   PyG's `global_mean_pool` on top of the torch scatter API.
//!
//! Six conv layers mirror `torch_geometric.nn`: [`GcnConv`], [`SageConv`],
//! [`GinConv`], [`GatConv`], [`MoNetConv`], and [`GatedGcnConv`] (the PyG
//! GatedGCN keeps no explicit edge-feature state — the paper's Section IV-A
//! observation 3).
//!
//! # Example
//!
//! ```
//! use gnn_datasets::TudSpec;
//! use rand::SeedableRng;
//!
//! let ds = TudSpec::enzymes().scaled(0.05).generate(0);
//! let loader = rustyg::DataLoader::new(&ds);
//! let batch = loader.load(&[0, 1, 2]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let conv = rustyg::GcnConv::new(18, 32, &mut rng);
//! let h = conv.forward(&batch, &batch.x, true);
//! assert_eq!(h.shape().1, 32);
//! ```

pub mod batch;
pub mod cached;
pub mod conv;
pub mod costs;
pub mod loader;
pub mod pool;
pub mod sampled;

pub use batch::Batch;
pub use cached::CachedLoader;
pub use conv::{GatConv, GatedGcnConv, GcnConv, GinConv, MoNetConv, SageConv};
pub use loader::DataLoader;
pub use pool::{global_max_pool, global_mean_pool, global_sum_pool};
