//! GAT convolution (Veličković et al.), multi-head attention.

use gnn_tensor::nn::{init, Linear};
use gnn_tensor::Tensor;
use rand::Rng;

use crate::batch::Batch;
use crate::costs;

/// Multi-head graph attention. Per head `h` with projected features
/// `z = W x`:
///
/// `e_ij = LeakyReLU(a_l · z_i + a_r · z_j)`,
/// `α_ij = softmax_j(e_ij)` over `i`'s in-neighbourhood (plus the self
/// edge), `h_i' = Σ_j α_ij z_j`, heads concatenated.
///
/// PyG lowering: GEMM, two per-head projections, gather/gather/add/
/// leaky-relu on edges, segment softmax keyed by destination, per-head
/// weighting, scatter_add.
#[derive(Debug)]
pub struct GatConv {
    lin: Linear,
    attn_l: Tensor,
    attn_r: Tensor,
    heads: usize,
    out_per_head: usize,
}

impl GatConv {
    /// Creates the layer; output dimension is `out_per_head * heads`.
    ///
    /// # Panics
    ///
    /// Panics if `heads == 0`.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_per_head: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(heads > 0, "GAT needs at least one head");
        let width = out_per_head * heads;
        let limit = (6.0 / (width + heads) as f32).sqrt();
        GatConv {
            lin: Linear::new_no_bias(in_dim, width, rng),
            attn_l: Tensor::param(init::uniform(1, width, limit, rng)),
            attn_r: Tensor::param(init::uniform(1, width, limit, rng)),
            heads,
            out_per_head,
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &Batch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let z = self.lin.forward(x);
        // Per-node attention halves.
        let al = z.head_dot(&self.attn_l, self.heads); // [N, H]
        let ar = z.head_dot(&self.attn_r, self.heads); // [N, H]
                                                       // Per-edge scores e = leaky(al[dst] + ar[src]) — dst is the
                                                       // attending node i, src the attended j.
        gnn_device::traced("rustyg", "gat.gather_scatter", || {
            let scores = al
                .gather_rows(&batch.dst)
                .add(&ar.gather_rows(&batch.src))
                .leaky_relu(0.2);
            let alpha = scores.segment_softmax(&batch.dst, batch.num_nodes); // [E, H]
            let msg = z.gather_rows(&batch.src).mul_per_head(&alpha, self.heads);
            msg.scatter_add_rows(&batch.dst, batch.num_nodes)
        })
    }

    /// Output feature dimension (`out_per_head * heads`).
    pub fn out_dim(&self) -> usize {
        self.out_per_head * self.heads
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.lin.params();
        p.push(self.attn_l.clone());
        p.push(self.attn_r.clone());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1), (1, 0)]);
        Batch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0, 0, 0],
            1,
            vec![0],
        )
    }

    #[test]
    fn output_width_is_heads_times_dim() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GatConv::new(2, 4, 8, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 32));
        assert_eq!(conv.out_dim(), 32);
    }

    #[test]
    fn attention_is_convex_combination() {
        // Node 1 attends over {0, 2}; its output per head must lie inside
        // the convex hull of the z rows of 0 and 2 (coordinatewise between
        // min and max).
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GatConv::new(2, 3, 2, &mut rng);
        let z = conv.lin.forward(&b.x);
        let out = conv.forward(&b, &b.x, true);
        let zd = z.data();
        let od = out.data();
        for c in 0..6 {
            let lo = zd.at(0, c).min(zd.at(2, c)) - 1e-5;
            let hi = zd.at(0, c).max(zd.at(2, c)) + 1e-5;
            assert!(
                (lo..=hi).contains(&od.at(1, c)),
                "col {c}: {} outside [{lo}, {hi}]",
                od.at(1, c)
            );
        }
    }

    #[test]
    fn attention_params_receive_gradients() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GatConv::new(2, 3, 4, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        assert!(conv.attn_l.grad().is_some());
        assert!(conv.attn_r.grad().is_some());
    }

    #[test]
    fn isolated_node_output_is_zero() {
        // A node with no in-edges aggregates nothing (PyG GATConv without
        // self-loops); the stack's residual path carries its identity.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let b = Batch::from_parts(
            &g,
            NdArray::from_vec(2, 2, vec![1., 2., 3., 4.]),
            vec![0, 0],
            1,
            vec![0],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let conv = GatConv::new(2, 2, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert!(out.data().row(0).iter().all(|&v| v == 0.0));
        assert!(out.data().row(1).iter().any(|&v| v != 0.0));
    }
}
