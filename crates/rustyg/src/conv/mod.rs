//! The six conv layers of the study, PyG style.
//!
//! Every layer lowers message passing onto the gather/scatter primitives
//! (`index_select` + `scatter_add`), pays the Python dispatch overhead
//! [`crate::costs::LAYER_OVERHEAD`] once per forward, and exposes
//! `forward(&Batch, &Tensor, training) -> Tensor` plus `params()`.

mod gat;
mod gated;
mod gcn;
mod gin;
mod monet;
mod sage;

pub use gat::GatConv;
pub use gated::GatedGcnConv;
pub use gcn::GcnConv;
pub use gin::GinConv;
pub use monet::MoNetConv;
pub use sage::SageConv;
