//! GatedGCN convolution (Bresson & Laurent) — PyG-style, no persistent edge
//! features.

// Kernel-style loops co-index several slices; index form is clearer here.
#![allow(clippy::needless_range_loop)]

use gnn_tensor::nn::Linear;
use gnn_tensor::Tensor;
use rand::Rng;

use crate::batch::Batch;
use crate::costs;

/// Residual gated graph convolution:
///
/// `h_i' = A h_i + Σ_j η_ij ⊙ (B h_j)`, with edge gates
/// `η_ij = σ(e_ij) / (Σ_{j'} σ(e_ij') + ε)` and gate logits
/// `e_ij = D h_i + E h_j`.
///
/// This is the PyG construction the paper contrasts with DGL's: the gate
/// logits are recomputed on the fly from node endpoints each layer — **no
/// explicit edge-feature tensor is stored or updated**, which is exactly why
/// the paper finds GatedGCN under PyG roughly 2× faster and far leaner in
/// memory than under DGL (Sections IV-A obs. 3 and IV-D obs. 2).
#[derive(Debug)]
pub struct GatedGcnConv {
    a: Linear,
    b: Linear,
    d: Linear,
    e: Linear,
}

impl GatedGcnConv {
    /// Creates the layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GatedGcnConv {
            a: Linear::new(in_dim, out_dim, rng),
            b: Linear::new(in_dim, out_dim, rng),
            d: Linear::new(in_dim, out_dim, rng),
            e: Linear::new(in_dim, out_dim, rng),
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &Batch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let ah = self.a.forward(x);
        let bh = self.b.forward(x);
        let dh = self.d.forward(x);
        let eh = self.e.forward(x);
        // Gate logits per edge, from endpoints only.
        let agg = gnn_device::traced("rustyg", "gated.gather_scatter", || {
            let gates = dh
                .gather_rows(&batch.dst)
                .add(&eh.gather_rows(&batch.src))
                .sigmoid(); // [E, F]
            let denom = gates
                .scatter_add_rows(&batch.dst, batch.num_nodes)
                .add_scalar(1e-6); // [N, F]
            let msg = bh.gather_rows(&batch.src).mul(&gates);
            let num = msg.scatter_add_rows(&batch.dst, batch.num_nodes);
            num.div(&denom)
        });
        ah.add(&agg)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.a.out_dim()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        [&self.a, &self.b, &self.d, &self.e]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        Batch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0, 0, 0],
            1,
            vec![0],
        )
    }

    #[test]
    fn shape_and_params() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GatedGcnConv::new(2, 4, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 4));
        assert_eq!(conv.params().len(), 8);
    }

    #[test]
    fn isolated_node_falls_back_to_self_path() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let b = Batch::from_parts(
            &g,
            NdArray::from_vec(2, 2, vec![1., 2., 3., 4.]),
            vec![0, 0],
            1,
            vec![0],
        );
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GatedGcnConv::new(2, 3, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        // Node 0 has no in-edges: out = A h_0 exactly (gate sum ~ 0).
        let ah = conv.a.forward(&b.x);
        for c in 0..3 {
            assert!((out.data().at(0, c) - ah.data().at(0, c)).abs() < 1e-4);
        }
    }

    #[test]
    fn all_four_linears_get_gradients() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GatedGcnConv::new(2, 4, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        for (i, p) in conv.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }

    #[test]
    fn gates_normalize_messages() {
        // With a single in-edge, eta = sigma/(sigma + eps) ~ 1, so the
        // neighbour term approaches B h_j.
        let g = Graph::from_edges(2, &[(1, 0)]);
        let b = Batch::from_parts(
            &g,
            NdArray::from_vec(2, 2, vec![0.5, -0.2, 1.0, 2.0]),
            vec![0, 0],
            1,
            vec![0],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let conv = GatedGcnConv::new(2, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        let expect = conv.a.forward(&b.x).data().row(0).to_vec();
        let bh = conv.b.forward(&b.x);
        for c in 0..2 {
            let full = expect[c] + bh.data().at(1, c);
            assert!(
                (out.data().at(0, c) - full).abs() < 1e-3,
                "col {c}: {} vs {full}",
                out.data().at(0, c)
            );
        }
    }
}
