//! GraphSAGE convolution (Hamilton et al.), max/mean-pool aggregator family.

use gnn_tensor::nn::Linear;
use gnn_tensor::Tensor;
use rand::Rng;

use crate::batch::Batch;
use crate::costs;

/// GraphSAGE with the mean-pool aggregator of the study's Table II/III
/// (`sage_aggregator: meanpool`):
///
/// `a_i = mean_{j in N(i)} ReLU(W_pool h_j)`,
/// `h_i' = W Concat(h_i, a_i)`, then L2-normalized per the paper
/// ("embeddings vectors are projected onto the unit ball").
#[derive(Debug)]
pub struct SageConv {
    pool: Linear,
    lin: Linear,
}

impl SageConv {
    /// Creates the layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        SageConv {
            pool: Linear::new(in_dim, in_dim, rng),
            lin: Linear::new(2 * in_dim, out_dim, rng),
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &Batch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let pooled = self.pool.forward(x).relu();
        // Mean over in-neighbours: scatter sum, then divide by the
        // renormalized degree (counts self once; the isolated-node case
        // stays finite).
        let agg = gnn_device::traced("rustyg", "sage.gather_scatter", || {
            pooled
                .gather_rows(&batch.src)
                .scatter_add_rows(&batch.dst, batch.num_nodes)
                .mul_col(&batch.inv_deg)
        });
        let h = self.lin.forward(&x.concat_cols(&agg));
        h.l2_normalize_rows(1e-12)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.pool.params();
        p.extend(self.lin.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 0)]);
        Batch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0, 0, 0],
            1,
            vec![0],
        )
    }

    #[test]
    fn output_rows_are_unit_norm() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = SageConv::new(2, 4, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        for r in 0..3 {
            let n: f32 = out.data().row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {r} norm {n}");
        }
    }

    #[test]
    fn param_count_covers_pool_and_update() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = SageConv::new(2, 4, &mut rng);
        assert_eq!(conv.params().len(), 4);
        assert_eq!(conv.out_dim(), 4);
    }

    #[test]
    fn gradients_flow_through_both_linears() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = SageConv::new(2, 4, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        for (i, p) in conv.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }
}
