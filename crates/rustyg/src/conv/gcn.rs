//! GCN convolution (Kipf & Welling), PyG lowering.

use gnn_tensor::nn::Linear;
use gnn_tensor::Tensor;
use rand::Rng;

use crate::batch::Batch;
use crate::costs;

/// Graph convolution with degree-renormalized mean aggregation:
/// `h_i' = (1 / deg_i) * (W h_i + sum_{j in N(i)} W h_j)`, the paper's
/// Eq. (1) with the self-loop renormalization trick (`deg` counts the node
/// itself).
///
/// PyG lowering: one GEMM, then gather → scatter_add over the edge index,
/// then a per-row degree scale.
#[derive(Debug)]
pub struct GcnConv {
    lin: Linear,
}

impl GcnConv {
    /// Creates the layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GcnConv {
            lin: Linear::new(in_dim, out_dim, rng),
        }
    }

    /// Applies the layer (linear activation; the model applies the
    /// nonlinearity).
    pub fn forward(&self, batch: &Batch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let h = self.lin.forward(x);
        let agg = gnn_device::traced("rustyg", "gcn.gather_scatter", || {
            let msg = h.gather_rows(&batch.src);
            msg.scatter_add_rows(&batch.dst, batch.num_nodes)
        });
        // Self-loop contribution + mean normalization.
        agg.add(&h).mul_col(&batch.inv_deg)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        self.lin.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        // 0 <-> 1, isolated 2
        let g = Graph::from_edges(3, &[(0, 1), (1, 0)]);
        Batch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0, 0, 0],
            1,
            vec![0],
        )
    }

    #[test]
    fn isolated_node_keeps_self_feature() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GcnConv::new(2, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        // Node 2 has deg 1 (self only): out row = W x_2 exactly.
        let h =
            b.x.matmul(&conv.lin.params()[0])
                .add_bias(&conv.lin.params()[1]);
        let expect = h.data().row(2).to_vec();
        assert_eq!(out.data().row(2), &expect[..]);
    }

    #[test]
    fn neighbors_average() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GcnConv::new(2, 3, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        let h =
            b.x.matmul(&conv.lin.params()[0])
                .add_bias(&conv.lin.params()[1]);
        // Node 0: (h0 + h1) / 2.
        let hd = h.data();
        for c in 0..3 {
            let expect = (hd.at(0, c) + hd.at(1, c)) / 2.0;
            assert!((out.data().at(0, c) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_reach_weights() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GcnConv::new(2, 2, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        for p in conv.params() {
            assert!(p.grad().is_some(), "parameter missing gradient");
        }
    }
}
