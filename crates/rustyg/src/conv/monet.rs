//! MoNet / GMM convolution (Monti et al.).

use gnn_tensor::nn::{init, Linear};
use gnn_tensor::{NdArray, Tensor};
use rand::Rng;

use crate::batch::Batch;
use crate::costs;

/// Gaussian Mixture Model convolution with degree pseudo-coordinates
/// (the benchmarking-gnns construction the study follows):
///
/// raw pseudo-coordinate `u_ij = (deg_i^-1/2, deg_j^-1/2)`, projected by a
/// learnable linear + tanh; kernel weights
/// `w_k(u) = exp(-1/2 · Σ_d (u_d - μ_kd)^2 σ_kd^-2)`;
/// `h_i' = Σ_k Σ_j w_k(u_ij) (W_k h_j)_i` aggregated by sum.
#[derive(Debug)]
pub struct MoNetConv {
    pseudo_proj: Linear,
    mu: Vec<Tensor>,        // K x [1, P]
    inv_sigma: Vec<Tensor>, // K x [1, P]
    fc: Vec<Linear>,        // K x (in -> out)
    pseudo_dim: usize,
}

impl MoNetConv {
    /// Creates the layer with `kernels` Gaussians over a `pseudo_dim`-d
    /// pseudo-coordinate space (the study uses 2 and 2).
    ///
    /// # Panics
    ///
    /// Panics if `kernels == 0` or `pseudo_dim == 0`.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        kernels: usize,
        pseudo_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            kernels > 0 && pseudo_dim > 0,
            "MoNet needs kernels and pseudo dims"
        );
        MoNetConv {
            pseudo_proj: Linear::new(2, pseudo_dim, rng),
            mu: (0..kernels)
                .map(|_| Tensor::param(init::uniform(1, pseudo_dim, 1.0, rng)))
                .collect(),
            inv_sigma: (0..kernels)
                .map(|_| Tensor::param(NdArray::full(1, pseudo_dim, 1.0)))
                .collect(),
            fc: (0..kernels)
                .map(|_| Linear::new_no_bias(in_dim, out_dim, rng))
                .collect(),
            pseudo_dim,
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &Batch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        // Raw per-edge pseudo-coordinates from endpoint degrees.
        let u_dst = batch.inv_sqrt_deg.gather_rows(&batch.dst);
        let u_src = batch.inv_sqrt_deg.gather_rows(&batch.src);
        let pseudo = self
            .pseudo_proj
            .forward(&u_dst.concat_cols(&u_src))
            .tanh_act(); // [E, P]

        let mut out: Option<Tensor> = None;
        for k in 0..self.fc.len() {
            // Gaussian weight w_k(u) as an [E, 1] column.
            let diff = pseudo.add_bias(&self.mu[k].scale(-1.0));
            let scaled = diff
                .mul(&diff)
                .mul_row(&self.inv_sigma[k].mul(&self.inv_sigma[k]));
            let w = scaled.sum_cols().scale(-0.5).exp(); // [E, 1]
            let agg = gnn_device::traced("rustyg", "monet.gather_scatter", || {
                let msg = self.fc[k].forward(x).gather_rows(&batch.src).mul_col(&w);
                msg.scatter_add_rows(&batch.dst, batch.num_nodes)
            });
            out = Some(match out {
                Some(acc) => acc.add(&agg),
                None => agg,
            });
        }
        out.expect("at least one kernel")
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.fc[0].out_dim()
    }

    /// Number of Gaussian kernels.
    pub fn kernels(&self) -> usize {
        self.fc.len()
    }

    /// Pseudo-coordinate dimensionality.
    pub fn pseudo_dim(&self) -> usize {
        self.pseudo_dim
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.pseudo_proj.params();
        for k in 0..self.fc.len() {
            p.push(self.mu[k].clone());
            p.push(self.inv_sigma[k].clone());
            p.extend(self.fc[k].params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        Batch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0, 0, 0],
            1,
            vec![0],
        )
    }

    #[test]
    fn shape_and_param_count() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = MoNetConv::new(2, 4, 2, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 4));
        // proj(w,b) + 2 x (mu, inv_sigma, W) = 2 + 6
        assert_eq!(conv.params().len(), 8);
        assert_eq!(conv.kernels(), 2);
        assert_eq!(conv.pseudo_dim(), 2);
    }

    #[test]
    fn gaussian_params_receive_gradients() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = MoNetConv::new(2, 3, 2, 2, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        for (i, p) in conv.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }

    #[test]
    fn no_in_edges_means_zero_output() {
        let g = Graph::from_edges(2, &[(1, 0)]);
        let b = Batch::from_parts(
            &g,
            NdArray::from_vec(2, 2, vec![1., 2., 3., 4.]),
            vec![0, 0],
            1,
            vec![0],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let conv = MoNetConv::new(2, 2, 2, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert!(out.data().row(1).iter().all(|&v| v == 0.0));
    }
}
