//! GIN convolution (Xu et al.).

use gnn_tensor::nn::{BatchNorm1d, Linear};
use gnn_tensor::{NdArray, Tensor};
use rand::Rng;

use crate::batch::Batch;
use crate::costs;

/// Graph Isomorphism Network layer, the paper's Eq. (3):
///
/// `h_i' = W σ(BN(V((1 + ε) h_i + Σ_{j in N(i)} h_j)))`
///
/// with sum aggregation (`neighbor_aggr_GIN: sum`) and learnable ε
/// (`learn_eps_GIN: True`).
#[derive(Debug)]
pub struct GinConv {
    eps: Tensor,
    v: Linear,
    bn: BatchNorm1d,
    w: Linear,
}

impl GinConv {
    /// Creates the layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GinConv {
            eps: Tensor::param(NdArray::scalar(0.0)),
            v: Linear::new(in_dim, out_dim, rng),
            bn: BatchNorm1d::new(out_dim),
            w: Linear::new(out_dim, out_dim, rng),
        }
    }

    /// Applies the layer (final σ is applied by the model stack).
    pub fn forward(&self, batch: &Batch, x: &Tensor, training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let agg = gnn_device::traced("rustyg", "gin.gather_scatter", || {
            x.gather_rows(&batch.src)
                .scatter_add_rows(&batch.dst, batch.num_nodes)
        });
        // (1 + eps) * h_i + sum of neighbours.
        let one_plus_eps = self.eps.add_scalar(1.0);
        let mixed = x.scale_by(&one_plus_eps).add(&agg);
        let h = self.bn.forward(&self.v.forward(&mixed), training).relu();
        self.w.forward(&h)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.w.out_dim()
    }

    /// The layer's internal batch norm (its running statistics are mutable
    /// training state that checkpointing must capture).
    pub fn bn(&self) -> &BatchNorm1d {
        &self.bn
    }

    /// Trainable parameters (ε, both linears, BN affine).
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.eps.clone()];
        p.extend(self.v.params());
        p.extend(self.bn.params());
        p.extend(self.w.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        Batch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0, 0, 0],
            1,
            vec![0],
        )
    }

    #[test]
    fn forward_shape_and_param_count() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GinConv::new(2, 5, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 5));
        // eps + V(w,b) + BN(gamma,beta) + W(w,b) = 7
        assert_eq!(conv.params().len(), 7);
    }

    #[test]
    fn eps_receives_gradient() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GinConv::new(2, 4, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        assert!(conv.eps.grad().is_some(), "learnable eps must receive grad");
    }

    #[test]
    fn sum_aggregation_counts_multiplicity() {
        // Node 1 receives from 0 and 2; with identity-ish check via eps = 0,
        // the pre-V mix for node 1 is x1 + x0 + x2.
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GinConv::new(2, 2, &mut rng);
        // Inspect the aggregation path by recomputing it manually.
        let agg = b.x.gather_rows(&b.src).scatter_add_rows(&b.dst, 3);
        assert_eq!(agg.data().row(1), &[2.0, 1.0]);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 2));
    }
}
