//! Graph readout, PyG style.
//!
//! `global_mean_pool` lowers onto the torch scatter API — a scatter_add over
//! graph ids plus a count division — matching the paper's note that "in PyG,
//! the pooling operations are based on the scatter API of PyTorch".

use gnn_tensor::ops::segment_counts;
use gnn_tensor::{NdArray, Tensor};

use crate::batch::Batch;
use crate::costs;

/// Mean-pools node features into per-graph features `[num_graphs, F]`.
pub fn global_mean_pool(batch: &Batch, x: &Tensor) -> Tensor {
    gnn_device::host(costs::POOL_OVERHEAD);
    let sums = x.scatter_add_rows(&batch.graph_ids, batch.num_graphs);
    let counts = segment_counts(&batch.graph_ids, batch.num_graphs);
    let inv: Vec<f32> = counts
        .iter()
        .map(|&c| if c > 0.0 { 1.0 / c } else { 0.0 })
        .collect();
    let n = inv.len();
    sums.mul_col(&Tensor::new(NdArray::from_vec(n, 1, inv)))
}

/// Sum-pools node features into per-graph features `[num_graphs, F]`.
pub fn global_sum_pool(batch: &Batch, x: &Tensor) -> Tensor {
    gnn_device::host(costs::POOL_OVERHEAD);
    x.scatter_add_rows(&batch.graph_ids, batch.num_graphs)
}

/// Max-pools node features into per-graph features `[num_graphs, F]`.
///
/// Lowered onto the segment-max kernel (PyG's `global_max_pool` lowers onto
/// `scatter_max`, which our device model prices identically).
pub fn global_max_pool(batch: &Batch, x: &Tensor) -> Tensor {
    gnn_device::host(costs::POOL_OVERHEAD);
    x.segment_max(&batch.graph_ids, batch.num_graphs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;

    #[test]
    fn pools_per_graph_means() {
        let g = Graph::from_edges(4, &[]);
        let b = Batch::from_parts(
            &g,
            NdArray::from_vec(4, 1, vec![1., 3., 10., 30.]),
            vec![0, 0, 1, 1],
            2,
            vec![0, 1],
        );
        let pooled = global_mean_pool(&b, &b.x);
        assert_eq!(pooled.data().data(), &[2., 20.]);
    }

    #[test]
    fn sum_and_max_pools() {
        let g = Graph::from_edges(4, &[]);
        let b = Batch::from_parts(
            &g,
            NdArray::from_vec(4, 1, vec![1., 3., 10., 30.]),
            vec![0, 0, 1, 1],
            2,
            vec![0, 1],
        );
        assert_eq!(global_sum_pool(&b, &b.x).data().data(), &[4., 40.]);
        assert_eq!(global_max_pool(&b, &b.x).data().data(), &[3., 30.]);
    }

    #[test]
    fn gradients_distribute_back_to_nodes() {
        let g = Graph::from_edges(2, &[]);
        let x = Tensor::param(NdArray::from_vec(2, 1, vec![1., 3.]));
        let b = Batch::from_parts(&g, NdArray::zeros(2, 1), vec![0, 0], 1, vec![0]);
        let pooled = global_mean_pool(&b, &x);
        pooled.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.5, 0.5]);
    }
}
