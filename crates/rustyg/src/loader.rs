//! Mini-batch collation, PyG style.
//!
//! Collation is a plain concatenation: features are stacked, edge indices
//! offset, labels collected. The host pays [`crate::costs::collate_time`]
//! and the device receives one H2D transfer — no per-type bookkeeping, no
//! format conversion (contrast with `rgl::loader`).

use gnn_datasets::{GraphDataset, NodeDataset};
use gnn_device::{record, Kernel};
use gnn_graph::disjoint_union;
use gnn_tensor::NdArray;

use crate::batch::Batch;
use crate::costs;

/// Batches graphs of a [`GraphDataset`] by index.
#[derive(Debug)]
pub struct DataLoader<'a> {
    dataset: &'a GraphDataset,
}

impl<'a> DataLoader<'a> {
    /// Creates a loader over `dataset`.
    pub fn new(dataset: &'a GraphDataset) -> Self {
        DataLoader { dataset }
    }

    /// Collates the samples at `indices` into one batch.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds.
    pub fn load(&self, indices: &[u32]) -> Batch {
        assert!(!indices.is_empty(), "empty batch");
        let samples: Vec<_> = indices
            .iter()
            .map(|&i| &self.dataset.samples[i as usize])
            .collect();
        let graphs: Vec<_> = samples.iter().map(|s| &s.graph).collect();
        let union = disjoint_union(&graphs);

        // Stack features (the real copy) and collect labels.
        let total_nodes = union.graph.num_nodes();
        let f = self.dataset.feature_dim;
        let mut features = NdArray::zeros(total_nodes, f);
        let mut row = 0usize;
        for s in &samples {
            for r in 0..s.graph.num_nodes() {
                features.row_mut(row).copy_from_slice(s.features.row(r));
                row += 1;
            }
        }
        let labels: Vec<u32> = samples.iter().map(|s| s.label).collect();

        // Host collate cost + one H2D transfer.
        let fbytes = features.byte_size();
        gnn_device::host(costs::collate_time(
            samples.len(),
            total_nodes,
            union.graph.num_edges(),
            fbytes,
        ));
        record(Kernel::transfer(
            "h2d_batch",
            fbytes + 8 * union.graph.num_edges() as u64,
        ));

        Batch::from_parts(
            &union.graph,
            features,
            union.graph_ids,
            samples.len(),
            labels,
        )
    }
}

/// Wraps a full citation graph as a single "batch" for full-batch node
/// classification (the paper's Cora/PubMed setting). The graph is resident
/// on device, so per-epoch loading cost is just the epoch bookkeeping.
pub fn full_graph_batch(ds: &NodeDataset) -> Batch {
    gnn_device::host(costs::BATCH_OVERHEAD);
    record(Kernel::transfer(
        "h2d_full_graph",
        ds.features.byte_size() + 8 * ds.graph.num_edges() as u64,
    ));
    let n = ds.graph.num_nodes();
    Batch::from_parts(
        &ds.graph,
        ds.features.clone(),
        vec![0; n],
        1,
        ds.labels.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::{CitationSpec, TudSpec};

    #[test]
    fn load_concatenates_features_and_labels() {
        let ds = TudSpec::enzymes().scaled(0.05).generate(0);
        let loader = DataLoader::new(&ds);
        let b = loader.load(&[0, 3, 5]);
        assert_eq!(b.num_graphs, 3);
        let expect_nodes: usize = [0usize, 3, 5]
            .iter()
            .map(|&i| ds.samples[i].graph.num_nodes())
            .sum();
        assert_eq!(b.num_nodes, expect_nodes);
        assert_eq!(b.labels.len(), 3);
        assert_eq!(b.x.shape(), (expect_nodes, 18));
        // First sample's first row must be copied verbatim.
        assert_eq!(b.x.data().row(0), ds.samples[0].features.row(0));
    }

    #[test]
    fn load_accounts_host_time_and_transfer() {
        let ds = TudSpec::enzymes().scaled(0.05).generate(1);
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        let loader = DataLoader::new(&ds);
        let idx: Vec<u32> = (0..32).collect();
        loader.load(&idx);
        let report = gnn_device::session::finish(h);
        assert!(
            report.total_time > costs::PER_GRAPH * 32.0,
            "collate cost missing"
        );
        assert!(report.kernel_count >= 1, "H2D transfer missing");
    }

    #[test]
    fn full_graph_batch_wraps_citation_dataset() {
        let ds = CitationSpec::cora().scaled(0.1).generate(0);
        let b = full_graph_batch(&ds);
        assert_eq!(b.num_graphs, 1);
        assert_eq!(b.num_nodes, ds.graph.num_nodes());
        assert_eq!(b.labels, ds.labels);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let ds = TudSpec::enzymes().scaled(0.05).generate(2);
        DataLoader::new(&ds).load(&[]);
    }
}
