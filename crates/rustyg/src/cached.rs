//! Pre-collated batching — the optimization the paper's conclusion calls
//! for ("more efficient graph batching strategies will greatly speed up GNN
//! training").
//!
//! [`CachedLoader`] collates each distinct index chunk **once**, keeps the
//! result resident on the device, and replays it on later epochs for a tiny
//! fixed host cost. The trade-off is fixed batch composition (no per-epoch
//! reshuffling across chunk boundaries), which is how real pre-batching
//! pipelines work. The `ablation_batching` binary quantifies the effect:
//! the data-loading phase collapses and GPU utilization rises accordingly.

use std::cell::RefCell;
use std::collections::HashMap;

use gnn_datasets::GraphDataset;

use crate::batch::Batch;
use crate::loader::DataLoader;

/// Host cost of replaying an already-collated, device-resident batch
/// (a dictionary lookup and a few pointer swaps).
pub const REPLAY_COST: f64 = 8e-6;

/// A loader that collates each distinct chunk once and replays it afterwards.
#[derive(Debug)]
pub struct CachedLoader<'a> {
    inner: DataLoader<'a>,
    cache: RefCell<HashMap<Vec<u32>, Batch>>,
}

impl<'a> CachedLoader<'a> {
    /// Creates a caching loader over `dataset`.
    pub fn new(dataset: &'a GraphDataset) -> Self {
        CachedLoader {
            inner: DataLoader::new(dataset),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Loads (or replays) the batch for `indices`.
    ///
    /// The first call for a given chunk pays the full collation cost; later
    /// calls pay only [`REPLAY_COST`].
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds.
    pub fn load(&self, indices: &[u32]) -> Batch {
        if let Some(hit) = self.cache.borrow().get(indices) {
            gnn_device::host(REPLAY_COST);
            return hit.clone();
        }
        let batch = self.inner.load(indices);
        self.cache
            .borrow_mut()
            .insert(indices.to_vec(), batch.clone());
        batch
    }

    /// Number of distinct chunks collated so far.
    pub fn cached_chunks(&self) -> usize {
        self.cache.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::TudSpec;

    #[test]
    fn replay_is_nearly_free() {
        let ds = TudSpec::enzymes().scaled(0.1).generate(0);
        let loader = CachedLoader::new(&ds);
        let idx: Vec<u32> = (0..16).collect();

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        loader.load(&idx);
        let first = gnn_device::session::finish(h).total_time;

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        loader.load(&idx);
        let replay = gnn_device::session::finish(h).total_time;

        assert!(replay < first / 50.0, "replay {replay} vs first {first}");
        assert_eq!(loader.cached_chunks(), 1);
    }

    #[test]
    fn replayed_batch_shares_device_tensors() {
        let ds = TudSpec::enzymes().scaled(0.1).generate(1);
        let loader = CachedLoader::new(&ds);
        let idx: Vec<u32> = (0..8).collect();
        let a = loader.load(&idx);
        let b = loader.load(&idx);
        // Same underlying tensor (shared id), not a re-collation.
        assert_eq!(a.x.id(), b.x.id());
        // Different chunks collate separately.
        let other: Vec<u32> = (8..16).collect();
        let c = loader.load(&other);
        assert_ne!(a.x.id(), c.x.id());
        assert_eq!(loader.cached_chunks(), 2);
    }
}
