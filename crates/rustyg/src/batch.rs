//! The PyG-style batch: flat COO arrays plus per-node bookkeeping.

use std::rc::Rc;

use gnn_graph::Graph;
use gnn_tensor::{Ids, NdArray, Tensor};

/// A collated mini-batch (or a full graph for node-level tasks), ready for
/// message passing.
///
/// Cloning is cheap: tensor values and index arrays are shared.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Node features `[N, F]` (constant leaf).
    pub x: Tensor,
    /// Edge sources.
    pub src: Ids,
    /// Edge destinations.
    pub dst: Ids,
    /// Total node count.
    pub num_nodes: usize,
    /// Number of graphs collated into this batch (1 for node tasks).
    pub num_graphs: usize,
    /// Per-node graph membership.
    pub graph_ids: Ids,
    /// In-degree + 1 (self-loop renormalization), as `[N, 1]`.
    pub deg: Tensor,
    /// `1 / (in-degree + 1)`, as `[N, 1]`.
    pub inv_deg: Tensor,
    /// `1 / sqrt(in-degree + 1)`, as `[N, 1]` (GCN both-side norm, MoNet
    /// pseudo-coordinates).
    pub inv_sqrt_deg: Tensor,
    /// Target labels: per-graph for graph tasks, per-node for node tasks.
    pub labels: Vec<u32>,
    /// Bytes of node features (used for transfer modelling).
    pub feature_bytes: u64,
}

impl Batch {
    /// Assembles a batch from an already-collated graph. Degree tensors are
    /// derived here; features are registered as a device allocation.
    pub fn from_parts(
        graph: &Graph,
        features: NdArray,
        graph_ids: Vec<u32>,
        num_graphs: usize,
        labels: Vec<u32>,
    ) -> Self {
        assert_eq!(
            features.rows(),
            graph.num_nodes(),
            "feature/node count mismatch"
        );
        let feature_bytes = features.byte_size();
        debug_assert!(
            graph
                .src()
                .iter()
                .chain(graph.dst())
                .all(|&v| (v as usize) < graph.num_nodes()),
            "edge index out of bounds (num_nodes = {})",
            graph.num_nodes()
        );
        debug_assert!(
            graph_ids.iter().all(|&g| (g as usize) < num_graphs),
            "graph id out of bounds (num_graphs = {num_graphs})"
        );
        let deg_raw: Vec<f32> = graph.in_degrees().iter().map(|&d| (d + 1) as f32).collect();
        let n = deg_raw.len();
        let inv: Vec<f32> = deg_raw.iter().map(|&d| 1.0 / d).collect();
        let inv_sqrt: Vec<f32> = deg_raw.iter().map(|&d| 1.0 / d.sqrt()).collect();
        gnn_device::alloc(feature_bytes + 12 * n as u64 + 8 * graph.num_edges() as u64);
        Batch {
            x: Tensor::new(features),
            src: Rc::new(graph.src().to_vec()),
            dst: Rc::new(graph.dst().to_vec()),
            num_nodes: graph.num_nodes(),
            num_graphs,
            graph_ids: Rc::new(graph_ids),
            deg: Tensor::new(NdArray::from_vec(n, 1, deg_raw)),
            inv_deg: Tensor::new(NdArray::from_vec(n, 1, inv)),
            inv_sqrt_deg: Tensor::new(NdArray::from_vec(n, 1, inv_sqrt)),
            labels,
            feature_bytes,
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_tensors_are_renormalized() {
        // 0 -> 1, 0 -> 2: in-degrees 0,1,1 -> renormalized 1,2,2
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let b = Batch::from_parts(&g, NdArray::zeros(3, 4), vec![0, 0, 0], 1, vec![0]);
        assert_eq!(b.deg.data().data(), &[1., 2., 2.]);
        assert_eq!(b.inv_deg.data().data(), &[1., 0.5, 0.5]);
        let isd = b.inv_sqrt_deg.data();
        assert!((isd.data()[1] - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(b.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "feature/node count mismatch")]
    fn wrong_feature_rows_rejected() {
        let g = Graph::from_edges(2, &[]);
        Batch::from_parts(&g, NdArray::zeros(3, 1), vec![0, 0], 1, vec![]);
    }
}
