//! Supervised training: typed errors, bounded retry, checkpoint/resume,
//! and graceful degradation.
//!
//! The plain loops in [`crate::node_task`] / [`crate::graph_task`] assume a
//! healthy device and panic on anything unexpected — fine for unit tests,
//! fatal for a 60-cell sweep. The supervised variants here run the *same*
//! training computation under a [`Supervisor`] policy:
//!
//! - **Typed failures** — every abnormal exit is a [`TrainError`], never a
//!   panic, so the sweep runner can record the cell and move on.
//! - **Retry with backoff** — transient device faults (one-shot OOM, kernel
//!   faults from `gnn-faults`) roll the step back (batch-norm running
//!   stats restored, gradients cleared — parameters are untouched until
//!   `opt.step`) and replay it. Because the forward pass uses no RNG, a
//!   successfully retried run is **bit-identical** to a fault-free one; the
//!   property tests in `tests/faults.rs` assert exactly that.
//! - **Checkpoint/resume** — per-epoch [`Checkpoint`] files capture params,
//!   optimizer moments, scheduler state, shuffle RNG, and batch-norm
//!   statistics, so a killed run resumed with `--resume` reproduces the
//!   uninterrupted loss curve exactly.
//! - **Graceful degradation** — persistent OOM (a memory ceiling) halves
//!   the mini-batch size and continues; a NaN-poisoned loss rolls back to
//!   the last checkpoint and replays; a failed data-parallel replica
//!   shrinks the world and re-prices the schedule.

use std::path::PathBuf;

use gnn_datasets::{Fold, NodeDataset};
use gnn_device::{Phase, Session, SessionError};
use gnn_faults::Fault;
use gnn_models::{GnnStack, Loader, ModelBatch};
use gnn_tensor::nn::BatchNorm1d;
use gnn_tensor::{accuracy, cross_entropy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::rc::Rc;

use crate::checkpoint::Checkpoint;
use crate::epoch_trace::EpochTracker;
use crate::graph_task::{evaluate, FoldOutcome, GraphTaskConfig};
use crate::node_task::{NodeOutcome, NodeTaskConfig};
use crate::optim::Adam;
use crate::scheduler::ReduceLrOnPlateau;

/// Why a supervised training run stopped abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A device fault persisted past the retry budget.
    RetriesExhausted {
        /// Attempts made on the failing step.
        attempts: usize,
        /// The last fault observed.
        cause: String,
    },
    /// The loss went NaN/Inf and rollback could not clear it (a genuinely
    /// diverged run, not a one-shot poisoning).
    NanLoss {
        /// Epoch at which the loss diverged.
        epoch: u64,
    },
    /// All data-parallel replicas failed.
    WorldCollapsed,
    /// A profiling-session protocol violation.
    Session(SessionError),
    /// Checkpoint IO/parse failure.
    Checkpoint(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::RetriesExhausted { attempts, cause } => {
                write!(f, "fault persisted after {attempts} attempts: {cause}")
            }
            TrainError::NanLoss { epoch } => {
                write!(
                    f,
                    "loss diverged to NaN at epoch {epoch} (rollback did not clear it)"
                )
            }
            TrainError::WorldCollapsed => write!(f, "all data-parallel replicas failed"),
            TrainError::Session(e) => write!(f, "session protocol violation: {e}"),
            TrainError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<SessionError> for TrainError {
    fn from(e: SessionError) -> Self {
        TrainError::Session(e)
    }
}

/// Retry/checkpoint policy for supervised runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Supervisor {
    /// Retries allowed per training step before giving up (or, for OOM,
    /// degrading).
    pub max_retries: usize,
    /// Simulated seconds of host backoff added per retry attempt
    /// (multiplied by the attempt number: linear backoff).
    pub backoff: f64,
    /// Where to write per-epoch checkpoints (`None` disables them; in-memory
    /// rollback for NaN recovery works regardless).
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint every N epochs (when a path is set).
    pub checkpoint_every: u64,
    /// Resume from `checkpoint_path` if the file exists.
    pub resume: bool,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            max_retries: 3,
            backoff: 1e-3,
            checkpoint_path: None,
            checkpoint_every: 1,
            resume: false,
        }
    }
}

impl Supervisor {
    /// Enables per-epoch checkpoints at `path` (builder-style).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Enables resume-from-checkpoint (builder-style).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }
}

/// A supervised run's result: the underlying outcome plus what the
/// supervisor had to do to get there.
#[derive(Debug, Clone)]
pub struct Supervised<T> {
    /// The training outcome.
    pub outcome: T,
    /// Whether any degradation policy fired (batch halved, world shrunk).
    pub degraded: bool,
    /// Total step retries performed.
    pub retries: usize,
    /// Human-readable log of every supervisor intervention.
    pub notes: Vec<String>,
    /// Per-epoch loss curve (training loss for the node task, validation
    /// loss for the graph task) — the series resume tests compare
    /// bit-for-bit.
    pub losses: Vec<f64>,
}

fn snapshot_norms(norms: &[&BatchNorm1d]) -> Vec<(Vec<f32>, Vec<f32>)> {
    norms.iter().map(|bn| bn.running_stats()).collect()
}

fn restore_norms(norms: &[&BatchNorm1d], snap: &[(Vec<f32>, Vec<f32>)]) {
    for (bn, (mean, var)) in norms.iter().zip(snap) {
        bn.set_running_stats(mean, var);
    }
}

/// Rolls the device/optimizer state of an aborted step back so it can be
/// replayed: batch-norm stats restored, gradients cleared, step-scoped
/// device memory released. Parameters are untouched because `opt.step`
/// never ran.
fn unwind_step(norms: &[&BatchNorm1d], snap: &[(Vec<f32>, Vec<f32>)], opt: &Adam) {
    restore_norms(norms, snap);
    opt.zero_grad();
    gnn_device::with(|s| s.end_step());
}

fn fault_to_error(fault: &Fault, attempts: usize) -> TrainError {
    TrainError::RetriesExhausted {
        attempts,
        cause: fault.to_string(),
    }
}

/// What happened to one supervised training step.
enum StepResult {
    /// Step committed (`opt.step` ran); carries the step's loss.
    Ok(f32),
    /// OOM persisted past the retry budget — the caller should degrade
    /// (halve the batch) if it can.
    OomPersistent { attempts: usize },
    /// The loss came back NaN/Inf — the caller should roll back to its
    /// last checkpoint.
    Poisoned,
    /// Unrecoverable.
    Fatal(TrainError),
}

/// Runs one training step (forward/loss/backward/update) over `compute`,
/// retrying transient device faults under the supervisor's budget.
///
/// `compute` must be a pure replayable step: given the same model state it
/// reproduces the same loss tensor (all loops here satisfy this — the
/// forward pass draws no RNG).
fn supervised_step<F: FnMut() -> gnn_tensor::Tensor>(
    mut compute: F,
    norms: &[&BatchNorm1d],
    opt: &mut Adam,
    sup: &Supervisor,
    retries: &mut usize,
    notes: &mut Vec<String>,
    epoch: u64,
) -> StepResult {
    let mut attempts = 0usize;
    loop {
        let snap = snapshot_norms(norms);
        let loss = compute();
        if let Some(fault) = gnn_faults::take_pending() {
            unwind_step(norms, &snap, opt);
            attempts += 1;
            *retries += 1;
            if attempts > sup.max_retries {
                return match fault {
                    Fault::Oom { .. } => StepResult::OomPersistent { attempts },
                    Fault::Kernel { .. } => StepResult::Fatal(fault_to_error(&fault, attempts)),
                };
            }
            notes.push(format!(
                "epoch {epoch}: retrying step after {fault} (attempt {attempts})"
            ));
            gnn_device::host(sup.backoff * attempts as f64);
            continue;
        }
        let loss_val = gnn_faults::poison_loss(loss.item(), gnn_device::sim_now());
        if !loss_val.is_finite() {
            unwind_step(norms, &snap, opt);
            return StepResult::Poisoned;
        }
        gnn_device::set_phase(Phase::Update);
        opt.step();
        opt.zero_grad();
        gnn_device::set_phase(Phase::Other);
        gnn_device::with(|s| s.end_step());
        return StepResult::Ok(loss_val);
    }
}

/// Runs `eval` with bounded retries on device faults. Evaluation mutates
/// nothing (inference mode), so a retry is a plain redo.
fn supervised_eval<T, F: FnMut() -> T>(
    mut eval: F,
    sup: &Supervisor,
    retries: &mut usize,
    notes: &mut Vec<String>,
    epoch: u64,
) -> Result<T, TrainError> {
    let mut attempts = 0usize;
    loop {
        let out = eval();
        match gnn_faults::take_pending() {
            None => return Ok(out),
            Some(fault) => {
                gnn_device::with(|s| s.end_step());
                attempts += 1;
                *retries += 1;
                if attempts > sup.max_retries {
                    return Err(fault_to_error(&fault, attempts));
                }
                notes.push(format!(
                    "epoch {epoch}: retrying evaluation after {fault} (attempt {attempts})"
                ));
                gnn_device::host(sup.backoff * attempts as f64);
            }
        }
    }
}

/// Supervised full-batch node classification: the Section IV-A loop with
/// typed errors, retry, NaN rollback, and checkpoint/resume.
///
/// # Errors
///
/// Returns a [`TrainError`] instead of panicking on device faults that
/// survive the retry budget, diverged losses, or checkpoint IO failures.
///
/// # Panics
///
/// Panics on caller bugs (empty splits, batch/dataset mismatch), exactly
/// like [`crate::run_node_task`].
pub fn run_node_task_supervised<B: ModelBatch>(
    model: &GnnStack<B>,
    batch: &B,
    ds: &NodeDataset,
    cfg: &NodeTaskConfig,
    sup: &Supervisor,
) -> Result<Supervised<NodeOutcome>, TrainError> {
    assert!(!ds.train_idx.is_empty(), "empty training split");
    assert_eq!(
        batch.num_nodes(),
        ds.graph.num_nodes(),
        "batch/dataset mismatch"
    );

    let handle = gnn_device::session::install(Session::new(gnn_device::default_cost_model()));
    let result = node_body(model, batch, ds, cfg, sup);
    match result {
        Ok(body) => {
            let report = gnn_device::session::try_finish(handle)?;
            let epochs = body.losses.len();
            let measured = accumulated(body.prior_time, &body.epoch_times);
            Ok(Supervised {
                outcome: NodeOutcome {
                    test_acc: body.test_at_best,
                    best_val_acc: body.best_val,
                    epochs,
                    epoch_time: measured / epochs.max(1) as f64,
                    total_time: measured,
                    report,
                },
                degraded: false,
                retries: body.retries,
                notes: body.notes,
                losses: body.losses,
            })
        }
        Err(e) => {
            // Surface the training failure, not any secondary finish issue.
            let _ = gnn_device::session::try_finish(handle);
            Err(e)
        }
    }
}

/// Total training time as a left fold continuing from `prior`. A fresh run
/// has `prior == 0.0` (so this equals `times.iter().sum()`); a resumed run's
/// `prior` is the same left fold over the epochs the earlier session timed,
/// so the combined fold is bit-identical to the uninterrupted run's sum.
fn accumulated(prior: f64, times: &[f64]) -> f64 {
    let mut total = prior;
    for t in times {
        total += t;
    }
    total
}

/// Fast-forwards a fresh session's clock to the checkpointed value so every
/// subsequent timestamp matches the uninterrupted run bit-for-bit.
fn restore_clock(clock: f64) {
    let mut now = 0.0;
    gnn_device::with(|s| now = s.now());
    if clock > now {
        gnn_device::host(clock - now);
    }
}

struct NodeBody {
    best_val: f64,
    test_at_best: f64,
    losses: Vec<f64>,
    epoch_times: Vec<f64>,
    /// Training seconds accumulated by earlier sessions (restored from the
    /// checkpoint on resume); `epoch_times` only covers this process.
    prior_time: f64,
    retries: usize,
    notes: Vec<String>,
}

fn node_body<B: ModelBatch>(
    model: &GnnStack<B>,
    batch: &B,
    ds: &NodeDataset,
    cfg: &NodeTaskConfig,
    sup: &Supervisor,
) -> Result<NodeBody, TrainError> {
    gnn_device::with(|s| {
        s.alloc_persistent(2 * model.param_bytes() + batch.feature_bytes());
    });
    let mut opt = Adam::new(model.params(), cfg.lr);
    let params = model.params();
    let norms = model.norm_layers();

    let train_idx: gnn_tensor::Ids = Rc::new(ds.train_idx.clone());
    let val_idx: gnn_tensor::Ids = Rc::new(ds.val_idx.clone());
    let test_idx: gnn_tensor::Ids = Rc::new(ds.test_idx.clone());
    let train_labels = ds.labels_at(&ds.train_idx);
    let val_labels = ds.labels_at(&ds.val_idx);
    let test_labels = ds.labels_at(&ds.test_idx);

    let mut body = NodeBody {
        best_val: 0.0,
        test_at_best: 0.0,
        losses: Vec::new(),
        epoch_times: Vec::new(),
        prior_time: 0.0,
        retries: 0,
        notes: Vec::new(),
    };
    let mut epoch: u64 = 0;

    if sup.resume {
        if let Some(path) = sup.checkpoint_path.as_deref().filter(|p| p.exists()) {
            let ckpt = Checkpoint::load(path).map_err(TrainError::Checkpoint)?;
            ckpt.restore(&params, &norms, &mut opt, None);
            epoch = ckpt.epoch;
            body.best_val = ckpt.best_val;
            body.test_at_best = ckpt.test_at_best;
            body.losses = ckpt.losses.clone();
            body.prior_time = ckpt.total_time;
            restore_clock(ckpt.clock);
            body.notes
                .push(format!("resumed from checkpoint at epoch {epoch}"));
        }
    }

    let capture = |opt: &Adam, body: &NodeBody, epoch: u64| -> Checkpoint {
        let mut ckpt = Checkpoint::capture(&params, &norms, opt, None, None, epoch);
        ckpt.best_val = body.best_val;
        ckpt.test_at_best = body.test_at_best;
        ckpt.losses = body.losses.clone();
        ckpt.total_time = accumulated(body.prior_time, &body.epoch_times);
        gnn_device::with(|s| ckpt.clock = s.now());
        ckpt
    };
    let mut rollback = capture(&opt, &body, epoch);
    let mut last_rollback_epoch: Option<u64> = None;

    let mut last_mark = 0.0f64;
    gnn_device::with(|s| last_mark = s.now());
    let mut tracker = EpochTracker::new(format!("node/{}/{}", model.name(), ds.name));

    while epoch < cfg.max_epochs as u64 {
        gnn_faults::set_epoch(epoch);

        let step = supervised_step(
            || {
                gnn_device::set_phase(Phase::DataLoad);
                gnn_device::host(20e-6);
                gnn_device::set_phase(Phase::Forward);
                let logits = model.forward(batch, true);
                let loss = cross_entropy(&logits.gather_rows(&train_idx), &train_labels);
                gnn_device::set_phase(Phase::Backward);
                loss.backward();
                loss
            },
            &norms,
            &mut opt,
            sup,
            &mut body.retries,
            &mut body.notes,
            epoch,
        );
        let loss_val = match step {
            StepResult::Ok(v) => v,
            StepResult::Poisoned => {
                if last_rollback_epoch == Some(epoch) {
                    // Rolling back did not clear the NaN: genuine divergence.
                    return Err(TrainError::NanLoss { epoch });
                }
                last_rollback_epoch = Some(epoch);
                body.notes.push(format!(
                    "epoch {epoch}: NaN loss — rolled back to checkpoint at epoch {} and replaying",
                    rollback.epoch
                ));
                rollback.restore(&params, &norms, &mut opt, None);
                body.best_val = rollback.best_val;
                body.test_at_best = rollback.test_at_best;
                body.losses = rollback.losses.clone();
                epoch = rollback.epoch;
                continue;
            }
            StepResult::OomPersistent { attempts } => {
                // Full-batch training has no batch to shrink.
                return Err(TrainError::RetriesExhausted {
                    attempts,
                    cause: "device OOM (full-batch task cannot reduce its batch)".into(),
                });
            }
            StepResult::Fatal(e) => return Err(e),
        };

        let eval_logits = supervised_eval(
            || gnn_tensor::no_grad(|| model.forward(batch, false)),
            sup,
            &mut body.retries,
            &mut body.notes,
            epoch,
        )?;
        let val_acc = accuracy(&eval_logits.gather_rows(&val_idx), &val_labels) * 100.0;
        if val_acc > body.best_val {
            body.best_val = val_acc;
            body.test_at_best = accuracy(&eval_logits.gather_rows(&test_idx), &test_labels) * 100.0;
        }
        gnn_device::with(|s| s.end_step());

        let mut now = 0.0;
        gnn_device::with(|s| now = s.now());
        body.epoch_times.push(now - last_mark);
        last_mark = now;
        tracker.emit(
            f64::from(loss_val),
            Some(val_acc / 100.0),
            f64::from(cfg.lr),
        );
        body.losses.push(f64::from(loss_val));
        epoch += 1;

        rollback = capture(&opt, &body, epoch);
        if let Some(path) = &sup.checkpoint_path {
            if epoch.is_multiple_of(sup.checkpoint_every) {
                rollback.save(path).map_err(TrainError::Checkpoint)?;
            }
        }
    }
    Ok(body)
}

/// Supervised mini-batch graph classification: the Section IV-B fold loop
/// with typed errors, retry, batch-halving OOM degradation, NaN rollback,
/// and checkpoint/resume.
///
/// # Errors
///
/// Returns a [`TrainError`] on faults that survive retry and degradation,
/// diverged losses, or checkpoint IO failures.
///
/// # Panics
///
/// Panics on caller bugs (empty fold, zero batch size), exactly like
/// [`crate::run_graph_fold`].
pub fn run_graph_fold_supervised<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    fold: &Fold,
    cfg: &GraphTaskConfig,
    sup: &Supervisor,
) -> Result<Supervised<FoldOutcome>, TrainError> {
    assert!(!fold.train.is_empty(), "empty training fold");
    assert!(cfg.batch_size > 0, "batch size must be positive");

    let handle = gnn_device::session::install(Session::new(gnn_device::default_cost_model()));
    let result = graph_body(model, loader, fold, cfg, sup);
    match result {
        Ok(body) => {
            let report = gnn_device::session::try_finish(handle)?;
            let epochs = body.losses.len();
            let measured = accumulated(body.prior_time, &body.epoch_times);
            Ok(Supervised {
                outcome: FoldOutcome {
                    test_acc: body.test_acc * 100.0,
                    epochs,
                    epoch_time: measured / epochs.max(1) as f64,
                    total_time: measured,
                    report,
                },
                degraded: body.degraded,
                retries: body.retries,
                notes: body.notes,
                losses: body.losses,
            })
        }
        Err(e) => {
            let _ = gnn_device::session::try_finish(handle);
            Err(e)
        }
    }
}

struct GraphBody {
    test_acc: f64,
    losses: Vec<f64>,
    epoch_times: Vec<f64>,
    /// Training seconds accumulated by earlier sessions (restored from the
    /// checkpoint on resume); `epoch_times` only covers this process.
    prior_time: f64,
    degraded: bool,
    retries: usize,
    notes: Vec<String>,
}

fn graph_body<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    fold: &Fold,
    cfg: &GraphTaskConfig,
    sup: &Supervisor,
) -> Result<GraphBody, TrainError> {
    gnn_device::with(|s| s.alloc_persistent(2 * model.param_bytes()));
    let mut opt = Adam::new(model.params(), cfg.init_lr);
    let mut sched = ReduceLrOnPlateau::new(cfg.decay_factor, cfg.patience, cfg.min_lr);
    let params = model.params();
    let norms = model.norm_layers();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order = fold.train.clone();

    let mut body = GraphBody {
        test_acc: 0.0,
        losses: Vec::new(),
        epoch_times: Vec::new(),
        prior_time: 0.0,
        degraded: false,
        retries: 0,
        notes: Vec::new(),
    };
    let mut epoch: u64 = 0;
    let mut eff_batch = cfg.batch_size;

    if sup.resume {
        if let Some(path) = sup.checkpoint_path.as_deref().filter(|p| p.exists()) {
            let ckpt = Checkpoint::load(path).map_err(TrainError::Checkpoint)?;
            if let Some(restored) = ckpt.restore(&params, &norms, &mut opt, Some(&mut sched)) {
                rng = restored;
            }
            epoch = ckpt.epoch;
            body.losses = ckpt.losses.clone();
            body.prior_time = ckpt.total_time;
            restore_clock(ckpt.clock);
            // The shuffle order is itself training state: rebuild it by
            // replaying the completed epochs' shuffles with a fresh stream
            // (the stored RNG state is where that replay would end).
            if cfg.shuffle {
                let mut replay = StdRng::seed_from_u64(cfg.seed);
                for _ in 0..epoch {
                    order.shuffle(&mut replay);
                }
            }
            body.notes
                .push(format!("resumed from checkpoint at epoch {epoch}"));
        }
    }

    let capture = |opt: &Adam,
                   sched: &ReduceLrOnPlateau,
                   rng: &StdRng,
                   body: &GraphBody,
                   epoch: u64|
     -> Checkpoint {
        let mut ckpt = Checkpoint::capture(&params, &norms, opt, Some(sched), Some(rng), epoch);
        ckpt.losses = body.losses.clone();
        ckpt.total_time = accumulated(body.prior_time, &body.epoch_times);
        gnn_device::with(|s| ckpt.clock = s.now());
        ckpt
    };
    let mut rollback = (capture(&opt, &sched, &rng, &body, epoch), order.clone());
    let mut last_rollback_epoch: Option<u64> = None;

    let mut last_mark = 0.0f64;
    gnn_device::with(|s| last_mark = s.now());
    let mut tracker = EpochTracker::new(format!("graph/{}/bs{}", model.name(), cfg.batch_size));

    'epochs: while epoch < cfg.max_epochs as u64 {
        // A resumed fold whose checkpoint was taken at the lr floor must not
        // train further (fresh runs always get their first epoch, matching
        // the unsupervised loop's check-after-epoch semantics).
        if epoch > 0 && sched.should_stop(opt.lr()) {
            break;
        }
        gnn_faults::set_epoch(epoch);
        if cfg.shuffle {
            order.shuffle(&mut rng);
        }

        let mut pos = 0usize;
        while pos < order.len() {
            let end = (pos + eff_batch).min(order.len());
            let chunk = &order[pos..end];
            let step = supervised_step(
                || {
                    gnn_device::set_phase(Phase::DataLoad);
                    let batch = loader.load(chunk);
                    gnn_device::set_phase(Phase::Forward);
                    let logits = model.forward(&batch, true);
                    let loss = cross_entropy(&logits, batch.labels());
                    gnn_device::set_phase(Phase::Backward);
                    loss.backward();
                    loss
                },
                &norms,
                &mut opt,
                sup,
                &mut body.retries,
                &mut body.notes,
                epoch,
            );
            match step {
                StepResult::Ok(_) => pos = end,
                StepResult::OomPersistent { attempts } => {
                    if eff_batch == 1 {
                        return Err(TrainError::RetriesExhausted {
                            attempts,
                            cause: "device OOM persists even at batch size 1".into(),
                        });
                    }
                    eff_batch = (eff_batch / 2).max(1);
                    body.degraded = true;
                    body.notes.push(format!(
                        "epoch {epoch}: halving batch size to {eff_batch} after persistent OOM"
                    ));
                    // pos unchanged: replay the failed chunk at the smaller size.
                }
                StepResult::Poisoned => {
                    if last_rollback_epoch == Some(epoch) {
                        return Err(TrainError::NanLoss { epoch });
                    }
                    last_rollback_epoch = Some(epoch);
                    let (ckpt, saved_order) = &rollback;
                    body.notes.push(format!(
                        "epoch {epoch}: NaN loss — rolled back to checkpoint at epoch {} and replaying",
                        ckpt.epoch
                    ));
                    if let Some(restored) =
                        ckpt.restore(&params, &norms, &mut opt, Some(&mut sched))
                    {
                        rng = restored;
                    }
                    body.losses = ckpt.losses.clone();
                    order = saved_order.clone();
                    epoch = ckpt.epoch;
                    continue 'epochs;
                }
                StepResult::Fatal(e) => return Err(e),
            }
        }

        let (val_loss, val_acc) = supervised_eval(
            || evaluate(model, loader, &fold.val, eff_batch),
            sup,
            &mut body.retries,
            &mut body.notes,
            epoch,
        )?;
        let new_lr = sched.step(val_loss, opt.lr());
        if new_lr != opt.lr() {
            opt.set_lr(new_lr);
        }

        let mut now = 0.0;
        gnn_device::with(|s| now = s.now());
        body.epoch_times.push(now - last_mark);
        last_mark = now;
        tracker.emit(f64::from(val_loss), Some(val_acc), f64::from(opt.lr()));
        body.losses.push(f64::from(val_loss));
        epoch += 1;

        rollback = (capture(&opt, &sched, &rng, &body, epoch), order.clone());
        if let Some(path) = &sup.checkpoint_path {
            if epoch.is_multiple_of(sup.checkpoint_every) {
                rollback.0.save(path).map_err(TrainError::Checkpoint)?;
            }
        }

        if sched.should_stop(opt.lr()) {
            break;
        }
    }

    let (_, test_acc) = supervised_eval(
        || evaluate(model, loader, &fold.test, eff_batch),
        sup,
        &mut body.retries,
        &mut body.notes,
        epoch,
    )?;
    body.test_acc = test_acc;
    Ok(body)
}

/// Supervised neighbor-sampled node classification: the giant-graph loop
/// with typed errors, retry, seed-minibatch halving on persistent OOM,
/// NaN rollback, and checkpoint/resume.
///
/// The computation matches [`crate::run_sampled_task`] exactly on a
/// healthy device; sampling is a pure function of `(seeds, epoch)` so a
/// retried or resumed step replays the identical block.
///
/// # Errors
///
/// Returns a [`TrainError`] on faults that survive retry and degradation,
/// diverged losses, or checkpoint IO failures.
///
/// # Panics
///
/// Panics on caller bugs (zero batch or pool sizes), exactly like
/// [`crate::run_sampled_task`].
pub fn run_sampled_task_supervised<L: crate::sampled_task::SampledLoader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    cfg: &crate::sampled_task::SampledTaskConfig,
    sup: &Supervisor,
) -> Result<Supervised<NodeOutcome>, TrainError> {
    assert!(cfg.batch_seeds > 0, "batch seeds must be positive");
    assert!(cfg.train_seeds > 0, "train pool must be non-empty");

    let handle = gnn_device::session::install(Session::new(gnn_device::default_cost_model()));
    let result = sampled_body(model, loader, cfg, sup);
    match result {
        Ok(body) => {
            let report = gnn_device::session::try_finish(handle)?;
            let epochs = body.losses.len();
            let measured = accumulated(body.prior_time, &body.epoch_times);
            Ok(Supervised {
                outcome: NodeOutcome {
                    test_acc: body.test_at_best,
                    best_val_acc: body.best_val,
                    epochs,
                    epoch_time: measured / epochs.max(1) as f64,
                    total_time: measured,
                    report,
                },
                degraded: body.degraded,
                retries: body.retries,
                notes: body.notes,
                losses: body.losses,
            })
        }
        Err(e) => {
            let _ = gnn_device::session::try_finish(handle);
            Err(e)
        }
    }
}

struct SampledBody {
    best_val: f64,
    test_at_best: f64,
    losses: Vec<f64>,
    epoch_times: Vec<f64>,
    prior_time: f64,
    degraded: bool,
    retries: usize,
    notes: Vec<String>,
}

fn sampled_body<L: crate::sampled_task::SampledLoader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    cfg: &crate::sampled_task::SampledTaskConfig,
    sup: &Supervisor,
) -> Result<SampledBody, TrainError> {
    use crate::sampled_task::{
        eval_sampled, EVAL_SALT, TEST_POOL_SALT, TRAIN_POOL_SALT, VAL_POOL_SALT,
    };

    gnn_device::with(|s| {
        s.alloc_persistent(2 * model.param_bytes() + loader.resident_bytes());
    });
    let mut opt = Adam::new(model.params(), cfg.lr);
    let params = model.params();
    let norms = model.norm_layers();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order = loader.seed_pool(cfg.train_seeds, TRAIN_POOL_SALT);
    let val_pool = loader.seed_pool(cfg.eval_seeds, VAL_POOL_SALT);
    let test_pool = loader.seed_pool(cfg.eval_seeds, TEST_POOL_SALT);

    let mut body = SampledBody {
        best_val: 0.0,
        test_at_best: 0.0,
        losses: Vec::new(),
        epoch_times: Vec::new(),
        prior_time: 0.0,
        degraded: false,
        retries: 0,
        notes: Vec::new(),
    };
    let mut epoch: u64 = 0;
    let mut eff_batch = cfg.batch_seeds;

    if sup.resume {
        if let Some(path) = sup.checkpoint_path.as_deref().filter(|p| p.exists()) {
            let ckpt = Checkpoint::load(path).map_err(TrainError::Checkpoint)?;
            if let Some(restored) = ckpt.restore(&params, &norms, &mut opt, None) {
                rng = restored;
            }
            epoch = ckpt.epoch;
            body.best_val = ckpt.best_val;
            body.test_at_best = ckpt.test_at_best;
            body.losses = ckpt.losses.clone();
            body.prior_time = ckpt.total_time;
            restore_clock(ckpt.clock);
            // Shuffle order is training state: replay the completed epochs'
            // shuffles so the resumed epoch sees the same mini-batches.
            let mut replay = StdRng::seed_from_u64(cfg.seed);
            for _ in 0..epoch {
                order.shuffle(&mut replay);
            }
            body.notes
                .push(format!("resumed from checkpoint at epoch {epoch}"));
        }
    }

    let capture = |opt: &Adam, rng: &StdRng, body: &SampledBody, epoch: u64| -> Checkpoint {
        let mut ckpt = Checkpoint::capture(&params, &norms, opt, None, Some(rng), epoch);
        ckpt.best_val = body.best_val;
        ckpt.test_at_best = body.test_at_best;
        ckpt.losses = body.losses.clone();
        ckpt.total_time = accumulated(body.prior_time, &body.epoch_times);
        gnn_device::with(|s| ckpt.clock = s.now());
        ckpt
    };
    let mut rollback = (capture(&opt, &rng, &body, epoch), order.clone());
    let mut last_rollback_epoch: Option<u64> = None;

    let mut last_mark = 0.0f64;
    gnn_device::with(|s| last_mark = s.now());
    let mut tracker = EpochTracker::new(format!("sample/{}/{}", model.name(), loader.label()));

    'epochs: while epoch < cfg.max_epochs as u64 {
        gnn_faults::set_epoch(epoch);
        order.shuffle(&mut rng);

        let mut pos = 0usize;
        let mut last_loss = 0.0f32;
        while pos < order.len() {
            let end = (pos + eff_batch).min(order.len());
            let chunk = &order[pos..end];
            let step = supervised_step(
                || {
                    gnn_device::set_phase(Phase::DataLoad);
                    let batch = loader.load(chunk, epoch);
                    gnn_device::set_phase(Phase::Forward);
                    let logits = model.forward(&batch, true);
                    let ids: gnn_tensor::Ids = Rc::new((0..chunk.len() as u32).collect());
                    let labels: Vec<u32> = batch.labels()[..chunk.len()].to_vec();
                    let loss = cross_entropy(&logits.gather_rows(&ids), &labels);
                    gnn_device::set_phase(Phase::Backward);
                    loss.backward();
                    loss
                },
                &norms,
                &mut opt,
                sup,
                &mut body.retries,
                &mut body.notes,
                epoch,
            );
            match step {
                StepResult::Ok(v) => {
                    last_loss = v;
                    pos = end;
                }
                StepResult::OomPersistent { attempts } => {
                    if eff_batch == 1 {
                        return Err(TrainError::RetriesExhausted {
                            attempts,
                            cause: "device OOM persists even at 1 seed per batch".into(),
                        });
                    }
                    eff_batch = (eff_batch / 2).max(1);
                    body.degraded = true;
                    body.notes.push(format!(
                        "epoch {epoch}: halving seed batch to {eff_batch} after persistent OOM"
                    ));
                    // pos unchanged: replay the failed chunk at the smaller
                    // fan-out frontier.
                }
                StepResult::Poisoned => {
                    if last_rollback_epoch == Some(epoch) {
                        return Err(TrainError::NanLoss { epoch });
                    }
                    last_rollback_epoch = Some(epoch);
                    let (ckpt, saved_order) = &rollback;
                    body.notes.push(format!(
                        "epoch {epoch}: NaN loss — rolled back to checkpoint at epoch {} and replaying",
                        ckpt.epoch
                    ));
                    if let Some(restored) = ckpt.restore(&params, &norms, &mut opt, None) {
                        rng = restored;
                    }
                    body.best_val = ckpt.best_val;
                    body.test_at_best = ckpt.test_at_best;
                    body.losses = ckpt.losses.clone();
                    order = saved_order.clone();
                    epoch = ckpt.epoch;
                    continue 'epochs;
                }
                StepResult::Fatal(e) => return Err(e),
            }
        }

        gnn_device::set_phase(Phase::Other);
        let val_acc = supervised_eval(
            || eval_sampled(model, loader, &val_pool, eff_batch, EVAL_SALT + epoch) * 100.0,
            sup,
            &mut body.retries,
            &mut body.notes,
            epoch,
        )?;
        if val_acc > body.best_val {
            body.best_val = val_acc;
            body.test_at_best = supervised_eval(
                || eval_sampled(model, loader, &test_pool, eff_batch, EVAL_SALT + epoch) * 100.0,
                sup,
                &mut body.retries,
                &mut body.notes,
                epoch,
            )?;
        }
        gnn_device::with(|s| s.end_step());

        let mut now = 0.0;
        gnn_device::with(|s| now = s.now());
        body.epoch_times.push(now - last_mark);
        last_mark = now;
        tracker.emit(
            f64::from(last_loss),
            Some(val_acc / 100.0),
            f64::from(cfg.lr),
        );
        body.losses.push(f64::from(last_loss));
        epoch += 1;

        rollback = (capture(&opt, &rng, &body, epoch), order.clone());
        if let Some(path) = &sup.checkpoint_path {
            if epoch.is_multiple_of(sup.checkpoint_every) {
                rollback.0.save(path).map_err(TrainError::Checkpoint)?;
            }
        }
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::{stratified_kfold, CitationSpec, TudSpec};
    use gnn_faults::{FaultKind, FaultPlan};
    use gnn_models::adapt::RustygLoader;
    use gnn_models::{build, ModelKind};

    fn node_fixture() -> (
        GnnStack<rustyg::Batch>,
        rustyg::Batch,
        gnn_datasets::NodeDataset,
    ) {
        let ds = CitationSpec::cora().scaled(0.08).generate(7);
        let mut rng = StdRng::seed_from_u64(7);
        let model = build::node_model_rustyg(ModelKind::Gcn, 1433, 7, &mut rng);
        let batch = rustyg::loader::full_graph_batch(&ds);
        (model, batch, ds)
    }

    fn node_cfg() -> NodeTaskConfig {
        NodeTaskConfig {
            max_epochs: 5,
            lr: 0.01,
        }
    }

    #[test]
    fn supervised_node_matches_dimensions() {
        let (model, batch, ds) = node_fixture();
        let out =
            run_node_task_supervised(&model, &batch, &ds, &node_cfg(), &Supervisor::default())
                .unwrap();
        assert_eq!(out.outcome.epochs, 5);
        assert_eq!(out.losses.len(), 5);
        assert_eq!(out.retries, 0);
        assert!(!out.degraded);
    }

    #[test]
    fn transient_faults_are_retried_and_metrics_unchanged() {
        let (model, batch, ds) = node_fixture();
        let clean =
            run_node_task_supervised(&model, &batch, &ds, &node_cfg(), &Supervisor::default())
                .unwrap();

        let (model, batch, ds) = node_fixture();
        let plan = FaultPlan::empty()
            .with(FaultKind::Oom { at: 30 })
            .with(FaultKind::KernelFault { at: 100 });
        let h = gnn_faults::install(plan);
        let faulted =
            run_node_task_supervised(&model, &batch, &ds, &node_cfg(), &Supervisor::default())
                .unwrap();
        let log = gnn_faults::finish(h);

        assert_eq!(log.len(), 2, "both faults must fire: {:?}", log.events);
        assert!(faulted.retries >= 2);
        assert_eq!(
            clean.losses, faulted.losses,
            "retried run must be bit-identical"
        );
        assert_eq!(clean.outcome.test_acc, faulted.outcome.test_acc);
        assert_eq!(clean.outcome.best_val_acc, faulted.outcome.best_val_acc);
    }

    #[test]
    fn nan_poisoning_rolls_back_and_recovers() {
        let (model, batch, ds) = node_fixture();
        let clean =
            run_node_task_supervised(&model, &batch, &ds, &node_cfg(), &Supervisor::default())
                .unwrap();

        let (model, batch, ds) = node_fixture();
        let h = gnn_faults::install(FaultPlan::empty().with(FaultKind::NanLoss { epoch: 2 }));
        let poisoned =
            run_node_task_supervised(&model, &batch, &ds, &node_cfg(), &Supervisor::default())
                .unwrap();
        let log = gnn_faults::finish(h);

        assert_eq!(log.len(), 1);
        assert!(poisoned.notes.iter().any(|n| n.contains("rolled back")));
        assert_eq!(clean.losses, poisoned.losses, "replay must be clean");
    }

    #[test]
    fn kernel_fault_beyond_budget_is_typed_not_a_panic() {
        let (model, batch, ds) = node_fixture();
        // A kernel fault on every launch: retries cannot win.
        let plan = (1..=2000u64).fold(FaultPlan::empty(), |p, i| {
            p.with(FaultKind::KernelFault { at: i })
        });
        let h = gnn_faults::install(plan);
        let err = run_node_task_supervised(
            &model,
            &batch,
            &ds,
            &NodeTaskConfig {
                max_epochs: 200,
                lr: 0.01,
            },
            &Supervisor {
                max_retries: 1,
                ..Supervisor::default()
            },
        )
        .unwrap_err();
        gnn_faults::finish(h);
        assert!(matches!(err, TrainError::RetriesExhausted { .. }), "{err}");
        assert!(err.to_string().contains("kernel fault"));
    }

    #[test]
    fn graph_memlimit_halves_batch_and_continues() {
        let ds = TudSpec::enzymes().scaled(0.2).generate(8);
        let folds = stratified_kfold(&ds.labels(), 10, 8);
        let mut rng = StdRng::seed_from_u64(8);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        let loader = RustygLoader::new(&ds);
        let cfg = GraphTaskConfig {
            batch_size: 32,
            init_lr: 1e-3,
            patience: 5,
            decay_factor: 0.5,
            min_lr: 1e-6,
            max_epochs: 2,
            seed: 8,
            shuffle: true,
        };
        // A ceiling one byte under the fault-free peak: the peak-reaching
        // allocation (a full-size training batch) must fail, while halved
        // batches fit.
        let probe =
            run_graph_fold_supervised(&model, &loader, &folds[0], &cfg, &Supervisor::default())
                .unwrap();
        let limit = probe.outcome.report.peak_memory - 1;

        let mut rng = StdRng::seed_from_u64(8);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        let h = gnn_faults::install(FaultPlan::empty().with(FaultKind::MemLimit { bytes: limit }));
        let out =
            run_graph_fold_supervised(&model, &loader, &folds[0], &cfg, &Supervisor::default())
                .unwrap();
        let log = gnn_faults::finish(h);

        assert!(out.degraded, "memory ceiling must trigger degradation");
        assert!(!log.is_empty());
        assert!(
            out.notes.iter().any(|n| n.contains("halving batch size")),
            "{:?}",
            out.notes
        );
        assert!(out.outcome.epochs > 0);
    }

    #[test]
    fn checkpoint_resume_reproduces_loss_curve() {
        let dir = std::env::temp_dir().join("gnn-sup-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.ckpt");
        std::fs::remove_file(&path).ok();

        let cfg = NodeTaskConfig {
            max_epochs: 6,
            lr: 0.01,
        };
        let (model, batch, ds) = node_fixture();
        let full =
            run_node_task_supervised(&model, &batch, &ds, &cfg, &Supervisor::default()).unwrap();

        // "Kill" a checkpointing run at epoch 3...
        let (model, batch, ds) = node_fixture();
        let sup = Supervisor::default().with_checkpoint(&path);
        run_node_task_supervised(
            &model,
            &batch,
            &ds,
            &NodeTaskConfig {
                max_epochs: 3,
                lr: 0.01,
            },
            &sup,
        )
        .unwrap();

        // ...and resume it on a *fresh* model to the full horizon.
        let (model, batch, ds) = node_fixture();
        let resumed =
            run_node_task_supervised(&model, &batch, &ds, &cfg, &sup.clone().with_resume(true))
                .unwrap();

        assert_eq!(
            full.losses, resumed.losses,
            "loss curve must be bit-identical"
        );
        assert_eq!(full.outcome.test_acc, resumed.outcome.test_acc);
        assert_eq!(full.outcome.best_val_acc, resumed.outcome.best_val_acc);
        std::fs::remove_file(&path).ok();
    }
}
