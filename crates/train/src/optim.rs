//! Adam optimizer (Kingma & Ba) — the optimizer of every experiment in the
//! paper.

use gnn_device::{record, Kernel};
use gnn_tensor::{NdArray, Tensor};

/// Adam with PyTorch defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
///
/// The update is applied in place to the parameters' data buffers; the tape
/// is untouched. Each parameter update records one fused elementwise kernel
/// plus a small host dispatch, modelling the per-parameter launches of
/// torch's (non-fused) Adam.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<NdArray>,
    v: Vec<NdArray>,
    t: i32,
}

/// Host dispatch cost per parameter update (several small torch ops).
const UPDATE_DISPATCH: f64 = 12e-6;

impl Adam {
    /// Creates an optimizer over `params` with learning rate `lr`.
    ///
    /// Registers the moment buffers as persistent device memory (they live
    /// for the whole run, like PyTorch optimizer state).
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty or `lr` is not positive.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        assert!(!params.is_empty(), "no parameters to optimize");
        assert!(lr > 0.0, "learning rate must be positive");
        let m: Vec<NdArray> = params
            .iter()
            .map(|p| NdArray::zeros(p.shape().0, p.shape().1))
            .collect();
        let v = m.clone();
        let state_bytes: u64 = m.iter().map(|a| 2 * a.byte_size()).sum();
        gnn_device::with(|s| s.alloc_persistent(state_bytes));
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m,
            v,
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (used by the plateau scheduler).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Number of optimized parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Applies one Adam step from the accumulated gradients; parameters
    /// without a gradient are skipped.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, p) in self.params.iter().enumerate() {
            let Some(grad) = p.grad() else { continue };
            gnn_device::host(UPDATE_DISPATCH);
            record(Kernel::elementwise("adam_step", grad.len(), 8, 5));
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let mut data = p.data_mut();
            for ((w, g), (mi, vi)) in data
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// The optimized parameters, in registration order.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Snapshot of the optimizer state: first moments, second moments, and
    /// the step counter. Checkpoint/rollback machinery captures this to
    /// reproduce a run exactly.
    pub fn state(&self) -> (Vec<NdArray>, Vec<NdArray>, i32) {
        (self.m.clone(), self.v.clone(), self.t)
    }

    /// Restores state captured by [`Adam::state`].
    ///
    /// # Panics
    ///
    /// Panics if the moment vectors do not match the parameter count.
    pub fn restore_state(&mut self, m: Vec<NdArray>, v: Vec<NdArray>, t: i32) {
        assert_eq!(m.len(), self.params.len(), "moment/param count mismatch");
        assert_eq!(v.len(), self.params.len(), "moment/param count mismatch");
        self.m = m;
        self.v = v;
        self.t = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_tensor::cross_entropy;

    #[test]
    fn converges_on_quadratic() {
        // minimize (w - 3)^2 via autograd square op chain.
        let w = Tensor::param(NdArray::scalar(0.0));
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        for _ in 0..200 {
            let diff = w.add_scalar(-3.0);
            let loss = diff.mul(&diff);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!((w.item() - 3.0).abs() < 0.05, "w = {}", w.item());
    }

    #[test]
    fn trains_linear_classifier() {
        let x = Tensor::new(NdArray::from_vec(
            4,
            2,
            vec![1., 0., 1., 1., -1., 0., -1., -1.],
        ));
        let w = Tensor::param(NdArray::zeros(2, 2));
        let labels = [0u32, 0, 1, 1];
        let mut opt = Adam::new(vec![w.clone()], 0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..100 {
            let loss = cross_entropy(&x.matmul(&w), &labels);
            last = loss.item();
            first.get_or_insert(last);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!(last < first.unwrap() * 0.3, "{last} vs {first:?}");
    }

    #[test]
    fn skips_params_without_grad() {
        let w = Tensor::param(NdArray::scalar(1.0));
        let untouched = Tensor::param(NdArray::scalar(5.0));
        let mut opt = Adam::new(vec![w.clone(), untouched.clone()], 0.1);
        let loss = w.mul(&w);
        loss.backward();
        opt.step();
        assert_eq!(untouched.item(), 5.0);
        assert_ne!(w.item(), 1.0);
    }

    #[test]
    fn set_lr_round_trips() {
        let w = Tensor::param(NdArray::scalar(0.0));
        let mut opt = Adam::new(vec![w], 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
        assert_eq!(opt.num_params(), 1);
    }

    #[test]
    #[should_panic(expected = "no parameters")]
    fn empty_params_rejected() {
        Adam::new(vec![], 0.1);
    }

    #[test]
    fn bias_correction_makes_first_step_lr_sized() {
        // With bias correction the very first step has magnitude ~lr,
        // regardless of gradient scale.
        let w = Tensor::param(NdArray::scalar(0.0));
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        let loss = w.scale(1000.0); // grad = 1000
        loss.backward();
        opt.step();
        assert!(
            (w.item() + 0.1).abs() < 1e-3,
            "first step {} should be ~ -lr",
            w.item()
        );
    }
}
