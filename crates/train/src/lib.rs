//! # gnn-train
//!
//! The training harness of the study: [`Adam`] with the paper's
//! plateau-decay schedule ([`ReduceLrOnPlateau`]), the full-batch
//! node-classification loop (Section IV-A: max 200 epochs on Cora/PubMed),
//! the mini-batch graph-classification loop (Section IV-B: batch 128,
//! stratified 10-fold CV, lr halved on 25-epoch validation plateaus until
//! 1e-6), per-phase epoch profiling (data loading / forward / backward /
//! update / other — the categories of Figs. 1–2), and the
//! `DataParallel`-style multi-GPU epoch composition behind Fig. 6.
//!
//! All loops are generic over the framework through
//! [`gnn_models::ModelBatch`] / [`gnn_models::Loader`], so the *same* code
//! trains a model under either framework — mirroring the paper's controlled
//! comparison ("we make sure that the key properties of the training
//! algorithm are the same across implementations").

pub mod checkpoint;
mod epoch_trace;
pub mod graph_task;
pub mod metrics;
pub mod multi_gpu;
pub mod node_task;
pub mod optim;
pub mod sampled_task;
pub mod scheduler;
pub mod supervisor;

pub use checkpoint::Checkpoint;
pub use graph_task::{
    run_cross_validation, run_graph_fold, CvOutcome, FoldOutcome, GraphTaskConfig,
};
pub use metrics::{mean_std, Summary};
pub use multi_gpu::{
    data_parallel_epoch_time, data_parallel_epoch_time_supervised, MultiGpuConfig,
};
pub use node_task::{run_node_task, NodeOutcome, NodeTaskConfig};
pub use optim::Adam;
pub use sampled_task::{
    run_sampled_task, SampledLoader, SampledTaskConfig, EVAL_SALT, TEST_POOL_SALT, TRAIN_POOL_SALT,
    VAL_POOL_SALT,
};
pub use scheduler::ReduceLrOnPlateau;
pub use supervisor::{
    run_graph_fold_supervised, run_node_task_supervised, run_sampled_task_supervised, Supervised,
    Supervisor, TrainError,
};
