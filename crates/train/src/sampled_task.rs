//! Neighbor-sampled node classification over giant synthetic graphs.
//!
//! The full-batch node loop (`node_task`) holds the whole graph on device;
//! this loop holds *nothing* but the feature cache. Every step draws a
//! mini-batch of seed nodes from a deterministic pool, asks the
//! framework's sampled loader for the union block (paying that framework's
//! sampling/collate/transfer tax), and takes the loss on the seed rows
//! only — the GraphSAGE training recipe.
//!
//! The loop is generic over [`SampledLoader`], implemented by
//! `rustyg::sampled::SampledLoader` and `rgl::sampled::SampledLoader`, so
//! the same code runs the paper-style controlled comparison on the
//! sampled workload class.

use gnn_device::Phase;
use gnn_models::{GnnStack, ModelBatch};
use gnn_tensor::{accuracy, cross_entropy};
use std::rc::Rc;

use crate::epoch_trace::EpochTracker;
use crate::node_task::NodeOutcome;
use crate::optim::Adam;

/// Salt separating the train/val/test seed pools of a sampled run.
pub const TRAIN_POOL_SALT: u64 = 0x7A1;
/// Validation-pool salt.
pub const VAL_POOL_SALT: u64 = 0x7A2;
/// Test-pool salt.
pub const TEST_POOL_SALT: u64 = 0x7A3;
/// Salt offset separating evaluation sampling from training sampling.
pub const EVAL_SALT: u64 = 1 << 32;

/// A framework-specific sampled-block loader the training loop can drive.
///
/// `load` takes seed node ids (all below [`SampledLoader::graph_nodes`])
/// and a salt, and must be *replayable*: the same `(seeds, salt)` yields a
/// bit-identical batch, so fault-retried steps and resumed runs recompute
/// the identical block.
pub trait SampledLoader {
    /// The framework's batch type.
    type Batch: ModelBatch;
    /// Loads the sampled union block for `seeds`. Seeds come first in the
    /// batch's node order; labels cover every union node.
    fn load(&self, seeds: &[u32], salt: u64) -> Self::Batch;
    /// Node count of the underlying graph.
    fn graph_nodes(&self) -> usize;
    /// Deterministic pool of `count` distinct seed nodes for `salt`.
    fn seed_pool(&self, count: usize, salt: u64) -> Vec<u32>;
    /// Bytes held resident on device across the run (the feature cache).
    fn resident_bytes(&self) -> u64;
    /// Stable name for traces (`<spec>/<sampler-kind>`).
    fn label(&self) -> String;
}

impl SampledLoader for rustyg::sampled::SampledLoader {
    type Batch = rustyg::Batch;

    fn load(&self, seeds: &[u32], salt: u64) -> rustyg::Batch {
        self.try_load_block(seeds, salt)
            .expect("training seeds come from the loader's own pool")
    }

    fn graph_nodes(&self) -> usize {
        self.graph().num_nodes()
    }

    fn seed_pool(&self, count: usize, salt: u64) -> Vec<u32> {
        self.graph().seed_pool(count, salt)
    }

    fn resident_bytes(&self) -> u64 {
        self.spec().cache_rows as u64 * self.spec().row_bytes()
    }

    fn label(&self) -> String {
        format!("{}/{}", self.spec().name, self.kind().label())
    }
}

impl SampledLoader for rgl::sampled::SampledLoader {
    type Batch = rgl::HeteroBatch;

    fn load(&self, seeds: &[u32], salt: u64) -> rgl::HeteroBatch {
        self.try_load_block(seeds, salt)
            .expect("training seeds come from the loader's own pool")
    }

    fn graph_nodes(&self) -> usize {
        self.graph().num_nodes()
    }

    fn seed_pool(&self, count: usize, salt: u64) -> Vec<u32> {
        self.graph().seed_pool(count, salt)
    }

    fn resident_bytes(&self) -> u64 {
        self.spec().cache_rows as u64 * self.spec().row_bytes()
    }

    fn label(&self) -> String {
        format!("{}/{}", self.spec().name, self.kind().label())
    }
}

/// Sampled-training run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledTaskConfig {
    /// Training epochs (one epoch = one pass over the seed pool).
    pub max_epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed nodes per mini-batch.
    pub batch_seeds: usize,
    /// Training-pool size in seed nodes.
    pub train_seeds: usize,
    /// Validation/test-pool size in seed nodes.
    pub eval_seeds: usize,
    /// Shuffle seed for the per-epoch pool order.
    pub seed: u64,
}

impl SampledTaskConfig {
    /// A small default sized for sweep cells: pools are a few batches.
    pub fn quick(batch_seeds: usize, seed: u64) -> Self {
        SampledTaskConfig {
            max_epochs: 3,
            lr: 0.01,
            batch_seeds,
            train_seeds: batch_seeds * 4,
            eval_seeds: batch_seeds,
            seed,
        }
    }
}

/// Evaluates accuracy over the seed rows of `pool`, in batches.
pub(crate) fn eval_sampled<L: SampledLoader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    pool: &[u32],
    batch_seeds: usize,
    salt: u64,
) -> f64 {
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    for chunk in pool.chunks(batch_seeds) {
        let batch = loader.load(chunk, salt);
        let logits = gnn_tensor::no_grad(|| model.forward(&batch, false));
        let ids: gnn_tensor::Ids = Rc::new((0..chunk.len() as u32).collect());
        let labels = &batch.labels()[..chunk.len()];
        correct_weighted += accuracy(&logits.gather_rows(&ids), labels) * chunk.len() as f64;
        total += chunk.len();
    }
    if total == 0 {
        0.0
    } else {
        correct_weighted / total as f64
    }
}

/// Trains `model` by neighbor-sampled mini-batches and reports the same
/// quantities as the full-batch node task.
///
/// # Panics
///
/// Panics if the config is degenerate (zero pools or batch); the
/// supervised variant in [`crate::supervisor`] adds fault tolerance,
/// checkpoint/resume, and typed errors on top of this protocol.
pub fn run_sampled_task<L: SampledLoader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    cfg: &SampledTaskConfig,
) -> NodeOutcome {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    assert!(cfg.batch_seeds > 0, "batch seeds must be positive");
    assert!(cfg.train_seeds > 0, "train pool must be non-empty");

    let handle =
        gnn_device::session::install(gnn_device::Session::new(gnn_device::default_cost_model()));
    gnn_device::with(|s| {
        s.alloc_persistent(2 * model.param_bytes() + loader.resident_bytes());
    });
    let mut opt = Adam::new(model.params(), cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut order = loader.seed_pool(cfg.train_seeds, TRAIN_POOL_SALT);
    let val_pool = loader.seed_pool(cfg.eval_seeds, VAL_POOL_SALT);
    let test_pool = loader.seed_pool(cfg.eval_seeds, TEST_POOL_SALT);

    let mut best_val = 0.0f64;
    let mut test_at_best = 0.0f64;
    let mut epoch_times = Vec::with_capacity(cfg.max_epochs);
    let mut last_mark = 0.0f64;
    let mut tracker = EpochTracker::new(format!("sample/{}/{}", model.name(), loader.label()));

    for epoch in 0..cfg.max_epochs as u64 {
        order.shuffle(&mut rng);
        let mut last_loss = 0.0f32;
        for chunk in order.chunks(cfg.batch_seeds) {
            gnn_device::set_phase(Phase::DataLoad);
            let batch = loader.load(chunk, epoch);
            gnn_device::set_phase(Phase::Forward);
            let logits = model.forward(&batch, true);
            let ids: gnn_tensor::Ids = Rc::new((0..chunk.len() as u32).collect());
            let labels: Vec<u32> = batch.labels()[..chunk.len()].to_vec();
            let loss = cross_entropy(&logits.gather_rows(&ids), &labels);
            gnn_device::set_phase(Phase::Backward);
            loss.backward();
            gnn_device::set_phase(Phase::Update);
            opt.step();
            opt.zero_grad();
            last_loss = loss.item();
        }

        gnn_device::set_phase(Phase::Other);
        let val_acc =
            eval_sampled(model, loader, &val_pool, cfg.batch_seeds, EVAL_SALT + epoch) * 100.0;
        if val_acc > best_val {
            best_val = val_acc;
            test_at_best = eval_sampled(
                model,
                loader,
                &test_pool,
                cfg.batch_seeds,
                EVAL_SALT + epoch,
            ) * 100.0;
        }
        gnn_device::with(|s| s.end_step());

        let mut now = 0.0;
        gnn_device::with(|s| now = s.now());
        epoch_times.push(now - last_mark);
        last_mark = now;
        tracker.emit(
            f64::from(last_loss),
            Some(val_acc / 100.0),
            f64::from(cfg.lr),
        );
    }

    let report = gnn_device::session::finish(handle);
    let total_time: f64 = epoch_times.iter().sum();
    NodeOutcome {
        test_acc: test_at_best,
        best_val_acc: best_val,
        epochs: cfg.max_epochs,
        epoch_time: total_time / cfg.max_epochs.max(1) as f64,
        total_time,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_models::{build, ModelKind};
    use gnn_sample::{RmatGraph, SampleSpec, SamplerKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::rc::Rc as StdRc;

    fn fixture() -> (
        GnnStack<rustyg::Batch>,
        rustyg::sampled::SampledLoader,
        SampledTaskConfig,
    ) {
        let spec = SampleSpec::get("rmat-4k").unwrap();
        let graph = StdRc::new(RmatGraph::generate(spec.rmat).unwrap());
        let loader =
            rustyg::sampled::SampledLoader::new(graph, &spec, SamplerKind::Neighbor).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let model = build::node_model_rustyg(
            ModelKind::Sage,
            spec.rmat.feature_dim,
            spec.rmat.num_classes,
            &mut rng,
        );
        (model, loader, SampledTaskConfig::quick(32, 5))
    }

    #[test]
    fn sampled_training_runs_and_reports() {
        let (model, loader, cfg) = fixture();
        let out = run_sampled_task(&model, &loader, &cfg);
        assert_eq!(out.epochs, 3);
        assert!(out.total_time > 0.0);
        assert!(out.report.kernel_count > 0);
        assert!(out.best_val_acc >= 0.0 && out.best_val_acc <= 100.0);
        // DataLoad phase is charged (the sampled loaders' collate path).
        assert!(out.report.phase_time(gnn_device::Phase::DataLoad) > 0.0);
    }

    #[test]
    fn sampled_training_is_deterministic() {
        let run = || {
            let (model, loader, cfg) = fixture();
            let out = run_sampled_task(&model, &loader, &cfg);
            (
                out.best_val_acc.to_bits(),
                out.test_acc.to_bits(),
                out.total_time.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sampled_labels_are_learnable() {
        // With class-biased features, even a short run should beat chance
        // (12.5% over 8 classes) on validation seeds.
        let (model, loader, mut cfg) = fixture();
        cfg.max_epochs = 6;
        cfg.train_seeds = 256;
        let out = run_sampled_task(&model, &loader, &cfg);
        assert!(
            out.best_val_acc > 12.5,
            "best val {} should beat chance",
            out.best_val_acc
        );
    }
}
