//! Per-epoch metrics emission into the `gnn-obs` stream.
//!
//! Both training loops drive an [`EpochTracker`]: once per epoch it
//! snapshots the live session (phase times, kernel counts by kind, FLOP
//! and byte totals, peak memory, utilization) through the non-mutating
//! accessors, diffs against the previous epoch through a
//! [`gnn_obs::MetricsRegistry`] — gauges for monotone phase times,
//! counters for launch/FLOP/byte totals — and emits one
//! [`gnn_obs::EpochRecord`] plus an `epoch` instant on the `train` track.
//! Everything short-circuits when no collector is installed, so untraced
//! runs pay only an `is_active()` check per epoch.

use gnn_device::session::PHASES;
use gnn_device::Phase;
use gnn_obs as obs;
use gnn_obs::MetricsRegistry;

pub(crate) struct EpochTracker {
    run: String,
    epoch: u32,
    /// Snapshot-diffing state: `phase/<label>` gauges, `kind/<label>`,
    /// `flops`, and `bytes` counters, each advanced to the session's
    /// running total once per epoch.
    registry: MetricsRegistry,
}

impl EpochTracker {
    pub(crate) fn new(run: String) -> Self {
        EpochTracker {
            run,
            epoch: 0,
            registry: MetricsRegistry::new(),
        }
    }

    /// Emits the record for the epoch that just finished. Call at the end
    /// of each epoch, when the loop's current phase is [`Phase::Other`].
    pub(crate) fn emit(&mut self, loss: f64, accuracy: Option<f64>, lr: f64) {
        if !obs::is_active() {
            return;
        }
        // Flush the open phase span so the deltas cover the whole epoch.
        // Attribution-neutral: the time would land in Other at the next
        // transition anyway, and the loop has already synchronized.
        gnn_device::set_phase(Phase::Other);
        let Some((phases, kinds, (flops_total, bytes_total), peak, util, sim)) =
            gnn_device::session::query(|s| {
                (
                    s.phase_times_so_far(),
                    s.kind_counts_so_far().to_vec(),
                    s.counter_totals_so_far(),
                    s.memory().peak(),
                    s.utilization_so_far(),
                    s.sim_now(),
                )
            })
        else {
            return;
        };
        let phase_times: Vec<(String, f64)> = PHASES
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let dt = self
                    .registry
                    .gauge(&format!("phase/{}", p.label()))
                    .advance_to(phases[i]);
                (p.label().to_owned(), dt)
            })
            .filter(|(_, dt)| *dt > 0.0)
            .collect();
        let kernel_counts: Vec<(String, u64)> = kinds
            .iter()
            .map(|(kind, n)| {
                let dn = self
                    .registry
                    .counter(&format!("kind/{}", kind.label()))
                    .advance_to(*n);
                (kind.label().to_owned(), dn)
            })
            .filter(|(_, dn)| *dn > 0)
            .collect();
        let flops = self.registry.counter("flops").advance_to(flops_total);
        let bytes = self.registry.counter("bytes").advance_to(bytes_total);
        obs::instant(
            obs::tracks::TRAIN,
            "epoch",
            sim,
            vec![
                ("run".to_owned(), obs::Value::from(self.run.as_str())),
                ("epoch".to_owned(), obs::Value::from(self.epoch)),
                ("loss".to_owned(), obs::Value::Num(loss)),
                (
                    "accuracy".to_owned(),
                    accuracy.map(obs::Value::Num).unwrap_or(obs::Value::Null),
                ),
                ("lr".to_owned(), obs::Value::Num(lr)),
            ],
        );
        obs::epoch(obs::EpochRecord {
            run: self.run.clone(),
            epoch: self.epoch,
            loss,
            accuracy,
            lr,
            phase_times,
            kernel_counts,
            flops,
            bytes,
            peak_memory: peak,
            utilization: util,
            sim_time: sim,
            wall_time: 0.0, // stamped by the collector
        });
        self.epoch += 1;
    }
}
