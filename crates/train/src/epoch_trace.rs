//! Per-epoch metrics emission into the `gnn-obs` stream.
//!
//! Both training loops drive an [`EpochTracker`]: once per epoch it
//! snapshots the live session (phase times, kernel counts by kind, peak
//! memory, utilization) through the non-mutating accessors, diffs against
//! the previous epoch's snapshot, and emits one [`gnn_obs::EpochRecord`]
//! plus an `epoch` instant on the `train` track. Everything short-circuits
//! when no collector is installed, so untraced runs pay only an
//! `is_active()` check per epoch.

use gnn_device::session::PHASES;
use gnn_device::{KernelKind, Phase};
use gnn_obs as obs;

pub(crate) struct EpochTracker {
    run: String,
    epoch: u32,
    prev_phases: [f64; 5],
    prev_kinds: Vec<(KernelKind, u64)>,
}

impl EpochTracker {
    pub(crate) fn new(run: String) -> Self {
        EpochTracker {
            run,
            epoch: 0,
            prev_phases: [0.0; 5],
            prev_kinds: Vec::new(),
        }
    }

    /// Emits the record for the epoch that just finished. Call at the end
    /// of each epoch, when the loop's current phase is [`Phase::Other`].
    pub(crate) fn emit(&mut self, loss: f64, accuracy: Option<f64>, lr: f64) {
        if !obs::is_active() {
            return;
        }
        // Flush the open phase span so the deltas cover the whole epoch.
        // Attribution-neutral: the time would land in Other at the next
        // transition anyway, and the loop has already synchronized.
        gnn_device::set_phase(Phase::Other);
        let Some((phases, kinds, peak, util, sim)) = gnn_device::session::query(|s| {
            (
                s.phase_times_so_far(),
                s.kind_counts_so_far().to_vec(),
                s.memory().peak(),
                s.utilization_so_far(),
                s.sim_now(),
            )
        }) else {
            return;
        };
        let phase_times: Vec<(String, f64)> = PHASES
            .iter()
            .enumerate()
            .map(|(i, p)| (p.label().to_owned(), phases[i] - self.prev_phases[i]))
            .filter(|(_, dt)| *dt > 0.0)
            .collect();
        let kernel_counts: Vec<(String, u64)> = kinds
            .iter()
            .map(|(kind, n)| {
                let prev = self
                    .prev_kinds
                    .iter()
                    .find(|(k, _)| k == kind)
                    .map_or(0, |(_, n)| *n);
                (kind.label().to_owned(), n - prev)
            })
            .filter(|(_, dn)| *dn > 0)
            .collect();
        obs::instant(
            obs::tracks::TRAIN,
            "epoch",
            sim,
            vec![
                ("run".to_owned(), obs::Value::from(self.run.as_str())),
                ("epoch".to_owned(), obs::Value::from(self.epoch)),
                ("loss".to_owned(), obs::Value::Num(loss)),
                (
                    "accuracy".to_owned(),
                    accuracy.map(obs::Value::Num).unwrap_or(obs::Value::Null),
                ),
                ("lr".to_owned(), obs::Value::Num(lr)),
            ],
        );
        obs::epoch(obs::EpochRecord {
            run: self.run.clone(),
            epoch: self.epoch,
            loss,
            accuracy,
            lr,
            phase_times,
            kernel_counts,
            peak_memory: peak,
            utilization: util,
            sim_time: sim,
            wall_time: 0.0, // stamped by the collector
        });
        self.prev_phases = phases;
        self.prev_kinds = kinds;
        self.epoch += 1;
    }
}
