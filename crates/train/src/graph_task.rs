//! Mini-batch graph classification (the paper's Section IV-B protocol).

use gnn_datasets::Fold;
use gnn_device::{DeviceReport, Phase, Session};
use gnn_models::{GnnStack, GraphHParams, Loader, ModelBatch};
use gnn_tensor::{accuracy, cross_entropy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::epoch_trace::EpochTracker;
use crate::optim::Adam;
use crate::scheduler::ReduceLrOnPlateau;

/// Graph-classification run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphTaskConfig {
    /// Mini-batch size (the paper uses 128).
    pub batch_size: usize,
    /// Initial Adam learning rate (Table III).
    pub init_lr: f32,
    /// Plateau patience in epochs.
    pub patience: usize,
    /// Decay factor on plateau.
    pub decay_factor: f32,
    /// Stop once the lr decays to this value.
    pub min_lr: f32,
    /// Hard epoch cap (the paper trains until lr hits the floor; laptop
    /// runs cap it).
    pub max_epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Reshuffle the training set every epoch. Pre-batched pipelines (see
    /// `rustyg::CachedLoader`) fix the batch composition instead.
    pub shuffle: bool,
}

impl GraphTaskConfig {
    /// Builds a config from Table III hyper-parameters with an epoch cap.
    pub fn from_hparams(hp: &GraphHParams, max_epochs: usize, seed: u64) -> Self {
        GraphTaskConfig {
            batch_size: hp.batch_size,
            init_lr: hp.init_lr,
            patience: hp.patience,
            decay_factor: hp.decay_factor,
            min_lr: hp.min_lr,
            max_epochs,
            seed,
            shuffle: true,
        }
    }
}

/// Result of training on one cross-validation fold.
#[derive(Debug, Clone)]
pub struct FoldOutcome {
    /// Test accuracy at the end of training, in percent.
    pub test_acc: f64,
    /// Epochs trained before the lr floor / cap.
    pub epochs: usize,
    /// Mean simulated seconds per epoch (training + validation).
    pub epoch_time: f64,
    /// Total simulated seconds.
    pub total_time: f64,
    /// Full device report.
    pub report: DeviceReport,
}

/// Trains `model` on `fold.train`, schedules on `fold.val`, and evaluates
/// on `fold.test` — one fold of the paper's 10-fold protocol.
///
/// # Panics
///
/// Panics if the fold's training split is empty or the batch size is zero.
pub fn run_graph_fold<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    fold: &Fold,
    cfg: &GraphTaskConfig,
) -> FoldOutcome {
    assert!(!fold.train.is_empty(), "empty training fold");
    assert!(cfg.batch_size > 0, "batch size must be positive");

    let handle = gnn_device::session::install(Session::new(gnn_device::default_cost_model()));
    gnn_device::with(|s| s.alloc_persistent(2 * model.param_bytes()));
    let mut opt = Adam::new(model.params(), cfg.init_lr);
    let mut sched = ReduceLrOnPlateau::new(cfg.decay_factor, cfg.patience, cfg.min_lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut epoch_times = Vec::new();
    let mut last_mark = 0.0f64;
    let mut order = fold.train.clone();
    let mut tracker = EpochTracker::new(format!("graph/{}/bs{}", model.name(), cfg.batch_size));

    for _epoch in 0..cfg.max_epochs {
        if cfg.shuffle {
            order.shuffle(&mut rng);
        }
        for chunk in order.chunks(cfg.batch_size) {
            gnn_device::set_phase(Phase::DataLoad);
            let batch = loader.load(chunk);

            gnn_device::set_phase(Phase::Forward);
            let logits = model.forward(&batch, true);
            let loss = cross_entropy(&logits, batch.labels());

            gnn_device::set_phase(Phase::Backward);
            loss.backward();

            gnn_device::set_phase(Phase::Update);
            opt.step();
            opt.zero_grad();

            gnn_device::set_phase(Phase::Other);
            gnn_device::with(|s| s.end_step());
        }

        // Validation pass (inference mode, attributed to "other").
        let (val_loss, val_acc) = evaluate(model, loader, &fold.val, cfg.batch_size);
        let new_lr = sched.step(val_loss, opt.lr());
        if new_lr != opt.lr() {
            opt.set_lr(new_lr);
        }

        let mut now = 0.0;
        gnn_device::with(|s| now = s.now());
        epoch_times.push(now - last_mark);
        last_mark = now;
        tracker.emit(f64::from(val_loss), Some(val_acc), f64::from(opt.lr()));

        if sched.should_stop(opt.lr()) {
            break;
        }
    }

    // Final test evaluation ("the model parameters at the end of training
    // are used for evaluations on test sets").
    let (_, test_acc) = evaluate(model, loader, &fold.test, cfg.batch_size);

    let report = gnn_device::session::finish(handle);
    let epochs = epoch_times.len();
    let total_time: f64 = epoch_times.iter().sum();
    FoldOutcome {
        test_acc: test_acc * 100.0,
        epochs,
        epoch_time: total_time / epochs.max(1) as f64,
        total_time,
        report,
    }
}

/// Mean loss and accuracy over `indices`, batched, in inference mode.
pub fn evaluate<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    indices: &[u32],
    batch_size: usize,
) -> (f32, f64) {
    if indices.is_empty() {
        return (f32::INFINITY, 0.0);
    }
    let mut total_loss = 0.0f64;
    let mut total_correct = 0.0f64;
    let mut total = 0usize;
    for chunk in indices.chunks(batch_size) {
        let batch = loader.load(chunk);
        // Inference mode: no tape, like torch.no_grad() around validation.
        let logits = gnn_tensor::no_grad(|| model.forward(&batch, false));
        let loss = cross_entropy(&logits, batch.labels());
        total_loss += f64::from(loss.item()) * chunk.len() as f64;
        total_correct += accuracy(&logits, batch.labels()) * chunk.len() as f64;
        total += chunk.len();
        gnn_device::with(|s| s.end_step());
    }
    (
        (total_loss / total as f64) as f32,
        total_correct / total as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::{stratified_kfold, TudSpec};
    use gnn_models::adapt::{RglLoader, RustygLoader};
    use gnn_models::{build, ModelKind};

    fn quick_cfg(max_epochs: usize) -> GraphTaskConfig {
        GraphTaskConfig {
            batch_size: 32,
            init_lr: 1e-3,
            patience: 5,
            decay_factor: 0.5,
            min_lr: 1e-6,
            max_epochs,
            seed: 0,
            shuffle: true,
        }
    }

    #[test]
    fn gcn_learns_enzymes_fold() {
        let ds = TudSpec::enzymes().scaled(0.3).generate(0);
        let folds = stratified_kfold(&ds.labels(), 10, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        let loader = RustygLoader::new(&ds);
        let out = run_graph_fold(&model, &loader, &folds[0], &quick_cfg(8));
        assert!(out.epochs > 0 && out.epochs <= 8);
        assert!(
            out.test_acc > 25.0,
            "GCN should beat 6-class chance (16.7%), got {}",
            out.test_acc
        );
        assert!(out.report.phase_time(Phase::DataLoad) > 0.0);
    }

    #[test]
    fn dgl_epoch_slower_than_pyg_same_model() {
        // The paper's headline: training-time performance of DGL is worse.
        let ds = TudSpec::enzymes().scaled(0.2).generate(1);
        let folds = stratified_kfold(&ds.labels(), 10, 1);
        let cfg = quick_cfg(2);

        let mut rng = StdRng::seed_from_u64(1);
        let pyg_model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        let pyg_loader = RustygLoader::new(&ds);
        let pyg = run_graph_fold(&pyg_model, &pyg_loader, &folds[0], &cfg);

        let mut rng = StdRng::seed_from_u64(1);
        let dgl_model = build::graph_model_rgl(ModelKind::Gcn, 18, 6, &mut rng);
        let dgl_loader = RglLoader::new(&ds);
        let dgl = run_graph_fold(&dgl_model, &dgl_loader, &folds[0], &cfg);

        assert!(
            dgl.epoch_time > pyg.epoch_time,
            "DGL epoch {} must exceed PyG epoch {}",
            dgl.epoch_time,
            pyg.epoch_time
        );
    }

    #[test]
    fn lr_floor_stops_training_early() {
        let ds = TudSpec::enzymes().scaled(0.2).generate(2);
        let folds = stratified_kfold(&ds.labels(), 10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        let loader = RustygLoader::new(&ds);
        // Initial lr already at the floor: the run must stop after the
        // first epoch regardless of the validation trajectory.
        let cfg = GraphTaskConfig {
            batch_size: 32,
            init_lr: 1e-4,
            patience: 0,
            decay_factor: 0.5,
            min_lr: 1e-4,
            max_epochs: 50,
            seed: 2,
            shuffle: true,
        };
        let out = run_graph_fold(&model, &loader, &folds[0], &cfg);
        assert_eq!(out.epochs, 1, "lr floor must stop training immediately");
    }
}

/// Result of a full cross-validation run.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// Per-fold outcomes, in fold order.
    pub folds: Vec<FoldOutcome>,
    /// Test accuracy mean ± s.d. over folds, percent.
    pub accuracy: crate::metrics::Summary,
    /// Mean simulated seconds per epoch over folds.
    pub epoch_time: f64,
    /// Mean simulated total seconds over folds.
    pub total_time: f64,
}

/// Runs the paper's full cross-validation protocol: a fresh model per fold
/// (from `make_model`), trained with `cfg`, aggregated as mean ± s.d. —
/// "the reported performance is the average and standard deviation over all
/// the 10 folds" (Section IV-B).
///
/// # Panics
///
/// Panics if `folds` is empty.
pub fn run_cross_validation<L: Loader>(
    make_model: impl Fn(usize) -> GnnStack<L::Batch>,
    loader: &L,
    folds: &[Fold],
    cfg: &GraphTaskConfig,
) -> CvOutcome {
    assert!(!folds.is_empty(), "need at least one fold");
    let outcomes: Vec<FoldOutcome> = folds
        .iter()
        .enumerate()
        .map(|(i, fold)| {
            let model = make_model(i);
            run_graph_fold(&model, loader, fold, cfg)
        })
        .collect();
    let accs: Vec<f64> = outcomes.iter().map(|o| o.test_acc).collect();
    let epochs: Vec<f64> = outcomes.iter().map(|o| o.epoch_time).collect();
    let totals: Vec<f64> = outcomes.iter().map(|o| o.total_time).collect();
    CvOutcome {
        accuracy: crate::metrics::mean_std(&accs),
        epoch_time: crate::metrics::mean_std(&epochs).mean,
        total_time: crate::metrics::mean_std(&totals).mean,
        folds: outcomes,
    }
}

#[cfg(test)]
mod cv_tests {
    use super::*;
    use gnn_datasets::{stratified_kfold, TudSpec};
    use gnn_models::adapt::RustygLoader;
    use gnn_models::{build, ModelKind};

    #[test]
    fn cross_validation_aggregates() {
        let ds = TudSpec::enzymes().scaled(0.15).generate(4);
        let folds = stratified_kfold(&ds.labels(), 10, 4);
        let loader = RustygLoader::new(&ds);
        let cfg = GraphTaskConfig {
            batch_size: 16,
            init_lr: 1e-3,
            patience: 100,
            decay_factor: 0.5,
            min_lr: 1e-9,
            max_epochs: 2,
            seed: 4,
            shuffle: true,
        };
        let cv = run_cross_validation(
            |i| {
                let mut rng = StdRng::seed_from_u64(40 + i as u64);
                build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng)
            },
            &loader,
            &folds[..2],
            &cfg,
        );
        assert_eq!(cv.folds.len(), 2);
        assert!(cv.epoch_time > 0.0);
        assert!(cv.accuracy.std >= 0.0);
        let manual: Vec<f64> = cv.folds.iter().map(|f| f.test_acc).collect();
        assert_eq!(cv.accuracy.mean, crate::metrics::mean_std(&manual).mean);
    }

    #[test]
    #[should_panic(expected = "at least one fold")]
    fn empty_folds_rejected() {
        let ds = TudSpec::enzymes().scaled(0.1).generate(5);
        let loader = RustygLoader::new(&ds);
        let cfg = GraphTaskConfig {
            batch_size: 8,
            init_lr: 1e-3,
            patience: 1,
            decay_factor: 0.5,
            min_lr: 1e-6,
            max_epochs: 1,
            seed: 0,
            shuffle: true,
        };
        run_cross_validation(
            |_| {
                let mut rng = StdRng::seed_from_u64(0);
                build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng)
            },
            &loader,
            &[],
            &cfg,
        );
    }
}
