//! Learning-rate scheduling: reduce-on-plateau with an lr-floor stopping
//! rule, exactly the paper's Section IV-B protocol.

/// Halves the learning rate when the validation loss stops improving.
///
/// "The learning rate is reduced by half, i.e. reduce factor 0.5, if the
/// validation loss does not decrease after 25 epochs. The training stops
/// when the learning rate decays to a value of 1e-6 or less."
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceLrOnPlateau {
    factor: f32,
    patience: usize,
    min_lr: f32,
    best: f32,
    epochs_since_best: usize,
}

impl ReduceLrOnPlateau {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor < 1`.
    pub fn new(factor: f32, patience: usize, min_lr: f32) -> Self {
        assert!(
            factor > 0.0 && factor < 1.0,
            "decay factor {factor} out of (0, 1)"
        );
        ReduceLrOnPlateau {
            factor,
            patience,
            min_lr,
            best: f32::INFINITY,
            epochs_since_best: 0,
        }
    }

    /// The paper's setting: factor 0.5, patience 25, floor 1e-6.
    pub fn paper_default() -> Self {
        ReduceLrOnPlateau::new(0.5, 25, 1e-6)
    }

    /// Feeds one epoch's validation loss; returns the (possibly reduced)
    /// learning rate to use next.
    pub fn step(&mut self, val_loss: f32, current_lr: f32) -> f32 {
        if val_loss < self.best {
            self.best = val_loss;
            self.epochs_since_best = 0;
            current_lr
        } else {
            self.epochs_since_best += 1;
            if self.epochs_since_best > self.patience {
                self.epochs_since_best = 0;
                current_lr * self.factor
            } else {
                current_lr
            }
        }
    }

    /// Whether training should stop (`lr` has decayed to the floor).
    pub fn should_stop(&self, lr: f32) -> bool {
        lr <= self.min_lr
    }

    /// Snapshot of the mutable scheduler state `(best, epochs_since_best)`
    /// for checkpoint/rollback.
    pub fn state(&self) -> (f32, usize) {
        (self.best, self.epochs_since_best)
    }

    /// Restores state captured by [`ReduceLrOnPlateau::state`].
    pub fn restore_state(&mut self, best: f32, epochs_since_best: usize) {
        self.best = best;
        self.epochs_since_best = epochs_since_best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improving_loss_keeps_lr() {
        let mut s = ReduceLrOnPlateau::new(0.5, 3, 1e-6);
        let mut lr = 0.1;
        for i in 0..10 {
            lr = s.step(1.0 / (i + 1) as f32, lr);
        }
        assert_eq!(lr, 0.1);
    }

    #[test]
    fn plateau_halves_after_patience() {
        let mut s = ReduceLrOnPlateau::new(0.5, 3, 1e-6);
        let mut lr = 0.1;
        lr = s.step(1.0, lr); // best
        for _ in 0..3 {
            lr = s.step(1.0, lr); // within patience
            assert_eq!(lr, 0.1);
        }
        lr = s.step(1.0, lr); // patience exceeded
        assert_eq!(lr, 0.05);
    }

    #[test]
    fn counter_resets_after_reduction() {
        let mut s = ReduceLrOnPlateau::new(0.5, 1, 1e-6);
        let mut lr = 0.1;
        lr = s.step(1.0, lr);
        lr = s.step(1.0, lr);
        lr = s.step(1.0, lr); // reduce to 0.05
        assert_eq!(lr, 0.05);
        lr = s.step(1.0, lr); // 1 epoch since reset
        assert_eq!(lr, 0.05);
        lr = s.step(1.0, lr); // reduce again
        assert_eq!(lr, 0.025);
    }

    #[test]
    fn stops_at_floor() {
        let s = ReduceLrOnPlateau::paper_default();
        assert!(!s.should_stop(1e-3));
        assert!(s.should_stop(1e-6));
        assert!(s.should_stop(5e-7));
    }

    #[test]
    #[should_panic(expected = "out of (0, 1)")]
    fn bad_factor_rejected() {
        ReduceLrOnPlateau::new(1.5, 2, 1e-6);
    }
}
