//! Result aggregation: the `mean ± s.d.` columns of Tables IV and V.

/// Mean and (population) standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl std::fmt::Display for Summary {
    /// Precision follows the mean's magnitude, so percentage accuracies
    /// keep the paper's one-decimal form (`80.8±1.3`) while sub-second
    /// timings don't collapse to `0.0±0.0`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.mean.abs();
        let prec = if m >= 10.0 {
            1
        } else if m >= 1.0 {
            2
        } else if m >= 0.1 {
            3
        } else {
            4
        };
        write!(f, "{:.p$}±{:.p$}", self.mean, self.std, p = prec)
    }
}

/// Computes mean ± population standard deviation.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn mean_std(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "mean of empty sample");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Summary {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_value_has_zero_std() {
        let s = mean_std(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn display_formats_like_tables() {
        let s = Summary {
            mean: 80.84,
            std: 1.26,
        };
        assert_eq!(format!("{s}"), "80.8±1.3");
    }

    #[test]
    fn display_keeps_precision_for_small_means() {
        // Sub-second epoch times used to render as "0.0±0.0".
        let fast = Summary {
            mean: 0.0316,
            std: 0.0042,
        };
        assert_eq!(format!("{fast}"), "0.0316±0.0042");
        let tenths = Summary {
            mean: 0.314,
            std: 0.021,
        };
        assert_eq!(format!("{tenths}"), "0.314±0.021");
        let units = Summary {
            mean: 5.821,
            std: 0.413,
        };
        assert_eq!(format!("{units}"), "5.82±0.41");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        mean_std(&[]);
    }
}
