//! Exact training checkpoints: params + optimizer + scheduler + RNG +
//! batch-norm running stats + progress counters.
//!
//! A [`Checkpoint`] captures *everything* a training loop mutates, so a
//! resumed (or rolled-back) run continues bit-identically to one that was
//! never interrupted. Floats are serialized as hex bit patterns
//! (`f32::to_bits` / `f64::to_bits`) — decimal formatting would lose the
//! low bits and silently break the bit-exactness the resume tests assert.
//!
//! The on-disk format is a line-oriented text file (`gnn-ckpt v1` header),
//! written next to the trace artifacts so a killed sweep leaves its resume
//! state where its other outputs already live.

use std::fmt::Write as _;
use std::path::Path;

use gnn_tensor::nn::BatchNorm1d;
use gnn_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

use crate::optim::Adam;
use crate::scheduler::ReduceLrOnPlateau;

/// A complete snapshot of mutable training state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checkpoint {
    /// Epochs fully completed (training resumes at this epoch index).
    pub epoch: u64,
    /// Shuffle-RNG state, for loops that draw from one (`None` for
    /// full-batch loops with no RNG).
    pub rng: Option<[u64; 4]>,
    /// Parameter buffers, flattened, in `model.params()` order (shape
    /// `(rows, cols)` kept for reconstruction checks).
    pub params: Vec<(usize, usize, Vec<f32>)>,
    /// Adam first moments, same order/shape as `params`.
    pub adam_m: Vec<(usize, usize, Vec<f32>)>,
    /// Adam second moments.
    pub adam_v: Vec<(usize, usize, Vec<f32>)>,
    /// Adam step counter.
    pub adam_t: i32,
    /// Current learning rate.
    pub lr: f32,
    /// Plateau-scheduler state `(best, epochs_since_best)`, if a scheduler
    /// is in play.
    pub sched: Option<(f32, usize)>,
    /// Batch-norm running stats `(mean, var)` in `norm_layers()` order.
    pub bn_stats: Vec<(Vec<f32>, Vec<f32>)>,
    /// Best validation accuracy so far, percent (node task).
    pub best_val: f64,
    /// Test accuracy at the best-validation epoch, percent (node task).
    pub test_at_best: f64,
    /// Per-epoch loss curve so far (the series the resume property test
    /// compares bit-for-bit).
    pub losses: Vec<f64>,
    /// Cumulative simulated training seconds up to `epoch`, so a resumed
    /// run reports the same epoch/total times as an uninterrupted one (the
    /// fresh session's clock restarts at zero).
    pub total_time: f64,
    /// Raw device clock at capture. A resumed session fast-forwards its
    /// fresh clock to this value so every subsequent timestamp — and thus
    /// every epoch duration — is bit-identical to the uninterrupted run
    /// (durations are differences against the running clock, so the
    /// absolute value matters down to the last ULP).
    pub clock: f64,
}

fn flatten(arrays: impl Iterator<Item = NdArray>) -> Vec<(usize, usize, Vec<f32>)> {
    arrays
        .map(|a| {
            let (r, c) = a.shape();
            (r, c, a.data().to_vec())
        })
        .collect()
}

impl Checkpoint {
    /// Captures the full mutable state of a training loop.
    pub fn capture(
        params: &[Tensor],
        norms: &[&BatchNorm1d],
        opt: &Adam,
        sched: Option<&ReduceLrOnPlateau>,
        rng: Option<&StdRng>,
        epoch: u64,
    ) -> Self {
        let (m, v, t) = opt.state();
        Checkpoint {
            epoch,
            rng: rng.map(StdRng::state),
            params: flatten(params.iter().map(|p| p.data().clone())),
            adam_m: flatten(m.into_iter()),
            adam_v: flatten(v.into_iter()),
            adam_t: t,
            lr: opt.lr(),
            sched: sched.map(ReduceLrOnPlateau::state),
            bn_stats: norms.iter().map(|bn| bn.running_stats()).collect(),
            best_val: 0.0,
            test_at_best: 0.0,
            losses: Vec::new(),
            total_time: 0.0,
            clock: 0.0,
        }
    }

    /// Writes the captured state back into live training objects. `params`
    /// and `norms` must be the same (and same-ordered) collections the
    /// checkpoint was captured from.
    ///
    /// Returns the restored shuffle RNG, if one was captured.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch between the checkpoint and the live
    /// model — restoring into the wrong model is always a bug.
    pub fn restore(
        &self,
        params: &[Tensor],
        norms: &[&BatchNorm1d],
        opt: &mut Adam,
        sched: Option<&mut ReduceLrOnPlateau>,
    ) -> Option<StdRng> {
        assert_eq!(params.len(), self.params.len(), "param count mismatch");
        assert_eq!(norms.len(), self.bn_stats.len(), "norm count mismatch");
        for (p, (r, c, data)) in params.iter().zip(&self.params) {
            assert_eq!(p.shape(), (*r, *c), "param shape mismatch");
            p.data_mut().data_mut().copy_from_slice(data);
            p.zero_grad();
        }
        for (bn, (mean, var)) in norms.iter().zip(&self.bn_stats) {
            bn.set_running_stats(mean, var);
        }
        let rebuild = |flat: &[(usize, usize, Vec<f32>)]| -> Vec<NdArray> {
            flat.iter()
                .map(|(r, c, data)| NdArray::from_vec(*r, *c, data.clone()))
                .collect()
        };
        opt.restore_state(rebuild(&self.adam_m), rebuild(&self.adam_v), self.adam_t);
        opt.set_lr(self.lr);
        if let (Some(s), Some((best, since))) = (sched, self.sched) {
            s.restore_state(best, since);
        }
        self.rng.map(StdRng::from_state)
    }

    /// Restores only the model state — parameters and batch-norm running
    /// statistics — leaving optimizer, scheduler, and RNG state untouched.
    ///
    /// This is the inference-serving entry point: `gnn-serve` rebuilds a
    /// model architecture from the cell name and pours a training sweep's
    /// snapshot into it without constructing a `Supervisor`, an `Adam`, or
    /// any other training machinery. `params` and `norms` must come from a
    /// model with the same architecture the checkpoint was captured from
    /// (`model.params()` / `model.norm_layers()` order).
    ///
    /// # Panics
    ///
    /// Panics on a count or shape mismatch between the checkpoint and the
    /// live model — loading weights into the wrong architecture is always
    /// a bug, never something to serve traffic from.
    pub fn load_params(&self, params: &[Tensor], norms: &[&BatchNorm1d]) {
        assert_eq!(params.len(), self.params.len(), "param count mismatch");
        assert_eq!(norms.len(), self.bn_stats.len(), "norm count mismatch");
        for (p, (r, c, data)) in params.iter().zip(&self.params) {
            assert_eq!(p.shape(), (*r, *c), "param shape mismatch");
            p.data_mut().data_mut().copy_from_slice(data);
            p.zero_grad();
        }
        for (bn, (mean, var)) in norms.iter().zip(&self.bn_stats) {
            bn.set_running_stats(mean, var);
        }
    }

    /// Renders the checkpoint as its `gnn-ckpt v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("gnn-ckpt v1\n");
        let _ = writeln!(out, "epoch {}", self.epoch);
        match self.rng {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "rng {:016x} {:016x} {:016x} {:016x}",
                    s[0], s[1], s[2], s[3]
                );
            }
            None => out.push_str("rng none\n"),
        }
        let _ = writeln!(out, "adam_t {}", self.adam_t);
        let _ = writeln!(out, "lr {:08x}", self.lr.to_bits());
        match self.sched {
            Some((best, since)) => {
                let _ = writeln!(out, "sched {:08x} {since}", best.to_bits());
            }
            None => out.push_str("sched none\n"),
        }
        let _ = writeln!(
            out,
            "best {:016x} {:016x}",
            self.best_val.to_bits(),
            self.test_at_best.to_bits()
        );
        out.push_str("losses");
        for l in &self.losses {
            let _ = write!(out, " {:016x}", l.to_bits());
        }
        out.push('\n');
        let _ = writeln!(out, "time {:016x}", self.total_time.to_bits());
        let _ = writeln!(out, "clock {:016x}", self.clock.to_bits());
        let mut section = |name: &str, arrays: &[(usize, usize, Vec<f32>)]| {
            let _ = writeln!(out, "{name} {}", arrays.len());
            for (r, c, data) in arrays {
                let _ = write!(out, "a {r} {c}");
                for x in data {
                    let _ = write!(out, " {:08x}", x.to_bits());
                }
                out.push('\n');
            }
        };
        section("params", &self.params);
        section("adam_m", &self.adam_m);
        section("adam_v", &self.adam_v);
        let _ = writeln!(out, "bn {}", self.bn_stats.len());
        for (mean, var) in &self.bn_stats {
            let _ = write!(out, "m {}", mean.len());
            for x in mean {
                let _ = write!(out, " {:08x}", x.to_bits());
            }
            out.push('\n');
            let _ = write!(out, "v {}", var.len());
            for x in var {
                let _ = write!(out, " {:08x}", x.to_bits());
            }
            out.push('\n');
        }
        out
    }

    /// Parses the `gnn-ckpt v1` text format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        if lines.next() != Some("gnn-ckpt v1") {
            return Err("missing `gnn-ckpt v1` header".into());
        }
        let mut ckpt = Checkpoint::default();
        let next = |lines: &mut std::str::Lines<'_>, what: &str| -> Result<String, String> {
            lines
                .next()
                .map(str::to_owned)
                .ok_or_else(|| format!("truncated checkpoint: expected {what}"))
        };
        let f32_hex = |w: &str| -> Result<f32, String> { parse_hex32(w).map(f32::from_bits) };
        let f64_hex = |w: &str| -> Result<f64, String> { parse_hex64(w).map(f64::from_bits) };

        // epoch
        let line = next(&mut lines, "epoch")?;
        ckpt.epoch = field(&line, "epoch")?
            .parse()
            .map_err(|e| format!("epoch: {e}"))?;
        // rng
        let line = next(&mut lines, "rng")?;
        let rest = field(&line, "rng")?;
        ckpt.rng = if rest == "none" {
            None
        } else {
            let words: Vec<&str> = rest.split_whitespace().collect();
            if words.len() != 4 {
                return Err("rng needs 4 words".into());
            }
            let mut s = [0u64; 4];
            for (slot, w) in s.iter_mut().zip(&words) {
                *slot = parse_hex64(w)?;
            }
            Some(s)
        };
        // adam_t
        let line = next(&mut lines, "adam_t")?;
        ckpt.adam_t = field(&line, "adam_t")?
            .parse()
            .map_err(|e| format!("adam_t: {e}"))?;
        // lr
        let line = next(&mut lines, "lr")?;
        ckpt.lr = f32_hex(field(&line, "lr")?)?;
        // sched
        let line = next(&mut lines, "sched")?;
        let rest = field(&line, "sched")?;
        ckpt.sched = if rest == "none" {
            None
        } else {
            let mut words = rest.split_whitespace();
            let best = f32_hex(words.next().ok_or("sched: missing best")?)?;
            let since: usize = words
                .next()
                .ok_or("sched: missing epochs_since_best")?
                .parse()
                .map_err(|e| format!("sched: {e}"))?;
            Some((best, since))
        };
        // best
        let line = next(&mut lines, "best")?;
        let rest = field(&line, "best")?;
        let mut words = rest.split_whitespace();
        ckpt.best_val = f64_hex(words.next().ok_or("best: missing best_val")?)?;
        ckpt.test_at_best = f64_hex(words.next().ok_or("best: missing test_at_best")?)?;
        // losses
        let line = next(&mut lines, "losses")?;
        let rest = line
            .strip_prefix("losses")
            .ok_or("expected `losses` line")?;
        ckpt.losses = rest
            .split_whitespace()
            .map(f64_hex)
            .collect::<Result<_, _>>()?;
        // time
        let line = next(&mut lines, "time")?;
        ckpt.total_time = f64_hex(field(&line, "time")?)?;
        let line = next(&mut lines, "clock")?;
        ckpt.clock = f64_hex(field(&line, "clock")?)?;
        // array sections
        let read_section = |lines: &mut std::str::Lines<'_>,
                            name: &str|
         -> Result<Vec<(usize, usize, Vec<f32>)>, String> {
            let line = next(lines, name)?;
            let count: usize = field(&line, name)?
                .parse()
                .map_err(|e| format!("{name}: {e}"))?;
            let mut arrays = Vec::with_capacity(count);
            for _ in 0..count {
                let line = next(lines, "array row")?;
                let mut words = line.split_whitespace();
                if words.next() != Some("a") {
                    return Err(format!("{name}: expected `a <rows> <cols> ...` row"));
                }
                let r: usize = words
                    .next()
                    .ok_or("array: missing rows")?
                    .parse()
                    .map_err(|e| format!("array rows: {e}"))?;
                let c: usize = words
                    .next()
                    .ok_or("array: missing cols")?
                    .parse()
                    .map_err(|e| format!("array cols: {e}"))?;
                let data: Vec<f32> = words.map(f32_hex).collect::<Result<_, _>>()?;
                if data.len() != r * c {
                    return Err(format!(
                        "{name}: array has {} values, expected {r}×{c}",
                        data.len()
                    ));
                }
                arrays.push((r, c, data));
            }
            Ok(arrays)
        };
        ckpt.params = read_section(&mut lines, "params")?;
        ckpt.adam_m = read_section(&mut lines, "adam_m")?;
        ckpt.adam_v = read_section(&mut lines, "adam_v")?;
        // bn
        let line = next(&mut lines, "bn")?;
        let count: usize = field(&line, "bn")?
            .parse()
            .map_err(|e| format!("bn: {e}"))?;
        for _ in 0..count {
            let read_vec =
                |lines: &mut std::str::Lines<'_>, tag: &str| -> Result<Vec<f32>, String> {
                    let line = next(lines, "bn stats row")?;
                    let mut words = line.split_whitespace();
                    if words.next() != Some(tag) {
                        return Err(format!("bn: expected `{tag} <len> ...` row"));
                    }
                    let len: usize = words
                        .next()
                        .ok_or("bn: missing len")?
                        .parse()
                        .map_err(|e| format!("bn len: {e}"))?;
                    let data: Vec<f32> = words.map(f32_hex).collect::<Result<_, _>>()?;
                    if data.len() != len {
                        return Err(format!("bn: {} values, expected {len}", data.len()));
                    }
                    Ok(data)
                };
            let mean = read_vec(&mut lines, "m")?;
            let var = read_vec(&mut lines, "v")?;
            ckpt.bn_stats.push((mean, var));
        }
        Ok(ckpt)
    }

    /// Writes the checkpoint to `path` (atomically: temp file + rename, so
    /// a kill mid-write never leaves a truncated checkpoint behind).
    ///
    /// # Errors
    ///
    /// Returns the IO error message.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_text())
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("renaming to {}: {e}", path.display()))
    }

    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns the IO error message or the parse diagnostic.
    pub fn load(path: &Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Checkpoint::parse(&text)
    }
}

fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    line.strip_prefix(key)
        .map(str::trim)
        .ok_or_else(|| format!("expected `{key} ...`, got `{line}`"))
}

fn parse_hex32(w: &str) -> Result<u32, String> {
    u32::from_str_radix(w, 16).map_err(|e| format!("bad hex f32 `{w}`: {e}"))
}

fn parse_hex64(w: &str) -> Result<u64, String> {
    u64::from_str_radix(w, 16).map_err(|e| format!("bad hex u64 `{w}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 7,
            rng: Some([1, 2, 3, 0xdead_beef_cafe_f00d]),
            params: vec![(2, 2, vec![1.5, -0.25, f32::MIN_POSITIVE, 3.0e-39])],
            adam_m: vec![(2, 2, vec![0.1, 0.2, 0.3, 0.4])],
            adam_v: vec![(2, 2, vec![0.0; 4])],
            adam_t: 99,
            lr: 1e-3,
            sched: Some((0.123_456_8, 4)),
            bn_stats: vec![(vec![0.5, 0.75], vec![1.0, 1.25])],
            best_val: 81.234_567_890_123,
            test_at_best: 79.5,
            losses: vec![1.9, 1.1, 0.7],
            total_time: 0.004_321_987_654_321,
            clock: 0.005_678_123_456_789,
        }
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let ckpt = sample();
        let parsed = Checkpoint::parse(&ckpt.to_text()).unwrap();
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gnn-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.ckpt");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Checkpoint::parse("not a checkpoint").is_err());
        assert!(Checkpoint::parse("gnn-ckpt v1\nepoch x\n").is_err());
        let truncated = sample().to_text();
        let cut = &truncated[..truncated.len() / 2];
        // Cutting mid-file must fail loudly, never yield a partial state.
        assert!(Checkpoint::parse(cut).is_err());
    }

    #[test]
    fn load_params_restores_weights_without_training_state() {
        use gnn_tensor::nn::BatchNorm1d;
        let p = Tensor::param(NdArray::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let bn = BatchNorm1d::new(2);
        bn.set_running_stats(&[0.25, 0.5], &[1.5, 2.5]);
        let opt = Adam::new(vec![p.clone()], 0.01);
        let norms = [&bn];
        let ckpt = Checkpoint::capture(opt.params(), &norms, &opt, None, None, 1);

        // A fresh same-shaped model with different weights and stats.
        let q = Tensor::param(NdArray::zeros(2, 2));
        let bn2 = BatchNorm1d::new(2);
        ckpt.load_params(std::slice::from_ref(&q), &[&bn2]);
        assert_eq!(q.data().data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(bn2.running_stats(), (vec![0.25, 0.5], vec![1.5, 2.5]));
    }

    #[test]
    #[should_panic(expected = "param shape mismatch")]
    fn load_params_rejects_wrong_architecture() {
        let p = Tensor::param(NdArray::zeros(2, 2));
        let opt = Adam::new(vec![p.clone()], 0.01);
        let ckpt = Checkpoint::capture(opt.params(), &[], &opt, None, None, 0);
        let wrong = Tensor::param(NdArray::zeros(3, 2));
        ckpt.load_params(&[wrong], &[]);
    }

    #[test]
    fn capture_restore_round_trips_live_state() {
        use gnn_tensor::nn::BatchNorm1d;
        let p = Tensor::param(NdArray::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let bn = BatchNorm1d::new(3);
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        let mut sched = ReduceLrOnPlateau::new(0.5, 2, 1e-6);
        let mut rng = StdRng::seed_from_u64(9);
        // Mutate everything.
        let loss = p.mul(&p);
        loss.backward();
        opt.step();
        sched.step(0.5, opt.lr());
        sched.step(0.9, opt.lr());
        let _: u64 = rng.gen();
        bn.set_running_stats(&[0.1, 0.2, 0.3], &[1.1, 1.2, 1.3]);

        let norms = [&bn];
        let ckpt = Checkpoint::capture(opt.params(), &norms, &opt, Some(&sched), Some(&rng), 3);
        let frozen_params = p.data().data().to_vec();
        let frozen_draw = rng.clone().gen::<u64>();

        // Keep training past the snapshot...
        let loss = p.mul(&p);
        loss.backward();
        opt.step();
        sched.step(2.0, opt.lr());
        bn.set_running_stats(&[9.0, 9.0, 9.0], &[9.0, 9.0, 9.0]);

        // ...then restore and verify every piece came back.
        let params = opt.params().to_vec();
        let restored_rng = ckpt.restore(&params, &norms, &mut opt, Some(&mut sched));
        assert_eq!(p.data().data(), &frozen_params[..]);
        assert_eq!(bn.running_stats().0, vec![0.1, 0.2, 0.3]);
        assert_eq!(sched.state(), (0.5, 1));
        let (_, _, t) = opt.state();
        assert_eq!(t, 1);
        assert_eq!(restored_rng.unwrap().gen::<u64>(), frozen_draw);
    }
}
