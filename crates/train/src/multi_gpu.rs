//! Multi-GPU training composition (the paper's Section IV-E / Fig. 6).
//!
//! `torch.nn.DataParallel` semantics: the host loads and collates the full
//! mini-batch, scatters shards to N replicas, broadcasts parameters, runs
//! forward/backward in parallel, gathers outputs and reduces gradients to
//! device 0. Per-replica compute is *measured* — the real model runs on a
//! shard under a throwaway profiling session — and composed with the PCIe
//! transfer model of [`gnn_device::multi`].

use gnn_device::multi::{DataParallel, StepCost};
use gnn_device::Session;
use gnn_models::{GnnStack, Loader, ModelBatch};
use gnn_tensor::cross_entropy;

use crate::supervisor::{Supervised, TrainError};

/// Configuration of one Fig. 6 measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiGpuConfig {
    /// Number of simulated GPUs.
    pub n_gpus: usize,
    /// Global mini-batch size (split across replicas).
    pub batch_size: usize,
    /// Number of samples per epoch.
    pub epoch_samples: usize,
}

/// Simulated epoch time of data-parallel training, in seconds.
///
/// # Panics
///
/// Panics if the config has zero GPUs, batch size, or samples.
pub fn data_parallel_epoch_time<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    cfg: &MultiGpuConfig,
) -> f64 {
    assert!(
        cfg.n_gpus >= 1 && cfg.batch_size >= 1 && cfg.epoch_samples >= 1,
        "bad config"
    );
    let n_batches = cfg.epoch_samples.div_ceil(cfg.batch_size);
    let (host_load, input_bytes) = measure_host_load(loader, cfg.batch_size);
    let (compute, output_bytes) = measure_shard_compute(model, loader, cfg.batch_size, cfg.n_gpus);
    let step = StepCost {
        host_load,
        input_bytes,
        compute,
        output_bytes,
        // Update time folded into the measured compute span.
        update: 0.0,
    };
    DataParallel::new(cfg.n_gpus, model.param_bytes())
        .epoch_time(&step, n_batches)
        .expect("validated config")
}

/// Host-side collation cost and input size of the full batch (serialized;
/// DataParallel never parallelizes loading — the paper's scaling ceiling).
fn measure_host_load<L: Loader>(loader: &L, batch_size: usize) -> (f64, u64) {
    let full_idx: Vec<u32> = (0..batch_size as u32).collect();
    let handle = gnn_device::session::install(Session::new(gnn_device::default_cost_model()));
    let full_batch = loader.load(&full_idx);
    let load_report = gnn_device::session::finish(handle);
    let input_bytes = full_batch.feature_bytes() + 8 * full_batch.num_edges() as u64;
    (load_report.total_time, input_bytes)
}

/// Per-replica compute time and output size: runs the real model on one
/// shard of the batch under a throwaway profiling session.
fn measure_shard_compute<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    batch_size: usize,
    n_gpus: usize,
) -> (f64, u64) {
    let shard = (batch_size / n_gpus).max(1);
    let shard_idx: Vec<u32> = (0..shard as u32).collect();
    let shard_batch = loader.load(&shard_idx);
    let handle = gnn_device::session::install(Session::new(gnn_device::default_cost_model()));
    let logits = model.forward(&shard_batch, true);
    let loss = cross_entropy(&logits, shard_batch.labels());
    loss.backward();
    let compute_report = gnn_device::session::finish(handle);
    for p in model.params() {
        p.zero_grad();
    }
    let output_bytes = (logits.shape().0 * logits.shape().1 * 4) as u64;
    (compute_report.total_time, output_bytes)
}

/// Supervised variant of [`data_parallel_epoch_time`]: steps through the
/// epoch one mini-batch at a time so an injected replica failure
/// (`gnn-faults`) can be absorbed mid-epoch — the world shrinks by one GPU,
/// the per-replica shard compute is re-measured at the new (larger) shard
/// size, and the schedule is re-priced for the remaining steps. PCIe
/// straggler faults slow individual transfer segments through the armed
/// injector inside `DataParallel::step_time`.
///
/// # Errors
///
/// Returns [`TrainError::WorldCollapsed`] if every replica fails.
///
/// # Panics
///
/// Panics on a zero-GPU/batch/sample config, exactly like the unsupervised
/// function.
pub fn data_parallel_epoch_time_supervised<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    cfg: &MultiGpuConfig,
) -> Result<Supervised<f64>, TrainError> {
    assert!(
        cfg.n_gpus >= 1 && cfg.batch_size >= 1 && cfg.epoch_samples >= 1,
        "bad config"
    );
    let n_batches = cfg.epoch_samples.div_ceil(cfg.batch_size);
    let (host_load, input_bytes) = measure_host_load(loader, cfg.batch_size);

    let mut n_gpus = cfg.n_gpus;
    let (mut compute, mut output_bytes) =
        measure_shard_compute(model, loader, cfg.batch_size, n_gpus);
    let mut dp = DataParallel::new(n_gpus, model.param_bytes());
    let mut degraded = false;
    let mut notes = Vec::new();
    let mut total = 0.0f64;
    for _ in 0..n_batches {
        if let Some(gpu) = gnn_faults::on_dp_step(n_gpus, total) {
            if n_gpus == 1 {
                return Err(TrainError::WorldCollapsed);
            }
            n_gpus -= 1;
            degraded = true;
            notes.push(format!(
                "replica {gpu} failed: shrinking world to {n_gpus} GPUs and re-pricing"
            ));
            let (c, o) = measure_shard_compute(model, loader, cfg.batch_size, n_gpus);
            compute = c;
            output_bytes = o;
            dp = DataParallel::new(n_gpus, model.param_bytes());
        }
        let step = StepCost {
            host_load,
            input_bytes,
            compute,
            output_bytes,
            update: 0.0,
        };
        total += dp.step_time(&step);
    }
    Ok(Supervised {
        outcome: total,
        degraded,
        retries: 0,
        notes,
        losses: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::SuperpixelSpec;
    use gnn_models::adapt::RustygLoader;
    use gnn_models::{build, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scaling_curve_has_fig6_shape() {
        let ds = SuperpixelSpec::mnist().scaled(0.003).generate(0);
        let mut rng = StdRng::seed_from_u64(0);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 1, 10, &mut rng);
        let loader = RustygLoader::new(&ds);
        let times: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| {
                data_parallel_epoch_time(
                    &model,
                    &loader,
                    &MultiGpuConfig {
                        n_gpus: n,
                        batch_size: 128,
                        epoch_samples: 512,
                    },
                )
            })
            .collect();
        // 1 -> 2 and 2 -> 4 give (at most modest) improvement; 4 -> 8 is
        // flat or worse, matching the paper's Fig. 6 narrative.
        assert!(times[1] <= times[0] * 1.02, "{times:?}");
        assert!(times[2] <= times[1] * 1.02, "{times:?}");
        let gain = (times[2] - times[3]) / times[2];
        assert!(gain < 0.15, "4->8 should not improve much: {times:?}");
        // Data loading keeps everything in the same ballpark: no superlinear
        // nonsense.
        assert!(times[3] > times[0] * 0.3, "{times:?}");
    }

    #[test]
    fn replica_failure_shrinks_world_and_reprices() {
        use gnn_faults::{FaultKind, FaultPlan};
        let ds = SuperpixelSpec::mnist().scaled(0.003).generate(2);
        let mut rng = StdRng::seed_from_u64(2);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 1, 10, &mut rng);
        let loader = RustygLoader::new(&ds);
        let cfg = MultiGpuConfig {
            n_gpus: 4,
            batch_size: 64,
            epoch_samples: 512,
        };
        let clean = data_parallel_epoch_time_supervised(&model, &loader, &cfg).unwrap();
        assert!(!clean.degraded);
        assert!((clean.outcome - data_parallel_epoch_time(&model, &loader, &cfg)).abs() < 1e-9);

        let h = gnn_faults::install(
            FaultPlan::empty().with(FaultKind::ReplicaFailure { gpu: 1, at: 2 }),
        );
        let hurt = data_parallel_epoch_time_supervised(&model, &loader, &cfg).unwrap();
        let log = gnn_faults::finish(h);
        assert!(hurt.degraded);
        assert_eq!(log.len(), 1);
        assert!(
            hurt.notes[0].contains("shrinking world to 3 GPUs"),
            "{:?}",
            hurt.notes
        );
        // Three GPUs carry larger shards for the rest of the epoch: slower.
        assert!(
            hurt.outcome > clean.outcome,
            "{} vs {}",
            hurt.outcome,
            clean.outcome
        );
    }

    #[test]
    fn world_collapse_is_typed() {
        use gnn_faults::{FaultKind, FaultPlan};
        let ds = SuperpixelSpec::mnist().scaled(0.002).generate(3);
        let mut rng = StdRng::seed_from_u64(3);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 1, 10, &mut rng);
        let loader = RustygLoader::new(&ds);
        let h = gnn_faults::install(
            FaultPlan::empty()
                .with(FaultKind::ReplicaFailure { gpu: 1, at: 1 })
                .with(FaultKind::ReplicaFailure { gpu: 0, at: 2 }),
        );
        let err = data_parallel_epoch_time_supervised(
            &model,
            &loader,
            &MultiGpuConfig {
                n_gpus: 2,
                batch_size: 16,
                epoch_samples: 64,
            },
        )
        .unwrap_err();
        gnn_faults::finish(h);
        assert_eq!(err, crate::supervisor::TrainError::WorldCollapsed);
    }

    #[test]
    #[should_panic(expected = "bad config")]
    fn zero_gpus_rejected() {
        let ds = SuperpixelSpec::mnist().scaled(0.002).generate(1);
        let mut rng = StdRng::seed_from_u64(1);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 1, 10, &mut rng);
        let loader = RustygLoader::new(&ds);
        data_parallel_epoch_time(
            &model,
            &loader,
            &MultiGpuConfig {
                n_gpus: 0,
                batch_size: 8,
                epoch_samples: 8,
            },
        );
    }
}
