//! Multi-GPU training composition (the paper's Section IV-E / Fig. 6).
//!
//! `torch.nn.DataParallel` semantics: the host loads and collates the full
//! mini-batch, scatters shards to N replicas, broadcasts parameters, runs
//! forward/backward in parallel, gathers outputs and reduces gradients to
//! device 0. Per-replica compute is *measured* — the real model runs on a
//! shard under a throwaway profiling session — and composed with the PCIe
//! transfer model of [`gnn_device::multi`].

use gnn_device::multi::{DataParallel, StepCost};
use gnn_device::{CostModel, Session};
use gnn_models::{GnnStack, Loader, ModelBatch};
use gnn_tensor::cross_entropy;

/// Configuration of one Fig. 6 measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiGpuConfig {
    /// Number of simulated GPUs.
    pub n_gpus: usize,
    /// Global mini-batch size (split across replicas).
    pub batch_size: usize,
    /// Number of samples per epoch.
    pub epoch_samples: usize,
}

/// Simulated epoch time of data-parallel training, in seconds.
///
/// # Panics
///
/// Panics if the config has zero GPUs, batch size, or samples.
pub fn data_parallel_epoch_time<L: Loader>(
    model: &GnnStack<L::Batch>,
    loader: &L,
    cfg: &MultiGpuConfig,
) -> f64 {
    assert!(
        cfg.n_gpus >= 1 && cfg.batch_size >= 1 && cfg.epoch_samples >= 1,
        "bad config"
    );
    let n_batches = cfg.epoch_samples.div_ceil(cfg.batch_size);

    // Host-side collation cost of the full batch (serialized; DataParallel
    // never parallelizes loading — the paper's scaling ceiling).
    let full_idx: Vec<u32> = (0..cfg.batch_size as u32).collect();
    let handle = gnn_device::session::install(Session::new(CostModel::rtx2080ti()));
    let full_batch = loader.load(&full_idx);
    let load_report = gnn_device::session::finish(handle);
    let host_load = load_report.total_time;
    let input_bytes = full_batch.feature_bytes() + 8 * full_batch.num_edges() as u64;

    // Per-replica compute: run the real model on a shard and measure.
    let shard = (cfg.batch_size / cfg.n_gpus).max(1);
    let shard_idx: Vec<u32> = (0..shard as u32).collect();
    let shard_batch = loader.load(&shard_idx);
    let handle = gnn_device::session::install(Session::new(CostModel::rtx2080ti()));
    let logits = model.forward(&shard_batch, true);
    let loss = cross_entropy(&logits, shard_batch.labels());
    loss.backward();
    let compute_report = gnn_device::session::finish(handle);
    for p in model.params() {
        p.zero_grad();
    }
    let output_bytes = (logits.shape().0 * logits.shape().1 * 4) as u64;

    let step = StepCost {
        host_load,
        input_bytes,
        compute: compute_report.total_time,
        output_bytes,
        // Update time folded into the measured compute span.
        update: 0.0,
    };
    DataParallel::new(cfg.n_gpus, model.param_bytes())
        .epoch_time(&step, n_batches)
        .expect("validated config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::SuperpixelSpec;
    use gnn_models::adapt::RustygLoader;
    use gnn_models::{build, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scaling_curve_has_fig6_shape() {
        let ds = SuperpixelSpec::mnist().scaled(0.003).generate(0);
        let mut rng = StdRng::seed_from_u64(0);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 1, 10, &mut rng);
        let loader = RustygLoader::new(&ds);
        let times: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| {
                data_parallel_epoch_time(
                    &model,
                    &loader,
                    &MultiGpuConfig {
                        n_gpus: n,
                        batch_size: 128,
                        epoch_samples: 512,
                    },
                )
            })
            .collect();
        // 1 -> 2 and 2 -> 4 give (at most modest) improvement; 4 -> 8 is
        // flat or worse, matching the paper's Fig. 6 narrative.
        assert!(times[1] <= times[0] * 1.02, "{times:?}");
        assert!(times[2] <= times[1] * 1.02, "{times:?}");
        let gain = (times[2] - times[3]) / times[2];
        assert!(gain < 0.15, "4->8 should not improve much: {times:?}");
        // Data loading keeps everything in the same ballpark: no superlinear
        // nonsense.
        assert!(times[3] > times[0] * 0.3, "{times:?}");
    }

    #[test]
    #[should_panic(expected = "bad config")]
    fn zero_gpus_rejected() {
        let ds = SuperpixelSpec::mnist().scaled(0.002).generate(1);
        let mut rng = StdRng::seed_from_u64(1);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 1, 10, &mut rng);
        let loader = RustygLoader::new(&ds);
        data_parallel_epoch_time(
            &model,
            &loader,
            &MultiGpuConfig {
                n_gpus: 0,
                batch_size: 8,
                epoch_samples: 8,
            },
        );
    }
}
