//! Full-batch node classification (the paper's Section IV-A protocol).

use gnn_datasets::NodeDataset;
use gnn_device::{DeviceReport, Phase, Session};
use gnn_models::{GnnStack, ModelBatch};
use gnn_tensor::{accuracy, cross_entropy};
use std::rc::Rc;

use crate::epoch_trace::EpochTracker;
use crate::optim::Adam;

/// Node-classification run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeTaskConfig {
    /// Maximum training epochs (the paper uses 200).
    pub max_epochs: usize,
    /// Adam learning rate (Table II).
    pub lr: f32,
}

impl NodeTaskConfig {
    /// The paper's setting with the given Table II learning rate.
    pub fn paper(lr: f32) -> Self {
        NodeTaskConfig {
            max_epochs: 200,
            lr,
        }
    }
}

/// Result of one node-classification training run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Test accuracy at the best-validation epoch, in percent.
    pub test_acc: f64,
    /// Best validation accuracy, in percent.
    pub best_val_acc: f64,
    /// Epochs trained.
    pub epochs: usize,
    /// Mean simulated seconds per epoch.
    pub epoch_time: f64,
    /// Total simulated training time in seconds.
    pub total_time: f64,
    /// Full device report (kernels, memory, utilization, phases).
    pub report: DeviceReport,
}

/// Trains `model` full-batch on the citation dataset and reports the
/// Table IV quantities.
///
/// The profiling session is installed internally; `batch` should be built
/// by the caller from the same dataset (`rustyg::loader::full_graph_batch`
/// or `rgl::loader::full_graph_batch`).
///
/// # Panics
///
/// Panics if the dataset splits are empty or the batch does not match the
/// dataset's node count.
pub fn run_node_task<B: ModelBatch>(
    model: &GnnStack<B>,
    batch: &B,
    ds: &NodeDataset,
    cfg: &NodeTaskConfig,
) -> NodeOutcome {
    assert!(!ds.train_idx.is_empty(), "empty training split");
    assert_eq!(
        batch.num_nodes(),
        ds.graph.num_nodes(),
        "batch/dataset mismatch"
    );

    let handle = gnn_device::session::install(Session::new(gnn_device::default_cost_model()));
    // Parameters + gradients + dataset resident on device for the whole run.
    gnn_device::with(|s| {
        s.alloc_persistent(2 * model.param_bytes() + batch.feature_bytes());
    });
    let mut opt = Adam::new(model.params(), cfg.lr);

    let train_idx: gnn_tensor::Ids = Rc::new(ds.train_idx.clone());
    let val_idx: gnn_tensor::Ids = Rc::new(ds.val_idx.clone());
    let test_idx: gnn_tensor::Ids = Rc::new(ds.test_idx.clone());
    let train_labels = ds.labels_at(&ds.train_idx);
    let val_labels = ds.labels_at(&ds.val_idx);
    let test_labels = ds.labels_at(&ds.test_idx);

    let mut best_val = 0.0f64;
    let mut test_at_best = 0.0f64;
    let mut epoch_times = Vec::with_capacity(cfg.max_epochs);
    let mut last_mark = 0.0f64;
    let mut tracker = EpochTracker::new(format!("node/{}/{}", model.name(), ds.name));

    for _epoch in 0..cfg.max_epochs {
        gnn_device::set_phase(Phase::DataLoad);
        // Full-batch: the graph is already resident; per-epoch loading is
        // just the epoch bookkeeping.
        gnn_device::host(20e-6);

        gnn_device::set_phase(Phase::Forward);
        let logits = model.forward(batch, true);
        let loss = cross_entropy(&logits.gather_rows(&train_idx), &train_labels);

        gnn_device::set_phase(Phase::Backward);
        loss.backward();

        gnn_device::set_phase(Phase::Update);
        opt.step();
        opt.zero_grad();

        gnn_device::set_phase(Phase::Other);
        // Validation / test evaluation (inference mode, no tape).
        let eval_logits = gnn_tensor::no_grad(|| model.forward(batch, false));
        let val_acc = accuracy(&eval_logits.gather_rows(&val_idx), &val_labels) * 100.0;
        if val_acc > best_val {
            best_val = val_acc;
            test_at_best = accuracy(&eval_logits.gather_rows(&test_idx), &test_labels) * 100.0;
        }
        gnn_device::with(|s| s.end_step());

        let mut now = 0.0;
        gnn_device::with(|s| now = s.now());
        epoch_times.push(now - last_mark);
        last_mark = now;
        tracker.emit(
            f64::from(loss.item()),
            Some(val_acc / 100.0),
            f64::from(cfg.lr),
        );
    }

    let report = gnn_device::session::finish(handle);
    let epochs = epoch_times.len();
    let total_time: f64 = epoch_times.iter().sum();
    NodeOutcome {
        test_acc: test_at_best,
        best_val_acc: best_val,
        epochs,
        epoch_time: total_time / epochs.max(1) as f64,
        total_time,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::CitationSpec;
    use gnn_models::{build, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gcn_learns_synthetic_cora() {
        let ds = CitationSpec::cora().scaled(0.15).generate(0);
        let mut rng = StdRng::seed_from_u64(0);
        let model = build::node_model_rustyg(ModelKind::Gcn, 1433, 7, &mut rng);
        let batch = rustyg::loader::full_graph_batch(&ds);
        let out = run_node_task(
            &model,
            &batch,
            &ds,
            &NodeTaskConfig {
                max_epochs: 30,
                lr: 0.01,
            },
        );
        assert!(
            out.test_acc > 40.0,
            "GCN should beat chance (14%) clearly, got {}",
            out.test_acc
        );
        assert_eq!(out.epochs, 30);
        assert!(out.epoch_time > 0.0);
        assert!((out.total_time - out.epoch_time * 30.0).abs() < 1e-6);
    }

    #[test]
    fn phases_are_populated() {
        let ds = CitationSpec::cora().scaled(0.1).generate(1);
        let mut rng = StdRng::seed_from_u64(1);
        let model = build::node_model_rgl(ModelKind::Gcn, 1433, 7, &mut rng);
        let batch = rgl::loader::full_graph_batch(&ds);
        let out = run_node_task(
            &model,
            &batch,
            &ds,
            &NodeTaskConfig {
                max_epochs: 3,
                lr: 0.01,
            },
        );
        for phase in [Phase::Forward, Phase::Backward, Phase::Update, Phase::Other] {
            assert!(out.report.phase_time(phase) > 0.0, "phase {phase:?} empty");
        }
        assert!(out.report.peak_memory > 0);
        let u = out.report.utilization();
        assert!((0.0..=1.0).contains(&u));
    }
}
