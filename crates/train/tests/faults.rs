//! Property tests for the robustness layer.
//!
//! Two invariants hold for *every* seed and split point, not just the
//! hand-picked ones in the unit tests:
//!
//! 1. **Fault transparency** — a seeded [`FaultPlan`] contains only
//!    transient faults, so a supervisor that retries them must finish with
//!    metrics bit-identical to the fault-free run (timing is allowed to
//!    differ; the backoff and straggler delays are real).
//! 2. **Resume reproducibility** — training to any epoch, "dying", and
//!    resuming from the checkpoint file on a fresh model reproduces the
//!    uninterrupted run's loss curve and accuracies exactly, including the
//!    shuffle order of mini-batch (graph) training.

use gnn_datasets::{stratified_kfold, CitationSpec, TudSpec};
use gnn_faults::FaultPlan;
use gnn_models::adapt::RustygLoader;
use gnn_models::{build, ModelKind};
use gnn_train::{
    run_graph_fold_supervised, run_node_task_supervised, FoldOutcome, GraphTaskConfig, NodeOutcome,
    NodeTaskConfig, Supervised, Supervisor,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn node_run(
    plan: Option<FaultPlan>,
    sup: &Supervisor,
    max_epochs: usize,
) -> Supervised<NodeOutcome> {
    let ds = CitationSpec::cora().scaled(0.08).generate(7);
    let mut rng = StdRng::seed_from_u64(7);
    let model = build::node_model_rustyg(ModelKind::Gcn, 1433, 7, &mut rng);
    let batch = rustyg::loader::full_graph_batch(&ds);
    let cfg = NodeTaskConfig {
        max_epochs,
        lr: 0.01,
    };
    let handle = plan.map(gnn_faults::install);
    let out = run_node_task_supervised(&model, &batch, &ds, &cfg, sup).expect("run survives");
    if let Some(h) = handle {
        gnn_faults::finish(h);
    }
    out
}

fn graph_run(
    plan: Option<FaultPlan>,
    sup: &Supervisor,
    max_epochs: usize,
) -> Supervised<FoldOutcome> {
    let ds = TudSpec::enzymes().scaled(0.15).generate(8);
    let folds = stratified_kfold(&ds.labels(), 10, 8);
    let mut rng = StdRng::seed_from_u64(8);
    let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
    let loader = RustygLoader::new(&ds);
    let cfg = GraphTaskConfig {
        batch_size: 16,
        init_lr: 1e-3,
        patience: 5,
        decay_factor: 0.5,
        min_lr: 1e-6,
        max_epochs,
        seed: 8,
        shuffle: true,
    };
    let handle = plan.map(gnn_faults::install);
    let out = run_graph_fold_supervised(&model, &loader, &folds[0], &cfg, sup).expect("survives");
    if let Some(h) = handle {
        gnn_faults::finish(h);
    }
    out
}

/// A throwaway checkpoint path unique to this test case.
fn ckpt_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gnn-faults-proptests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.ckpt"));
    let _ = std::fs::remove_file(&path);
    path
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Any seeded plan (one-shot OOM, kernel fault, PCIe straggler, NaN
    /// poisoning at arbitrary deterministic trigger points) leaves the
    /// node task's metrics bit-identical to the fault-free run.
    #[test]
    fn seeded_plans_are_metric_transparent_on_node_tasks(seed in 0u64..10_000) {
        let clean = node_run(None, &Supervisor::default(), 4);
        let faulted = node_run(Some(FaultPlan::seeded(seed)), &Supervisor::default(), 4);
        prop_assert_eq!(&clean.losses, &faulted.losses, "loss curves diverged");
        prop_assert_eq!(clean.outcome.test_acc, faulted.outcome.test_acc);
        prop_assert_eq!(clean.outcome.best_val_acc, faulted.outcome.best_val_acc);
        prop_assert_eq!(clean.outcome.epochs, faulted.outcome.epochs);
        prop_assert!(!faulted.degraded, "transient faults must not degrade the run");
    }

    /// Same transparency on mini-batch graph training, where retried steps
    /// additionally interact with the shuffle order and BN running stats.
    #[test]
    fn seeded_plans_are_metric_transparent_on_graph_folds(seed in 0u64..10_000) {
        let clean = graph_run(None, &Supervisor::default(), 3);
        let faulted = graph_run(Some(FaultPlan::seeded(seed)), &Supervisor::default(), 3);
        prop_assert_eq!(&clean.losses, &faulted.losses, "loss curves diverged");
        prop_assert_eq!(clean.outcome.test_acc, faulted.outcome.test_acc);
        prop_assert_eq!(clean.outcome.epochs, faulted.outcome.epochs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Checkpointing at any epoch and resuming on a fresh model reproduces
    /// the uninterrupted node run exactly.
    #[test]
    fn node_resume_is_bit_identical_at_any_split(split in 1usize..6) {
        let path = ckpt_path(&format!("node-split-{split}"));
        let full = node_run(None, &Supervisor::default(), 6);
        let sup = Supervisor::default().with_checkpoint(&path);
        node_run(None, &sup, split); // the "killed" run
        let resumed = node_run(None, &sup.clone().with_resume(true), 6);
        prop_assert_eq!(&full.losses, &resumed.losses, "loss curves diverged");
        prop_assert_eq!(full.outcome.test_acc, resumed.outcome.test_acc);
        prop_assert_eq!(full.outcome.best_val_acc, resumed.outcome.best_val_acc);
        // Timing too: the checkpoint carries the device clock, so even the
        // measured durations must match bit-for-bit.
        prop_assert_eq!(
            full.outcome.total_time.to_bits(),
            resumed.outcome.total_time.to_bits(),
            "total_time diverged"
        );
        prop_assert_eq!(
            full.outcome.epoch_time.to_bits(),
            resumed.outcome.epoch_time.to_bits(),
            "epoch_time diverged"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// The graph-task variant: the resumed run must also reconstruct the
    /// epoch shuffle order it would have used, not just the parameters.
    #[test]
    fn graph_resume_is_bit_identical_at_any_split(split in 1usize..4) {
        let path = ckpt_path(&format!("graph-split-{split}"));
        let full = graph_run(None, &Supervisor::default(), 4);
        let sup = Supervisor::default().with_checkpoint(&path);
        graph_run(None, &sup, split); // the "killed" run
        let resumed = graph_run(None, &sup.clone().with_resume(true), 4);
        prop_assert_eq!(&full.losses, &resumed.losses, "loss curves diverged");
        prop_assert_eq!(full.outcome.test_acc, resumed.outcome.test_acc);
        prop_assert_eq!(full.outcome.epochs, resumed.outcome.epochs);
        prop_assert_eq!(
            full.outcome.total_time.to_bits(),
            resumed.outcome.total_time.to_bits(),
            "total_time diverged"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// Resuming a run that already finished must not train further — the
/// metrics come straight out of the checkpoint, byte-identical.
#[test]
fn resuming_a_finished_run_is_a_no_op() {
    let path = ckpt_path("node-finished");
    let sup = Supervisor::default().with_checkpoint(&path);
    let full = node_run(None, &sup, 5);
    let resumed = node_run(None, &sup.clone().with_resume(true), 5);
    assert_eq!(full.losses, resumed.losses);
    assert_eq!(full.outcome.test_acc, resumed.outcome.test_acc);
    assert_eq!(
        full.outcome.total_time.to_bits(),
        resumed.outcome.total_time.to_bits()
    );
    assert_eq!(
        full.outcome.epoch_time.to_bits(),
        resumed.outcome.epoch_time.to_bits()
    );
    let _ = std::fs::remove_file(&path);
}
