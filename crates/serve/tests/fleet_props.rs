//! Property tests of the fleet engine: request conservation under shard
//! blackouts and replica death (every request answered, rejected, or shed
//! — zero drops), router determinism (same seed + same fault plan ⇒
//! bit-identical `serve_metrics.csv`), and the retry/hedge amplification
//! bound (`dispatched ≤ (1 + budget) × submitted`) for arbitrary budgets.

use gnn_faults::{FaultKind, FaultPlan};
use gnn_serve::{
    serve_fleet, BatchPolicy, CellId, FleetConfig, FleetWorkload, HealthPolicy, RoutingPolicy,
    WorkloadKind, CSV_HEADER, SERVE_METRICS_SCHEMA,
};
use proptest::prelude::*;

fn base_cfg() -> FleetConfig {
    FleetConfig {
        endpoints: vec![
            CellId::parse("table4/Cora/GCN/PyG").unwrap(),
            CellId::parse("table5/ENZYMES/GIN/DGL").unwrap(),
        ],
        shards: 2,
        replicas_per_shard: 1,
        policy: BatchPolicy {
            max_batch: 4,
            max_delay: 0.002,
        },
        queue_cap: 16,
        admission_cap: 24,
        health: HealthPolicy {
            probe_interval: 0.005,
            fail_threshold: 2,
            readmit_threshold: 2,
        },
        autoscale: None,
        workload: FleetWorkload::Open(WorkloadKind::OpenLoop),
        requests: 120,
        rate: 2500.0,
        scale: 0.05,
        ..FleetConfig::default()
    }
}

/// Renders a report the way `gnn-bench fleet` writes `serve_metrics.csv`.
fn csv_of(report: &gnn_serve::ServeReport) -> String {
    format!(
        "# schema: {SERVE_METRICS_SCHEMA}\n{CSV_HEADER}\n{}",
        report.csv_rows()
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Conservation under chaos: a shard blackout plus a replica death
    /// still leaves every request with exactly one terminal typed outcome
    /// — answered, rejected, or shed; never dropped — across seeds,
    /// routing policies, and blackout geometry.
    #[test]
    fn conservation_under_blackout_and_replica_death(
        seed in 0..64u64,
        routing_ch in 0..2usize,
        dark_shard in 0..2usize,
        from_ms in 2..30u32,
        width_ms in 5..40u32,
        replica_step in 1..40u64,
    ) {
        let mut cfg = base_cfg();
        cfg.seed = seed;
        cfg.replicas_per_shard = 2;
        cfg.routing = if routing_ch == 1 {
            RoutingPolicy::ConsistentHash
        } else {
            RoutingPolicy::LeastLoaded
        };
        let from = from_ms as f64 * 1e-3;
        let plan = FaultPlan::empty()
            .with(FaultKind::ShardBlackout {
                shard: dark_shard,
                from,
                until: from + width_ms as f64 * 1e-3,
            })
            .with(FaultKind::ReplicaFailure {
                gpu: 0,
                at: replica_step,
            });
        let handle = gnn_faults::install(plan);
        let report = serve_fleet(&cfg).unwrap();
        gnn_faults::finish(handle);
        prop_assert_eq!(report.requests.len(), cfg.requests, "one record per request");
        for (i, r) in report.requests.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64, "ids dense and unique");
            prop_assert!(r.reply >= r.enqueue, "no time travel");
        }
        prop_assert_eq!(
            report.answered() + report.rejected() + report.shed(),
            cfg.requests,
            "answered + rejected + shed == submitted"
        );
        prop_assert_eq!(report.dropped(cfg.requests), 0);
        let fleet = report.fleet.as_ref().unwrap();
        prop_assert_eq!(fleet.submitted, cfg.requests);
    }

    /// Router determinism: the same seed and the same fault plan replay the
    /// entire run — every CSV byte of `serve_metrics.csv` — identically.
    #[test]
    fn same_seed_and_plan_give_bit_identical_csv(
        seed in 0..64u64,
        routing_ch in 0..2usize,
    ) {
        let mut cfg = base_cfg();
        cfg.seed = seed;
        cfg.routing = if routing_ch == 1 {
            RoutingPolicy::ConsistentHash
        } else {
            RoutingPolicy::LeastLoaded
        };
        let run = || {
            let handle = gnn_faults::install(FaultPlan::canonical_fleet());
            let report = serve_fleet(&cfg).unwrap();
            gnn_faults::finish(handle);
            report
        };
        let a = run();
        let b = run();
        prop_assert_eq!(csv_of(&a), csv_of(&b), "serve_metrics.csv must be bit-identical");
        for (x, y) in a.requests.iter().zip(&b.requests) {
            prop_assert_eq!(x.reply.to_bits(), y.reply.to_bits());
            prop_assert_eq!(&x.output, &y.output);
        }
    }

    /// The token bucket bounds amplification for any budget: total queue
    /// admissions never exceed `(1 + budget) × submitted`, even while a
    /// blackout is forcing failover retries and hedges are firing.
    #[test]
    fn dispatch_bound_holds_for_arbitrary_budgets(
        seed in 0..32u64,
        budget_tenths in 0..20u32,
        hedge_on in 0..2usize,
    ) {
        let mut cfg = base_cfg();
        cfg.seed = seed;
        cfg.retry_budget = budget_tenths as f64 / 10.0;
        cfg.hedge_after = if hedge_on == 1 { Some(0.004) } else { None };
        let handle = gnn_faults::install(FaultPlan::canonical_fleet());
        let report = serve_fleet(&cfg).unwrap();
        gnn_faults::finish(handle);
        let fleet = report.fleet.as_ref().unwrap();
        prop_assert!(
            fleet.dispatched as f64 <= (1.0 + cfg.retry_budget) * fleet.submitted as f64 + 1e-9,
            "dispatched {} exceeds (1 + {}) x {}",
            fleet.dispatched,
            cfg.retry_budget,
            fleet.submitted
        );
        prop_assert_eq!(
            report.answered() + report.rejected() + report.shed(),
            cfg.requests
        );
    }
}
