//! Train→serve round-trip: a checkpoint written by supervised training
//! restores into a serving endpoint that reproduces the trained model's
//! eval logits and accuracy exactly.

use gnn_datasets::CitationSpec;
use gnn_models::{build, ModelKind};
use gnn_serve::{CellId, ModelRegistry};
use gnn_train::supervisor::{run_node_task_supervised, Supervisor};
use gnn_train::NodeTaskConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn training_checkpoint_round_trips_into_serving_with_same_accuracy() {
    const SCALE: f64 = 0.05;
    const SEED: u64 = 0;
    let cell = CellId::parse("table4/Cora/GCN/PyG").unwrap();

    // Train exactly the architecture the registry will rebuild: same
    // dataset generator, same scale/seed, same arch RNG as the sweep's
    // run 0 (seed + 1 for node cells).
    let ds = CitationSpec::cora().scaled(SCALE).generate(SEED);
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let model =
        build::node_model_rustyg(ModelKind::Gcn, ds.features.cols(), ds.num_classes, &mut rng);
    let batch = rustyg::loader::full_graph_batch(&ds);
    let dir = std::env::temp_dir().join("gnn-serve-roundtrip-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join(cell.ckpt_file(0));
    let cfg = NodeTaskConfig {
        max_epochs: 5,
        lr: 0.01,
    };
    let sup = Supervisor::default().with_checkpoint(&ckpt_path);
    let outcome = run_node_task_supervised(&model, &batch, &ds, &cfg, &sup).unwrap();
    assert!(ckpt_path.exists(), "training must have checkpointed");
    assert_eq!(outcome.outcome.epochs, 5);

    // The trained model's own eval logits over the test split, in
    // inference mode — the ground truth the served endpoint must match.
    let test_idx = ds.test_idx.clone();
    let expected_logits: Vec<Vec<f32>> = gnn_tensor::inference(|| {
        let logits = model.forward(&batch, false);
        let data = logits.data();
        let (_, cols) = data.shape();
        test_idx
            .iter()
            .map(|&t| {
                let start = t as usize * cols;
                data.data()[start..start + cols].to_vec()
            })
            .collect()
    });
    let expected_acc = {
        let correct = test_idx
            .iter()
            .zip(&expected_logits)
            .filter(|(&t, row)| gnn_serve::argmax(row) == ds.labels[t as usize])
            .count();
        100.0 * correct as f64 / test_idx.len() as f64
    };

    // A fresh registry (new process state: nothing shared with the
    // training model) restores the checkpoint into an identical endpoint.
    let registry =
        ModelRegistry::build(std::slice::from_ref(&cell), SCALE, SEED, Some(&dir)).unwrap();
    let endpoint = registry.get(0);
    assert!(endpoint.restored, "checkpoint must be picked up");

    let served = endpoint.serve_batch(&test_idx);
    assert_eq!(
        served, expected_logits,
        "served logits must be bit-identical"
    );
    let served_acc = endpoint.eval_accuracy(&test_idx, 16);
    assert_eq!(
        served_acc.to_bits(),
        expected_acc.to_bits(),
        "eval accuracy must survive the round trip exactly ({served_acc} vs {expected_acc})"
    );

    // Without the checkpoint directory the same cell serves its (different)
    // initialization weights — proving the restore actually did something.
    let fresh = ModelRegistry::build(std::slice::from_ref(&cell), SCALE, SEED, None).unwrap();
    assert!(!fresh.get(0).restored);
    assert_ne!(
        fresh.get(0).serve_batch(&test_idx[..1]),
        endpoint.serve_batch(&test_idx[..1]),
        "trained weights must differ from initialization"
    );

    std::fs::remove_dir_all(&dir).ok();
}
