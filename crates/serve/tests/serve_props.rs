//! Property tests of the serving engine: conservation (no request dropped
//! or duplicated under arbitrary arrival patterns), exact latency
//! accounting on the serve clock, and bit-identical outputs under
//! fault-driven OOM split-and-retry.

use gnn_faults::{FaultKind, FaultPlan};
use gnn_serve::engine::run;
use gnn_serve::{BatchPolicy, CellId, ModelRegistry, Request, ServeConfig};
use proptest::prelude::*;

thread_local! {
    /// One registry per test thread: model building is the expensive part,
    /// and the engine only reads it.
    static REGISTRY: ModelRegistry = ModelRegistry::build(
        &[
            CellId::parse("table4/Cora/GCN/PyG").unwrap(),
            CellId::parse("table5/ENZYMES/GIN/DGL").unwrap(),
        ],
        0.05,
        0,
        None,
    )
    .unwrap();
}

/// Arbitrary-but-ordered request streams: non-negative inter-arrival gaps
/// (including bursts of zero), arbitrary endpoint choice, arbitrary
/// targets.
fn arrivals_strategy() -> impl Strategy<Value = Vec<(f64, usize, u32)>> {
    proptest::collection::vec((0.0..0.004f64, 0..2usize, 0..1000u32), 1..48)
}

fn build_requests(registry: &ModelRegistry, raw: &[(f64, usize, u32)]) -> Vec<Request> {
    let mut now = 0.0;
    raw.iter()
        .enumerate()
        .map(|(id, &(gap, endpoint, target))| {
            now += gap;
            Request {
                id: id as u64,
                endpoint,
                target: target % registry.get(endpoint).num_targets(),
                arrival: now,
            }
        })
        .collect()
}

fn cfg_for(policy: BatchPolicy, queue_cap: usize, replicas: usize) -> ServeConfig {
    ServeConfig {
        policy,
        queue_cap,
        replicas,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every submitted request is answered exactly once — served or
    /// rejected, never dropped, never duplicated — for arbitrary arrival
    /// orders, batch policies, queue bounds, and fleet sizes.
    #[test]
    fn no_request_dropped_or_duplicated(
        raw in arrivals_strategy(),
        max_batch in 1..9usize,
        delay_us in 0.0..3000.0f64,
        extra_cap in 0..24usize,
        replicas in 1..4usize,
    ) {
        let policy = BatchPolicy { max_batch, max_delay: delay_us * 1e-6 };
        let cfg = cfg_for(policy, max_batch + extra_cap, replicas);
        REGISTRY.with(|registry| {
            let requests = build_requests(registry, &raw);
            let report = run(&cfg, registry, requests.clone());
            prop_assert_eq!(report.requests.len(), requests.len(), "conservation");
            for (i, r) in report.requests.iter().enumerate() {
                prop_assert_eq!(r.id, i as u64, "ids dense and unique");
            }
            prop_assert_eq!(report.answered() + report.rejected(), requests.len());
            prop_assert_eq!(report.dropped(requests.len()), 0);
            for b in &report.batches {
                prop_assert!(b.size >= 1 && b.size <= policy.max_batch);
            }
            for q in &report.queues {
                prop_assert!(q.max_depth <= cfg.queue_cap);
            }
            Ok(())
        })?;
    }

    /// Latency accounting is exact on the serve clock: a served request's
    /// recorded latency is precisely reply − enqueue, its enqueue is its
    /// arrival, and its reply is its batch's dispatch + service time
    /// (bitwise, no accumulated drift).
    #[test]
    fn latency_is_enqueue_to_reply_on_the_serve_clock(
        raw in arrivals_strategy(),
        max_batch in 1..7usize,
        delay_us in 0.0..2000.0f64,
    ) {
        let policy = BatchPolicy { max_batch, max_delay: delay_us * 1e-6 };
        let cfg = cfg_for(policy, 64, 2);
        REGISTRY.with(|registry| {
            let requests = build_requests(registry, &raw);
            let report = run(&cfg, registry, requests.clone());
            for r in &report.requests {
                prop_assert_eq!(
                    r.enqueue.to_bits(),
                    requests[r.id as usize].arrival.to_bits(),
                    "enqueue is the arrival instant"
                );
                prop_assert_eq!(r.latency().to_bits(), (r.reply - r.enqueue).to_bits());
                if r.served() {
                    prop_assert!(r.dispatch >= r.enqueue, "no time travel into a batch");
                    let b = &report.batches[r.batch.unwrap() as usize];
                    prop_assert_eq!(r.dispatch.to_bits(), b.start.to_bits());
                    prop_assert_eq!(
                        r.reply.to_bits(),
                        (b.start + b.duration).to_bits(),
                        "reply is exactly batch dispatch + service time"
                    );
                }
            }
            Ok(())
        })?;
    }
}

/// Shared config for the fault-equivalence tests: fast arrivals (full
/// batches), queues deep enough that nothing is rejected, so the served
/// sets of clean and faulted runs line up one-to-one.
fn fault_cfg() -> ServeConfig {
    ServeConfig {
        endpoints: vec![
            CellId::parse("table4/Cora/GCN/PyG").unwrap(),
            CellId::parse("table5/ENZYMES/GIN/DGL").unwrap(),
        ],
        requests: 80,
        rate: 50_000.0,
        seed: 11,
        policy: BatchPolicy {
            max_batch: 8,
            max_delay: 0.002,
        },
        queue_cap: 128,
        replicas: 2,
        scale: 0.05,
        ckpt_dir: None,
        ..ServeConfig::default()
    }
}

fn assert_outputs_bit_identical(clean: &gnn_serve::ServeReport, faulted: &gnn_serve::ServeReport) {
    assert_eq!(clean.requests.len(), faulted.requests.len());
    for (c, f) in clean.requests.iter().zip(&faulted.requests) {
        assert_eq!(c.id, f.id);
        assert!(
            c.served() && f.served(),
            "request {} must be served in both",
            c.id
        );
        assert_eq!(c.output, f.output, "request {} logits diverged", c.id);
        assert_eq!(c.class, f.class);
    }
}

#[test]
fn oom_split_and_retry_preserves_outputs_bit_identically() {
    let cfg = fault_cfg();
    let clean = gnn_serve::serve(&cfg).unwrap();
    assert_eq!(clean.rejected(), 0, "test setup: no backpressure");

    // One-shot OOMs aimed into multi-request batches (allocation counters
    // are 1-based and count every forward alloc, so small `at` values land
    // in the first, full batches), plus a kernel fault to exercise the
    // in-place retry path.
    let plan = FaultPlan::empty()
        .with(FaultKind::Oom { at: 3 })
        .with(FaultKind::Oom { at: 200 })
        .with(FaultKind::KernelFault { at: 400 });
    let handle = gnn_faults::install(plan);
    let faulted = gnn_serve::serve(&cfg).unwrap();
    let log = gnn_faults::finish(handle);

    assert!(!log.is_empty(), "the plan must actually fire");
    assert!(
        faulted.oom_splits() > 0,
        "an OOM on a multi-request batch must trigger split-and-retry: {:?}",
        faulted.notes
    );
    assert_outputs_bit_identical(&clean, &faulted);
    // Retries cost time, never answers.
    assert_eq!(faulted.answered(), cfg.requests);
    assert!(faulted.makespan >= clean.makespan);
}

#[test]
fn canonical_fault_plan_answers_every_request_with_identical_outputs() {
    let cfg = fault_cfg();
    let clean = gnn_serve::serve(&cfg).unwrap();

    let run_canonical = || {
        let handle = gnn_faults::install(FaultPlan::canonical());
        let report = gnn_serve::serve(&cfg).unwrap();
        let log = gnn_faults::finish(handle);
        (report, log)
    };
    let (faulted, log) = run_canonical();
    assert!(!log.is_empty(), "canonical plan must fire");
    assert_eq!(faulted.answered(), cfg.requests, "all answered under chaos");
    assert_eq!(faulted.replicas_lost, 1, "replica failure shed, not fatal");
    assert_outputs_bit_identical(&clean, &faulted);

    // Same seed + same plan → the faulted run itself replays bit-identically.
    let (again, _) = run_canonical();
    assert_eq!(faulted.makespan.to_bits(), again.makespan.to_bits());
    for (a, b) in faulted.requests.iter().zip(&again.requests) {
        assert_eq!(a.reply.to_bits(), b.reply.to_bits());
        assert_eq!(a.output, b.output);
    }
}
