//! `gnn-serve`: batched, fault-tolerant inference serving for the GNN
//! framework study.
//!
//! The training side of this repository reproduces the paper's sweep; this
//! crate closes the loop by *serving* those models. Every one of the 60
//! sweep cells is an addressable endpoint ([`CellId`]); an immutable
//! [`ModelRegistry`] rebuilds each cell's dataset and architecture exactly
//! as the sweep did and pours `gnn-ckpt v1` checkpoint weights back in via
//! [`gnn_train::Checkpoint::load_params`]. A seeded open-loop client
//! workload ([`workload::generate`]) flows through a dynamic batcher
//! ([`BatchPolicy`]: max-batch-size + max-queue-delay over bounded queues
//! with typed [`ServeError::Overloaded`] backpressure) onto simulated
//! device replicas; forwards run in [`gnn_tensor::inference`] mode through
//! the frameworks' real batch-collation paths.
//!
//! Everything is deterministic: same config + same seed → bit-identical
//! replies, latencies, and `serve_metrics.csv` — including under armed
//! `gnn-faults` plans, because the engine's fault tolerance (OOM
//! split-and-retry, kernel retry, replica shedding) preserves outputs and
//! answers every request. See [`engine::serve`] for the entry point and
//! [`ServeReport`] for what a run yields; the `gnn-bench serve` binary
//! sweeps batching policies across endpoints from the command line.
//!
//! The **fleet** layer ([`fleet::serve_fleet`]) scales the same engine out
//! to a simulated fleet of endpoint shards: a deterministic router
//! ([`Router`]: consistent hashing or least-loaded), health checking with
//! ejection and re-admission ([`HealthPolicy`]), per-shard admission
//! control with typed [`ServeError::Shed`], token-bucket retry budgets and
//! hedged requests (extra work provably ≤ `(1 + budget) × submitted`), and
//! queue-depth-driven replica autoscaling ([`AutoscalePolicy`]) — all on
//! the same serve clock, all bit-reproducible, all surviving `gnn-faults`
//! shard blackouts and network stragglers. Configuration errors are typed
//! ([`ServeConfigError`], [`WorkloadError`]) at construction time.

#![warn(missing_docs)]

pub mod autoscale;
pub mod batcher;
pub mod cell;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod health;
pub mod metrics;
pub mod registry;
pub mod router;
pub mod whatif;
pub mod workload;

pub use autoscale::{AutoscalePolicy, Autoscaler, ScaleAction};
pub use batcher::{BatchPolicy, EndpointQueue, Pending, ServeError};
pub use cell::{
    default_endpoints, sample_dataset, CellId, TaskKind, GRAPH_DATASETS, NODE_DATASETS,
};
pub use engine::{serve, ServeConfig, MAX_KERNEL_RETRIES};
pub use error::ServeConfigError;
pub use fleet::{serve_fleet, FleetConfig, FleetWorkload};
pub use health::{HealthPolicy, HealthState, HealthTransition};
pub use metrics::{
    check_serve_metrics_schema, percentile, write_serve_metrics, BatchRecord, FleetStats, Outcome,
    QueueStats, RequestRecord, ServeReport, CSV_HEADER, SERVE_METRICS_SCHEMA,
};
pub use registry::{argmax, Endpoint, ModelRegistry, SERVE_SAMPLE_SALT};
pub use router::{Router, RoutingPolicy};
pub use whatif::predict;
pub use workload::{ClosedLoop, Request, WorkloadError, WorkloadKind, WorkloadSpec};
