//! Queue-depth-driven replica autoscaling with cooldown, evaluated on the
//! serve clock.
//!
//! The fleet engine evaluates each shard's autoscaler at health-probe
//! ticks: outstanding work above `queue_high` adds a replica (up to
//! `max_replicas`), below `queue_low` removes one (down to
//! `min_replicas`). A per-shard `cooldown` of simulated seconds separates
//! consecutive actions so a transient spike cannot thrash the replica
//! count. All inputs are deterministic, so scaling decisions replay
//! bit-identically.

/// Autoscaling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Outstanding-request watermark that triggers a scale-up.
    pub queue_high: usize,
    /// Outstanding-request watermark that triggers a scale-down.
    pub queue_low: usize,
    /// Replica floor.
    pub min_replicas: usize,
    /// Replica ceiling.
    pub max_replicas: usize,
    /// Minimum simulated seconds between consecutive actions on one shard.
    pub cooldown: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            queue_high: 24,
            queue_low: 2,
            min_replicas: 1,
            max_replicas: 4,
            cooldown: 0.02,
        }
    }
}

/// A decision returned by [`Autoscaler::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Add one replica.
    Up,
    /// Remove one (idle-most) replica.
    Down,
}

/// One shard's autoscaler state: just the last action timestamp.
#[derive(Debug, Clone, Default)]
pub struct Autoscaler {
    last_action: Option<f64>,
}

impl Autoscaler {
    /// Evaluates the policy at simulated time `now` against the shard's
    /// outstanding-request count and current alive-replica count.
    pub fn decide(
        &mut self,
        now: f64,
        outstanding: usize,
        alive: usize,
        policy: &AutoscalePolicy,
    ) -> Option<ScaleAction> {
        if let Some(last) = self.last_action {
            if now - last < policy.cooldown {
                return None;
            }
        }
        let action = if outstanding > policy.queue_high && alive < policy.max_replicas {
            ScaleAction::Up
        } else if outstanding < policy.queue_low && alive > policy.min_replicas {
            ScaleAction::Down
        } else {
            return None;
        };
        self.last_action = Some(now);
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            queue_high: 10,
            queue_low: 2,
            min_replicas: 1,
            max_replicas: 3,
            cooldown: 0.05,
        }
    }

    #[test]
    fn scales_up_above_high_watermark_and_respects_ceiling() {
        let p = policy();
        let mut a = Autoscaler::default();
        assert_eq!(a.decide(0.0, 11, 2, &p), Some(ScaleAction::Up));
        let mut at_ceiling = Autoscaler::default();
        assert_eq!(at_ceiling.decide(0.0, 50, 3, &p), None, "ceiling holds");
    }

    #[test]
    fn scales_down_below_low_watermark_and_respects_floor() {
        let p = policy();
        let mut a = Autoscaler::default();
        assert_eq!(a.decide(0.0, 1, 2, &p), Some(ScaleAction::Down));
        let mut at_floor = Autoscaler::default();
        assert_eq!(at_floor.decide(0.0, 0, 1, &p), None, "floor holds");
    }

    #[test]
    fn cooldown_separates_consecutive_actions() {
        let p = policy();
        let mut a = Autoscaler::default();
        assert_eq!(a.decide(0.0, 11, 1, &p), Some(ScaleAction::Up));
        assert_eq!(a.decide(0.01, 11, 2, &p), None, "inside cooldown");
        assert_eq!(a.decide(0.05, 11, 2, &p), Some(ScaleAction::Up));
        // A denied decision does not reset the cooldown clock.
        assert_eq!(a.decide(0.09, 5, 3, &p), None);
        assert_eq!(a.decide(0.10, 1, 3, &p), Some(ScaleAction::Down));
    }

    #[test]
    fn mid_band_depth_takes_no_action() {
        let p = policy();
        let mut a = Autoscaler::default();
        for t in 0..20 {
            assert_eq!(a.decide(t as f64, 5, 2, &p), None);
        }
    }
}
