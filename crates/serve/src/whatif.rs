//! Causal what-if prediction for serving policies: re-simulates the
//! discrete-event engine with virtually sped-up batch service times.
//!
//! Naively scaling recorded latencies by a speedup factor is wrong for a
//! queueing system — faster service drains queues sooner, which changes
//! batch composition, which changes service times again. [`predict`]
//! therefore re-runs the *real* dispatch loop ([`crate::engine`]'s
//! `run_with`) end to end: every dispatched batch's service time comes from
//! capturing the endpoint's forward once under the base cost model and
//! replaying the captured device schedule under the hypothetical speedups
//! (`gnn_obs::whatif::replay_schedule`). Captures are memoized per
//! (endpoint, batch composition) and taken lazily, so compositions that
//! only arise *because* of the speedup are captured too.
//!
//! Because the replay is bit-exact against a real overlaid cost model, the
//! predicted report — every reply timestamp, percentile, and SLO number —
//! is bit-identical to actually re-running [`crate::serve`] with
//! `cfg.cost.with_speedups(..)`. The conformance tests hold it to that.

use std::collections::HashMap;

use gnn_device::Session;
use gnn_obs::whatif::{replay_schedule, SchedEntry, Speedups};
use gnn_obs::{self as obs};

use crate::engine::{run_with, Execution, ServeConfig};
use crate::error::ServeConfigError;
use crate::metrics::ServeReport;
use crate::registry::{Endpoint, ModelRegistry};
use crate::workload::{self, WorkloadKind, WorkloadSpec};

/// One memoized base-model capture of an endpoint forward for a specific
/// batch composition.
struct CapturedBatch {
    schedule: Vec<SchedEntry>,
    outputs: Vec<Vec<f32>>,
    flops: u64,
    bytes: u64,
    peak_memory: u64,
}

fn capture_batch(endpoint: &Endpoint, targets: &[u32], cfg: &ServeConfig) -> CapturedBatch {
    let oh = obs::install(obs::Collector::new());
    let handle = gnn_device::session::install(Session::new(cfg.cost.clone()));
    let outputs = endpoint.serve_batch(targets);
    let report = gnn_device::session::finish(handle);
    let trace = obs::finish(oh);
    CapturedBatch {
        schedule: trace.schedule,
        outputs,
        flops: report.total_flops,
        bytes: report.total_bytes,
        peak_memory: report.peak_memory,
    }
}

/// Predicts the full serve report of `cfg` with `speedups` virtually
/// applied, by re-simulating queue dynamics on the serve clock with
/// replayed-from-capture service times.
///
/// The prediction is bit-identical to re-running [`crate::serve`] with
/// `cfg.cost.with_speedups(speedups)` on a clean (fault-free) fleet.
/// Intended for clean what-if analysis: run it without a `gnn-faults` plan
/// armed and without an ambient trace collector (captures install their own
/// short-lived collector, which would displace one).
///
/// # Errors
///
/// Returns a typed [`ServeConfigError`] for an invalid config or a
/// registry that fails to build, like [`crate::serve`].
pub fn predict(cfg: &ServeConfig, speedups: &Speedups) -> Result<ServeReport, ServeConfigError> {
    cfg.validate()?;
    let registry =
        ModelRegistry::build(&cfg.endpoints, cfg.scale, cfg.seed, cfg.ckpt_dir.as_deref())?;
    let spec = WorkloadSpec {
        seed: cfg.seed,
        requests: cfg.requests,
        rate: cfg.rate,
        kind: WorkloadKind::OpenLoop,
    };
    let requests = workload::generate(&spec, &registry.target_space())?;
    let mut cache: HashMap<(String, Vec<u32>), CapturedBatch> = HashMap::new();
    Ok(run_with(
        cfg,
        &registry,
        requests,
        &mut |endpoint, targets, _notes| {
            let key = (endpoint.cell.path(), targets.to_vec());
            let captured = cache
                .entry(key)
                .or_insert_with(|| capture_batch(endpoint, targets, cfg));
            let replayed = replay_schedule(&captured.schedule, speedups);
            Execution {
                outputs: captured.outputs.clone(),
                duration: replayed.total,
                oom_splits: 0,
                kernel_retries: 0,
                flops: captured.flops,
                bytes: captured.bytes,
                busy: replayed.busy,
                peak_memory: captured.peak_memory,
            }
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use crate::cell::CellId;
    use crate::engine::serve;
    use gnn_obs::whatif::{COMPONENT_HOST, COMPONENT_LAUNCH};

    fn cfg() -> ServeConfig {
        ServeConfig {
            endpoints: vec![
                CellId::parse("table4/Cora/GCN/PyG").unwrap(),
                CellId::parse("table5/ENZYMES/GIN/DGL").unwrap(),
            ],
            requests: 50,
            rate: 800.0,
            seed: 3,
            policy: BatchPolicy {
                max_batch: 4,
                max_delay: 0.003,
            },
            queue_cap: 32,
            replicas: 2,
            scale: 0.05,
            ..ServeConfig::default()
        }
    }

    fn assert_reports_identical(predicted: &ServeReport, actual: &ServeReport, label: &str) {
        assert_eq!(predicted.requests.len(), actual.requests.len(), "{label}");
        for (p, a) in predicted.requests.iter().zip(&actual.requests) {
            assert_eq!(p.id, a.id, "{label}");
            assert_eq!(p.enqueue.to_bits(), a.enqueue.to_bits(), "{label}: enqueue");
            assert_eq!(
                p.dispatch.to_bits(),
                a.dispatch.to_bits(),
                "{label}: dispatch"
            );
            assert_eq!(
                p.reply.to_bits(),
                a.reply.to_bits(),
                "{label}: reply of request {}",
                p.id
            );
            assert_eq!(p.output, a.output, "{label}: outputs");
            assert_eq!(p.batch_size, a.batch_size, "{label}: batch composition");
        }
        assert_eq!(
            predicted.makespan.to_bits(),
            actual.makespan.to_bits(),
            "{label}: makespan"
        );
    }

    #[test]
    fn identity_prediction_reproduces_the_real_run() {
        let cfg = cfg();
        let predicted = predict(&cfg, &Speedups::identity()).unwrap();
        let actual = serve(&cfg).unwrap();
        assert_reports_identical(&predicted, &actual, "identity");
    }

    #[test]
    fn predictions_match_real_overlaid_reruns_bit_exactly() {
        let base = cfg();
        // Gemm (compute), SpMM (message passing), launch, and host levers at
        // finite and infinite factors; the sweep-side tests cover the rest.
        for component in [0usize, 8, COMPONENT_LAUNCH, COMPONENT_HOST] {
            for k in [1.25, 2.0, f64::INFINITY] {
                let s = Speedups::component(component, k);
                let predicted = predict(&base, &s).unwrap();
                let mut overlaid = base.clone();
                overlaid.cost = base.cost.with_speedups(&s);
                let actual = serve(&overlaid).unwrap();
                assert_reports_identical(
                    &predicted,
                    &actual,
                    &format!("component {component} at {k}x"),
                );
            }
        }
    }

    #[test]
    fn speeding_up_service_never_hurts_latency_percentiles() {
        let cfg = cfg();
        let base = predict(&cfg, &Speedups::identity()).unwrap();
        let (p50, _, _) = base.latency_percentiles();
        for component in [0usize, COMPONENT_LAUNCH] {
            let faster = predict(&cfg, &Speedups::component(component, 2.0)).unwrap();
            let (f50, _, _) = faster.latency_percentiles();
            assert!(
                f50 <= p50 + 1e-12,
                "2x {component} must not raise p50: {f50} vs {p50}"
            );
        }
    }
}
