//! Health checking on the serve clock: probe intervals, consecutive-failure
//! ejection, consecutive-success re-admission.
//!
//! The fleet engine probes every shard at global ticks `k × probe_interval`
//! of simulated time (deterministic — the serve clock is). A probe succeeds
//! when the shard is not blacked out and has at least one alive replica.
//! [`HealthState::observe`] folds each probe into per-shard consecutive
//! counters and reports the edge transitions: `fail_threshold` consecutive
//! failures eject the shard (the router stops considering it and its queues
//! drain), `readmit_threshold` consecutive successes re-admit it.

/// Health-checking knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Simulated seconds between probes of every shard.
    pub probe_interval: f64,
    /// Consecutive failed probes before ejection.
    pub fail_threshold: usize,
    /// Consecutive successful probes before an ejected shard is re-admitted.
    pub readmit_threshold: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            probe_interval: 0.005,
            fail_threshold: 2,
            readmit_threshold: 2,
        }
    }
}

/// An edge transition reported by [`HealthState::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// The shard crossed `fail_threshold` consecutive failures.
    Ejected,
    /// An ejected shard crossed `readmit_threshold` consecutive successes.
    Readmitted,
}

/// One shard's health-checker state.
#[derive(Debug, Clone, Default)]
pub struct HealthState {
    consecutive_fails: usize,
    consecutive_oks: usize,
    ejected: bool,
}

impl HealthState {
    /// Whether the health checker currently routes around this shard.
    pub fn is_ejected(&self) -> bool {
        self.ejected
    }

    /// Folds one probe result in; returns the transition it caused, if any.
    pub fn observe(&mut self, ok: bool, policy: &HealthPolicy) -> Option<HealthTransition> {
        if ok {
            self.consecutive_fails = 0;
            self.consecutive_oks += 1;
            if self.ejected && self.consecutive_oks >= policy.readmit_threshold {
                self.ejected = false;
                self.consecutive_oks = 0;
                return Some(HealthTransition::Readmitted);
            }
        } else {
            self.consecutive_oks = 0;
            self.consecutive_fails += 1;
            if !self.ejected && self.consecutive_fails >= policy.fail_threshold {
                self.ejected = true;
                self.consecutive_fails = 0;
                return Some(HealthTransition::Ejected);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejection_needs_consecutive_failures() {
        let policy = HealthPolicy {
            probe_interval: 0.01,
            fail_threshold: 3,
            readmit_threshold: 2,
        };
        let mut s = HealthState::default();
        assert_eq!(s.observe(false, &policy), None);
        assert_eq!(s.observe(false, &policy), None);
        // A success in between resets the streak.
        assert_eq!(s.observe(true, &policy), None);
        assert_eq!(s.observe(false, &policy), None);
        assert_eq!(s.observe(false, &policy), None);
        assert_eq!(s.observe(false, &policy), Some(HealthTransition::Ejected));
        assert!(s.is_ejected());
        // Further failures while ejected report nothing new.
        assert_eq!(s.observe(false, &policy), None);
    }

    #[test]
    fn readmission_needs_consecutive_successes() {
        let policy = HealthPolicy {
            probe_interval: 0.01,
            fail_threshold: 1,
            readmit_threshold: 2,
        };
        let mut s = HealthState::default();
        assert_eq!(s.observe(false, &policy), Some(HealthTransition::Ejected));
        assert_eq!(s.observe(true, &policy), None);
        // A failure resets the recovery streak (and reports nothing: the
        // shard is already ejected).
        assert_eq!(s.observe(false, &policy), None);
        assert_eq!(s.observe(true, &policy), None);
        assert_eq!(s.observe(true, &policy), Some(HealthTransition::Readmitted));
        assert!(!s.is_ejected());
        // And the cycle can repeat.
        assert_eq!(s.observe(false, &policy), Some(HealthTransition::Ejected));
    }

    #[test]
    fn healthy_shard_never_transitions_on_successes() {
        let policy = HealthPolicy::default();
        let mut s = HealthState::default();
        for _ in 0..100 {
            assert_eq!(s.observe(true, &policy), None);
        }
        assert!(!s.is_ejected());
    }
}
