//! The fleet router: picks the shard a request is dispatched to.
//!
//! Two policies, both fully deterministic:
//!
//! - **Consistent hashing** — each shard owns a set of virtual nodes on a
//!   hash ring keyed by a splitmix64-style mixer; a request hashes its
//!   `(endpoint, target)` key onto the ring and walks clockwise to the
//!   first virtual node whose shard is healthy. Affinity: the same key
//!   always lands on the same shard while that shard is healthy, and
//!   spills to a stable successor when it is ejected.
//! - **Least-loaded** — the healthy shard with the fewest outstanding
//!   requests, lowest index breaking ties. No affinity, best balancing.
//!
//! The router never sees the serve clock: health is an input (`healthy`
//! mask from the health checker), load is an input (outstanding counts
//! from the fleet engine), so routing is a pure function of its arguments
//! — the property the router-determinism test leans on.

use std::fmt;

/// Virtual nodes per shard on the consistent-hash ring. Enough to spread
/// six endpoints over a handful of shards without visible banding.
const VNODES_PER_SHARD: usize = 16;

/// Which routing policy the fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Consistent hashing over `(endpoint, target)` keys with virtual
    /// nodes; sticky while shards stay healthy.
    ConsistentHash,
    /// Fewest outstanding requests wins; lowest index breaks ties.
    LeastLoaded,
}

impl RoutingPolicy {
    /// Stable label used in reports and `serve_metrics.csv`.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::ConsistentHash => "consistent-hash",
            RoutingPolicy::LeastLoaded => "least-loaded",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<RoutingPolicy> {
        match s {
            "consistent-hash" => Some(RoutingPolicy::ConsistentHash),
            "least-loaded" => Some(RoutingPolicy::LeastLoaded),
            _ => None,
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// splitmix64: a fast, well-mixed 64-bit finalizer. Deterministic across
/// platforms (no `DefaultHasher`, whose seeds vary per process).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The router. Built once per fleet run; the ring never changes (health
/// masking happens at lookup time, so a recovered shard gets its old keys
/// back — classic consistent-hash behavior).
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    /// `(ring position, shard)`, sorted by position.
    ring: Vec<(u64, usize)>,
}

impl Router {
    /// Builds the router for `shards` shards.
    pub fn new(policy: RoutingPolicy, shards: usize) -> Self {
        let mut ring = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let pos = mix((shard as u64) << 32 | vnode as u64);
                ring.push((pos, shard));
            }
        }
        ring.sort_unstable();
        Router { policy, ring }
    }

    /// The policy this router runs.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Picks the shard for a request keyed by `(endpoint, target)`.
    /// `healthy[s]` must be false for ejected shards; `load[s]` is the
    /// shard's outstanding-request count. Returns `None` when no shard is
    /// healthy — the caller sheds with a typed `Unroutable`.
    pub fn route(
        &self,
        endpoint: usize,
        target: u32,
        healthy: &[bool],
        load: &[usize],
    ) -> Option<usize> {
        if !healthy.iter().any(|&h| h) {
            return None;
        }
        match self.policy {
            RoutingPolicy::ConsistentHash => {
                let key = mix((endpoint as u64) << 33 ^ target as u64 ^ 0x5bd1e995);
                let start = self.ring.partition_point(|&(pos, _)| pos < key);
                // Walk clockwise (wrapping) past virtual nodes of unhealthy
                // shards; the healthy check above bounds the walk.
                for i in 0..self.ring.len() {
                    let (_, shard) = self.ring[(start + i) % self.ring.len()];
                    if healthy[shard] {
                        return Some(shard);
                    }
                }
                None
            }
            RoutingPolicy::LeastLoaded => (0..healthy.len())
                .filter(|&s| healthy[s])
                .min_by_key(|&s| load[s]),
        }
    }

    /// Picks a healthy shard other than `not`, for hedge twins and
    /// failover re-routes. Consistent hashing keeps walking its ring past
    /// `not`; least-loaded takes the argmin over the remaining shards.
    pub fn route_avoiding(
        &self,
        endpoint: usize,
        target: u32,
        not: usize,
        healthy: &[bool],
        load: &[usize],
    ) -> Option<usize> {
        let mut masked = healthy.to_vec();
        if not < masked.len() {
            masked[not] = false;
        }
        self.route(endpoint, target, &masked, load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in [RoutingPolicy::ConsistentHash, RoutingPolicy::LeastLoaded] {
            assert_eq!(RoutingPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(RoutingPolicy::parse("random"), None);
    }

    #[test]
    fn consistent_hash_is_sticky_and_spills_on_ejection() {
        let r = Router::new(RoutingPolicy::ConsistentHash, 3);
        let healthy = [true, true, true];
        let load = [0, 0, 0];
        let home = r.route(1, 42, &healthy, &load).unwrap();
        for _ in 0..5 {
            assert_eq!(r.route(1, 42, &healthy, &load), Some(home), "sticky");
        }
        // Eject the home shard: the key spills to a stable successor...
        let mut degraded = healthy;
        degraded[home] = false;
        let spill = r.route(1, 42, &degraded, &load).unwrap();
        assert_ne!(spill, home);
        assert_eq!(
            r.route(1, 42, &degraded, &load),
            Some(spill),
            "stable spill"
        );
        // ...and returns home on recovery.
        assert_eq!(r.route(1, 42, &healthy, &load), Some(home));
    }

    #[test]
    fn consistent_hash_spreads_keys_over_shards() {
        let r = Router::new(RoutingPolicy::ConsistentHash, 4);
        let healthy = [true; 4];
        let load = [0; 4];
        let mut counts = [0usize; 4];
        for endpoint in 0..6 {
            for target in 0..200 {
                counts[r.route(endpoint, target, &healthy, &load).unwrap()] += 1;
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} never routed to: {counts:?}");
        }
    }

    #[test]
    fn least_loaded_takes_argmin_with_lowest_index_ties() {
        let r = Router::new(RoutingPolicy::LeastLoaded, 3);
        let healthy = [true, true, true];
        assert_eq!(r.route(0, 0, &healthy, &[5, 2, 2]), Some(1), "tie: lowest");
        assert_eq!(r.route(0, 0, &healthy, &[0, 2, 2]), Some(0));
        assert_eq!(r.route(0, 0, &[false, true, true], &[0, 2, 1]), Some(2));
    }

    #[test]
    fn no_healthy_shard_routes_nowhere() {
        for policy in [RoutingPolicy::ConsistentHash, RoutingPolicy::LeastLoaded] {
            let r = Router::new(policy, 2);
            assert_eq!(r.route(0, 0, &[false, false], &[0, 0]), None);
        }
    }

    #[test]
    fn route_avoiding_skips_the_named_shard() {
        let r = Router::new(RoutingPolicy::LeastLoaded, 2);
        let healthy = [true, true];
        assert_eq!(r.route_avoiding(0, 0, 0, &healthy, &[0, 9]), Some(1));
        assert_eq!(
            r.route_avoiding(0, 0, 0, &[true, false], &[0, 0]),
            None,
            "the only other shard is unhealthy"
        );
    }
}
