//! Typed configuration errors for the serving layer.
//!
//! Every way a [`crate::ServeConfig`] / [`crate::FleetConfig`] can be
//! impossible, a cell path can fail to parse, or a registry can fail to
//! build is one variant of [`ServeConfigError`]. The `Display` renderings
//! are byte-identical to the stringly diagnostics earlier releases
//! embedded in artifacts and lint findings, so nothing downstream drifts —
//! callers that matched on substrings keep matching, and callers that want
//! structure can now match on the variant instead.

use std::fmt;

use crate::workload::WorkloadError;

/// Why a serving configuration (single-engine or fleet) is impossible, a
/// cell path is unaddressable, or a registry cannot be built.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeConfigError {
    /// The config names no endpoints.
    NoEndpoints,
    /// The config generates no requests.
    NoRequests,
    /// The arrival rate is zero, negative, or non-finite.
    BadRate(f64),
    /// The batching policy's `max_batch` is zero.
    ZeroMaxBatch,
    /// The batching policy's `max_delay` is negative or non-finite.
    BadMaxDelay(f64),
    /// The per-endpoint queue bound is below `max_batch`, so a full batch
    /// could never accumulate.
    QueueBelowBatch {
        /// Configured queue bound.
        queue_cap: usize,
        /// Configured batch-size cap.
        max_batch: usize,
    },
    /// The config has zero replicas.
    NoReplicas,
    /// A cell path did not have four `/`-separated components.
    MalformedCellPath(String),
    /// A cell path named an experiment other than `table4`/`table5`.
    UnknownExperiment {
        /// The unknown experiment component.
        experiment: String,
        /// The full path it appeared in.
        path: String,
    },
    /// A cell path named a dataset its experiment does not include.
    UnknownDataset {
        /// The experiment component (`table4` or `table5`).
        experiment: String,
        /// The unknown dataset component.
        dataset: String,
        /// The full path it appeared in.
        path: String,
    },
    /// A cell path named an unknown model.
    UnknownModel {
        /// The unknown model component.
        model: String,
        /// The full path it appeared in.
        path: String,
    },
    /// A cell path named an unknown framework.
    UnknownFramework {
        /// The unknown framework component.
        framework: String,
        /// The full path it appeared in.
        path: String,
    },
    /// A [`crate::CellId`] carried a node dataset the generators do not
    /// know (only reachable by constructing the id directly).
    UnknownNodeDataset(String),
    /// A [`crate::CellId`] carried a graph dataset the generators do not
    /// know (only reachable by constructing the id directly).
    UnknownGraphDataset(String),
    /// A [`crate::CellId`] carried a sample dataset that is not a cataloged
    /// `<spec>-<sampler>` pair (only reachable by constructing the id
    /// directly).
    UnknownSampleDataset(String),
    /// A checkpoint existed for the endpoint but failed to load.
    Checkpoint {
        /// The endpoint's cell path.
        cell: String,
        /// The checkpoint loader's diagnostic.
        message: String,
    },
    /// The workload specification is degenerate.
    Workload(WorkloadError),
    /// The fleet config has zero shards.
    NoShards,
    /// The per-shard admission cap is zero — every request would shed.
    ZeroAdmissionCap,
    /// The router's retry budget is negative or non-finite.
    BadRetryBudget(f64),
    /// The health checker's probe interval is zero, negative, or
    /// non-finite — it could never observe a shard.
    BadProbeInterval(f64),
    /// The health checker's failure threshold is zero — it could never
    /// eject a shard.
    ZeroFailThreshold,
    /// The health checker's re-admission threshold is zero — an ejected
    /// shard could never return.
    ZeroReadmitThreshold,
    /// The hedge delay is zero, negative, or non-finite.
    BadHedgeDelay(f64),
    /// The router↔shard network delay is negative or non-finite.
    BadNetDelay(f64),
    /// The SLO latency target is zero, negative, or non-finite.
    BadSloTarget(f64),
    /// The autoscaler's replica floor is zero.
    ZeroMinReplicas,
    /// The autoscaler's replica floor exceeds its ceiling.
    AutoscaleBounds {
        /// Configured floor.
        min: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The autoscaler's scale-down watermark is not below its scale-up
    /// watermark, so it would oscillate or never act.
    AutoscaleWatermarks {
        /// Scale-down queue-depth watermark.
        low: usize,
        /// Scale-up queue-depth watermark.
        high: usize,
    },
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::NoEndpoints => write!(f, "serve config has no endpoints"),
            ServeConfigError::NoRequests => write!(f, "serve config generates no requests"),
            ServeConfigError::BadRate(rate) => {
                write!(f, "arrival rate {rate} must be positive")
            }
            ServeConfigError::ZeroMaxBatch => write!(f, "max_batch must be at least 1"),
            ServeConfigError::BadMaxDelay(delay) => {
                write!(f, "max_delay {delay} must be finite and non-negative")
            }
            ServeConfigError::QueueBelowBatch {
                queue_cap,
                max_batch,
            } => write!(
                f,
                "queue_cap {queue_cap} below max_batch {max_batch}: a full batch could never \
                 accumulate"
            ),
            ServeConfigError::NoReplicas => write!(f, "need at least one replica"),
            ServeConfigError::MalformedCellPath(path) => write!(
                f,
                "cell path `{path}` must be experiment/dataset/model/framework"
            ),
            ServeConfigError::UnknownExperiment { experiment, path } => {
                write!(f, "unknown experiment `{experiment}` in `{path}`")
            }
            ServeConfigError::UnknownDataset {
                experiment,
                dataset,
                path,
            } => write!(f, "unknown {experiment} dataset `{dataset}` in `{path}`"),
            ServeConfigError::UnknownModel { model, path } => {
                write!(f, "unknown model `{model}` in `{path}`")
            }
            ServeConfigError::UnknownFramework { framework, path } => {
                write!(f, "unknown framework `{framework}` in `{path}`")
            }
            ServeConfigError::UnknownNodeDataset(name) => {
                write!(f, "unknown node dataset `{name}`")
            }
            ServeConfigError::UnknownGraphDataset(name) => {
                write!(f, "unknown graph dataset `{name}`")
            }
            ServeConfigError::UnknownSampleDataset(name) => {
                write!(
                    f,
                    "unknown sample dataset `{name}` (want `<spec>-<neighbor|layerwise>`)"
                )
            }
            ServeConfigError::Checkpoint { cell, message } => {
                write!(f, "endpoint {cell}: {message}")
            }
            ServeConfigError::Workload(err) => write!(f, "{err}"),
            ServeConfigError::NoShards => write!(f, "fleet config has no shards"),
            ServeConfigError::ZeroAdmissionCap => {
                write!(f, "admission cap must be at least 1")
            }
            ServeConfigError::BadRetryBudget(budget) => {
                write!(f, "retry budget {budget} must be finite and non-negative")
            }
            ServeConfigError::BadProbeInterval(interval) => {
                write!(f, "probe interval {interval} must be positive")
            }
            ServeConfigError::ZeroFailThreshold => {
                write!(f, "health fail threshold must be at least 1")
            }
            ServeConfigError::ZeroReadmitThreshold => {
                write!(f, "health readmit threshold must be at least 1")
            }
            ServeConfigError::BadHedgeDelay(delay) => {
                write!(f, "hedge delay {delay} must be positive")
            }
            ServeConfigError::BadNetDelay(delay) => {
                write!(f, "network delay {delay} must be finite and non-negative")
            }
            ServeConfigError::BadSloTarget(target) => {
                write!(f, "slo target {target} must be positive")
            }
            ServeConfigError::ZeroMinReplicas => {
                write!(f, "autoscale min_replicas must be at least 1")
            }
            ServeConfigError::AutoscaleBounds { min, max } => {
                write!(f, "autoscale min_replicas {min} above max_replicas {max}")
            }
            ServeConfigError::AutoscaleWatermarks { low, high } => write!(
                f,
                "autoscale queue_low {low} must be below queue_high {high}"
            ),
        }
    }
}

impl std::error::Error for ServeConfigError {}

impl From<WorkloadError> for ServeConfigError {
    fn from(err: WorkloadError) -> Self {
        ServeConfigError::Workload(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_stay_byte_identical_to_the_stringly_era() {
        // Artifacts (lint findings, CSV notes) embedded these exact strings
        // before the enum existed; the typed variants must render them
        // unchanged.
        assert_eq!(
            ServeConfigError::NoEndpoints.to_string(),
            "serve config has no endpoints"
        );
        assert_eq!(
            ServeConfigError::BadRate(0.0).to_string(),
            "arrival rate 0 must be positive"
        );
        assert_eq!(
            ServeConfigError::QueueBelowBatch {
                queue_cap: 2,
                max_batch: 4
            }
            .to_string(),
            "queue_cap 2 below max_batch 4: a full batch could never accumulate"
        );
        assert_eq!(
            ServeConfigError::MalformedCellPath("a/b".into()).to_string(),
            "cell path `a/b` must be experiment/dataset/model/framework"
        );
        assert_eq!(
            ServeConfigError::UnknownDataset {
                experiment: "table4".into(),
                dataset: "ENZYMES".into(),
                path: "table4/ENZYMES/GCN/PyG".into()
            }
            .to_string(),
            "unknown table4 dataset `ENZYMES` in `table4/ENZYMES/GCN/PyG`"
        );
        assert_eq!(
            ServeConfigError::Checkpoint {
                cell: "table4/Cora/GCN/PyG".into(),
                message: "bad magic".into()
            }
            .to_string(),
            "endpoint table4/Cora/GCN/PyG: bad magic"
        );
    }

    #[test]
    fn fleet_variants_name_the_offending_knob() {
        assert!(ServeConfigError::BadRetryBudget(f64::NAN)
            .to_string()
            .contains("retry budget"));
        assert!(ServeConfigError::AutoscaleWatermarks { low: 9, high: 4 }
            .to_string()
            .contains("queue_low 9"));
        let from: ServeConfigError = WorkloadError::NoEndpoints.into();
        assert_eq!(from.to_string(), "workload needs at least one endpoint");
    }
}
