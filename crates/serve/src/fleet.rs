//! The fleet engine: sharded serving with routing, health-checked
//! failover, admission control, bounded retries/hedges, and replica
//! autoscaling — all on the same deterministic discrete-event serve clock
//! as the single engine.
//!
//! A fleet is `shards` endpoint shards, each owning its own per-endpoint
//! batch queues and replica slots. A router ([`crate::Router`]) picks the
//! shard for every arrival; a health checker ([`crate::HealthState`])
//! probes every shard at fixed simulated intervals and ejects shards that
//! fail consecutively (blackout windows, dead replicas), draining their
//! queues into failover re-routes or typed sheds; an autoscaler
//! ([`crate::Autoscaler`]) moves each shard's replica count between
//! watermarks. Every knob is deterministic, so a rerun with the same
//! [`FleetConfig`] and fault plan reproduces `serve_metrics.csv`
//! bit-identically — asserted by the router-determinism property test and
//! the `fleet-chaos` CI job.
//!
//! **Conservation.** Every generated request reaches exactly one terminal
//! typed outcome: answered ([`Outcome::Ok`]), rejected
//! ([`Outcome::Rejected`], full queue), or shed ([`Outcome::Shed`] —
//! admission cap, unroutable, or ejection drain without a retry token).
//! Nothing is silently dropped, under any fault plan.
//!
//! **Bounded amplification.** Retries and hedges spend from a token
//! bucket that earns `retry_budget` tokens per primary admission and pays
//! one token per extra enqueue. Total enqueued work is therefore provably
//! ≤ `(1 + retry_budget) × submitted` — a brownout cannot be amplified by
//! the recovery machinery. The bound is asserted at runtime on every run
//! and audited statically by the `fleet-config` lint.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;

use gnn_device::CostModel;
use gnn_obs::{self as obs, tracks, Value};

use crate::autoscale::{AutoscalePolicy, Autoscaler, ScaleAction};
use crate::batcher::{BatchPolicy, EndpointQueue, ServeError};
use crate::cell::{default_endpoints, CellId};
use crate::engine::exec_targets;
use crate::error::ServeConfigError;
use crate::health::{HealthPolicy, HealthState, HealthTransition};
use crate::metrics::{BatchRecord, FleetStats, Outcome, QueueStats, RequestRecord, ServeReport};
use crate::registry::{argmax, ModelRegistry};
use crate::router::{Router, RoutingPolicy};
use crate::workload::{self, ClosedLoop, Request, WorkloadKind, WorkloadSpec};

/// The arrival process a fleet run drives.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetWorkload {
    /// A pre-generated open-loop stream ([`WorkloadKind`]): constant-rate,
    /// diurnal, or flash-crowd.
    Open(WorkloadKind),
    /// A closed loop of `clients` simulated users, each keeping one
    /// request outstanding with exponential `think_time` gaps.
    Closed {
        /// Concurrent simulated clients.
        clients: usize,
        /// Mean think time between a reply and the client's next request.
        think_time: f64,
    },
}

/// Everything one fleet serving run needs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Cells every shard loads and serves.
    pub endpoints: Vec<CellId>,
    /// Endpoint shards in the fleet.
    pub shards: usize,
    /// Replica slots each shard starts with.
    pub replicas_per_shard: usize,
    /// Routing policy at the fleet front door.
    pub routing: RoutingPolicy,
    /// Batching policy every shard runs.
    pub policy: BatchPolicy,
    /// Per-endpoint queue bound within each shard.
    pub queue_cap: usize,
    /// Per-shard outstanding-request cap; arrivals beyond it are shed
    /// with [`ServeError::Shed`] before queuing.
    pub admission_cap: usize,
    /// Retry tokens earned per primary admission; retries and hedge twins
    /// spend one token each, so extra work ≤ `retry_budget × submitted`.
    pub retry_budget: f64,
    /// Hedge a queued request onto a second shard after this many
    /// simulated seconds without dispatch (`None` disables hedging).
    pub hedge_after: Option<f64>,
    /// Health-checking knobs.
    pub health: HealthPolicy,
    /// Autoscaling knobs (`None` pins replica counts).
    pub autoscale: Option<AutoscalePolicy>,
    /// One-way router↔shard network delay added to every reply (scaled by
    /// an active `netslow` fault's factor).
    pub net_delay: f64,
    /// SLO latency target (seconds) the report grades attainment against.
    pub slo_target: f64,
    /// The arrival process.
    pub workload: FleetWorkload,
    /// Total requests (open loop: generated up front; closed loop: the
    /// minting budget).
    pub requests: usize,
    /// Mean arrival rate for open-loop kinds, requests per simulated second.
    pub rate: f64,
    /// Seed for workload, dataset, and architecture generation.
    pub seed: u64,
    /// Dataset scale factor (sweep convention).
    pub scale: f64,
    /// Directory of `gnn-ckpt v1` checkpoints to restore weights from.
    pub ckpt_dir: Option<PathBuf>,
    /// Cost model pricing every replica session.
    pub cost: CostModel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            endpoints: default_endpoints(),
            shards: 3,
            replicas_per_shard: 2,
            routing: RoutingPolicy::ConsistentHash,
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: 0.002,
            },
            queue_cap: 32,
            admission_cap: 64,
            retry_budget: 0.5,
            hedge_after: Some(0.01),
            health: HealthPolicy::default(),
            autoscale: Some(AutoscalePolicy::default()),
            net_delay: 0.0002,
            slo_target: 0.005,
            workload: FleetWorkload::Open(WorkloadKind::OpenLoop),
            requests: 400,
            rate: 2000.0,
            seed: 0,
            scale: 0.05,
            ckpt_dir: None,
            cost: CostModel::rtx2080ti(),
        }
    }
}

impl FleetConfig {
    /// Validates the config, mirroring the `fleet-config` lint's hard
    /// rules.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ServeConfigError`] naming what is impossible.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.endpoints.is_empty() {
            return Err(ServeConfigError::NoEndpoints);
        }
        if self.shards == 0 {
            return Err(ServeConfigError::NoShards);
        }
        if self.replicas_per_shard == 0 {
            return Err(ServeConfigError::NoReplicas);
        }
        if self.policy.max_batch == 0 {
            return Err(ServeConfigError::ZeroMaxBatch);
        }
        if !(self.policy.max_delay.is_finite() && self.policy.max_delay >= 0.0) {
            return Err(ServeConfigError::BadMaxDelay(self.policy.max_delay));
        }
        if self.queue_cap < self.policy.max_batch {
            return Err(ServeConfigError::QueueBelowBatch {
                queue_cap: self.queue_cap,
                max_batch: self.policy.max_batch,
            });
        }
        if self.admission_cap == 0 {
            return Err(ServeConfigError::ZeroAdmissionCap);
        }
        if !(self.retry_budget.is_finite() && self.retry_budget >= 0.0) {
            return Err(ServeConfigError::BadRetryBudget(self.retry_budget));
        }
        if !(self.health.probe_interval.is_finite() && self.health.probe_interval > 0.0) {
            return Err(ServeConfigError::BadProbeInterval(
                self.health.probe_interval,
            ));
        }
        if self.health.fail_threshold == 0 {
            return Err(ServeConfigError::ZeroFailThreshold);
        }
        if self.health.readmit_threshold == 0 {
            return Err(ServeConfigError::ZeroReadmitThreshold);
        }
        if let Some(h) = self.hedge_after {
            if !(h.is_finite() && h > 0.0) {
                return Err(ServeConfigError::BadHedgeDelay(h));
            }
        }
        if !(self.net_delay.is_finite() && self.net_delay >= 0.0) {
            return Err(ServeConfigError::BadNetDelay(self.net_delay));
        }
        if !(self.slo_target.is_finite() && self.slo_target > 0.0) {
            return Err(ServeConfigError::BadSloTarget(self.slo_target));
        }
        if let Some(a) = &self.autoscale {
            if a.min_replicas == 0 {
                return Err(ServeConfigError::ZeroMinReplicas);
            }
            if a.min_replicas > a.max_replicas {
                return Err(ServeConfigError::AutoscaleBounds {
                    min: a.min_replicas,
                    max: a.max_replicas,
                });
            }
            if a.queue_low >= a.queue_high {
                return Err(ServeConfigError::AutoscaleWatermarks {
                    low: a.queue_low,
                    high: a.queue_high,
                });
            }
        }
        // Workload-shape validation rides the typed constructors.
        match &self.workload {
            FleetWorkload::Open(kind) => {
                WorkloadSpec::new(self.seed, self.requests, self.rate, *kind)?;
            }
            FleetWorkload::Closed {
                clients,
                think_time,
            } => {
                ClosedLoop::new(self.seed, self.requests, *clients, *think_time)?;
            }
        }
        Ok(())
    }
}

/// One virtual device slot within a shard.
struct Replica {
    free_at: f64,
    alive: bool,
}

/// One endpoint shard: its queues, replicas, and controller state.
struct Shard {
    queues: Vec<EndpointQueue>,
    replicas: Vec<Replica>,
    health: HealthState,
    scaler: Autoscaler,
    /// Requests currently queued across this shard's endpoints (the
    /// admission-control and least-loaded signal).
    outstanding: usize,
}

impl Shard {
    fn alive_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.alive).count()
    }

    /// Earliest time an alive replica can start work, `None` if all dead.
    fn free_at(&self, now: f64) -> Option<f64> {
        self.replicas
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.free_at.max(now))
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }
}

fn fleet_instant(name: &str, now: f64, args: Vec<(String, Value)>) {
    obs::instant(tracks::FLEET, name, now, args);
}

/// Inserts `req` into `incoming` keeping `(arrival, id)` order (closed-loop
/// minting lands mid-stream).
fn insert_sorted(incoming: &mut VecDeque<Request>, req: Request) {
    let pos = incoming.partition_point(|r| (r.arrival, r.id) <= (req.arrival, req.id));
    incoming.insert(pos, req);
}

/// Runs one complete fleet serving session. Returns a report with one
/// terminal record per generated request (answered, rejected, or shed —
/// never dropped) and fleet counters in [`ServeReport::fleet`].
///
/// Fault hooks (`shard_down`, `shard_net_factor`, `on_dp_step`, and the
/// per-kernel hooks inside batch execution) are called unconditionally;
/// they are no-ops unless a `gnn-faults` plan is armed.
///
/// # Errors
///
/// Returns a typed [`ServeConfigError`] for an invalid config or a
/// registry that fails to build.
///
/// # Panics
///
/// Panics if the retry/hedge budget bound `dispatched ≤ (1 + retry_budget)
/// × submitted` is violated — that would be an engine bug, not a
/// configuration problem.
pub fn serve_fleet(cfg: &FleetConfig) -> Result<ServeReport, ServeConfigError> {
    cfg.validate()?;
    let registry =
        ModelRegistry::build(&cfg.endpoints, cfg.scale, cfg.seed, cfg.ckpt_dir.as_deref())?;
    let space = registry.target_space();
    let mut closed: Option<ClosedLoop> = None;
    let mut incoming: VecDeque<Request> = match &cfg.workload {
        FleetWorkload::Open(kind) => {
            let spec = WorkloadSpec {
                seed: cfg.seed,
                requests: cfg.requests,
                rate: cfg.rate,
                kind: *kind,
            };
            workload::generate(&spec, &space)?.into()
        }
        FleetWorkload::Closed {
            clients,
            think_time,
        } => {
            let mut cl = ClosedLoop::new(cfg.seed, cfg.requests, *clients, *think_time)?;
            let mut first = cl.initial(&space)?;
            first.sort_by(|a, b| {
                (a.arrival, a.id)
                    .partial_cmp(&(b.arrival, b.id))
                    .expect("finite arrivals")
            });
            closed = Some(cl);
            first.into()
        }
    };

    let router = Router::new(cfg.routing, cfg.shards);
    let mut shards: Vec<Shard> = (0..cfg.shards)
        .map(|_| Shard {
            queues: (0..registry.len())
                .map(|_| EndpointQueue::new(cfg.queue_cap))
                .collect(),
            replicas: (0..cfg.replicas_per_shard)
                .map(|_| Replica {
                    free_at: 0.0,
                    alive: true,
                })
                .collect(),
            health: HealthState::default(),
            scaler: Autoscaler::default(),
            outstanding: 0,
        })
        .collect();

    let mut records: Vec<RequestRecord> = Vec::new();
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let mut stats = FleetStats {
        shards: cfg.shards,
        retry_budget: cfg.retry_budget,
        ..FleetStats::default()
    };
    // Where each live request's queued copies sit: id → [(shard, endpoint)].
    let mut location: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
    let mut hedged: HashSet<u64> = HashSet::new();
    // Requests whose eventual answer came via failover: ejection re-routes,
    // plus ids served by their hedge twin's shard.
    let mut failover_ids: HashSet<u64> = HashSet::new();
    let mut hedge_shard: HashMap<u64, usize> = HashMap::new();
    let mut tokens = 0.0f64;
    let mut replicas_lost = 0usize;
    let mut now = 0.0f64;
    let mut next_probe = cfg.health.probe_interval;

    // Terminal non-served outcome: record + closed-loop notification.
    macro_rules! terminal {
        ($req:expr, $t:expr, $outcome:expr) => {{
            let req: &Request = $req;
            let t: f64 = $t;
            records.push(RequestRecord {
                id: req.id,
                endpoint: registry.get(req.endpoint).cell.path(),
                target: req.target,
                enqueue: req.arrival,
                dispatch: t,
                reply: t,
                batch: None,
                batch_size: 0,
                output: Vec::new(),
                class: 0,
                outcome: $outcome,
            });
            if let Some(cl) = closed.as_mut() {
                if let Some(next) = cl.on_done(req.id, t, &space) {
                    insert_sorted(&mut incoming, next);
                }
            }
        }};
    }

    loop {
        if incoming.is_empty() && shards.iter().all(|s| s.queues.iter().all(|q| q.is_empty())) {
            break;
        }
        let t_arr = incoming.front().map(|r| r.arrival).unwrap_or(f64::INFINITY);
        let t_probe = next_probe;

        // Earliest hedge deadline over queued, un-hedged requests on
        // non-ejected shards (only meaningful when hedging is on).
        let mut t_hedge = f64::INFINITY;
        let mut hedge_due: Option<(usize, usize, Request)> = None;
        if let Some(h) = cfg.hedge_after {
            for (si, sh) in shards.iter().enumerate() {
                if sh.health.is_ejected() {
                    continue;
                }
                for (ei, q) in sh.queues.iter().enumerate() {
                    for p in q.iter() {
                        if hedged.contains(&p.req.id) {
                            continue;
                        }
                        let due = p.enqueue + h;
                        if due < t_hedge {
                            t_hedge = due;
                            hedge_due = Some((si, ei, p.req.clone()));
                        }
                    }
                }
            }
        }

        // Earliest dispatch over non-ejected shards with alive replicas,
        // pushed past any active blackout window; ties break on the lowest
        // (shard, endpoint) pair.
        let mut t_disp = f64::INFINITY;
        let mut disp: Option<(usize, usize)> = None;
        for (si, sh) in shards.iter().enumerate() {
            if sh.health.is_ejected() {
                continue;
            }
            let Some(free_at) = sh.free_at(now) else {
                continue; // all replicas dead: probes will eject it
            };
            for (ei, q) in sh.queues.iter().enumerate() {
                if let Some(ready) = q.ready_at(&cfg.policy, now) {
                    let mut t = ready.max(free_at);
                    // A dark shard cannot start a batch; the earliest
                    // start slides to the blackout's end (which may sit
                    // inside a later window — iterate to a fixed point).
                    while let Some(until) = gnn_faults::shard_down(si, t) {
                        t = until;
                    }
                    if t < t_disp {
                        t_disp = t;
                        disp = Some((si, ei));
                    }
                }
            }
        }

        // Event priority on ties: arrival, probe, hedge, dispatch.
        if t_arr <= t_probe && t_arr <= t_hedge && t_arr <= t_disp {
            let req = incoming.pop_front().expect("arrival candidate exists");
            now = now.max(req.arrival);
            stats.submitted += 1;
            let healthy: Vec<bool> = shards.iter().map(|s| !s.health.is_ejected()).collect();
            let load: Vec<usize> = shards.iter().map(|s| s.outstanding).collect();
            match router.route(req.endpoint, req.target, &healthy, &load) {
                None => {
                    stats.sheds += 1;
                    fleet_instant(
                        "shed",
                        now,
                        vec![
                            ("request".to_owned(), Value::from(req.id as f64)),
                            ("reason".to_owned(), Value::from("unroutable")),
                        ],
                    );
                    terminal!(&req, now, Outcome::Shed(ServeError::Unroutable));
                }
                Some(si) => {
                    if shards[si].outstanding >= cfg.admission_cap {
                        stats.sheds += 1;
                        fleet_instant(
                            "shed",
                            now,
                            vec![
                                ("request".to_owned(), Value::from(req.id as f64)),
                                ("shard".to_owned(), Value::from(si as f64)),
                                ("reason".to_owned(), Value::from("admission")),
                            ],
                        );
                        terminal!(
                            &req,
                            now,
                            Outcome::Shed(ServeError::Shed {
                                queue_depth: shards[si].outstanding,
                            })
                        );
                    } else {
                        match shards[si].queues[req.endpoint].admit(req.clone(), now) {
                            Ok(()) => {
                                shards[si].outstanding += 1;
                                tokens += cfg.retry_budget;
                                stats.dispatched += 1;
                                location.insert(req.id, vec![(si, req.endpoint)]);
                                obs::counter(
                                    tracks::SERVE,
                                    "queue_depth",
                                    shards[si].outstanding as f64,
                                    now,
                                );
                            }
                            Err(err) => {
                                obs::instant(
                                    tracks::SERVE,
                                    "rejected",
                                    now,
                                    vec![
                                        ("request".to_owned(), Value::from(req.id as f64)),
                                        ("shard".to_owned(), Value::from(si as f64)),
                                        ("error".to_owned(), Value::from(err.to_string().as_str())),
                                    ],
                                );
                                terminal!(&req, now, Outcome::Rejected(err));
                            }
                        }
                    }
                }
            }
        } else if t_probe <= t_hedge && t_probe <= t_disp {
            now = now.max(t_probe);
            next_probe += cfg.health.probe_interval;
            for si in 0..shards.len() {
                let dark = gnn_faults::shard_down(si, now).is_some();
                let ok = !dark && shards[si].alive_count() > 0;
                let transition = shards[si].health.observe(ok, &cfg.health);
                match transition {
                    Some(HealthTransition::Ejected) => {
                        stats.ejections += 1;
                        fleet_instant(
                            "eject",
                            now,
                            vec![("shard".to_owned(), Value::from(si as f64))],
                        );
                        // Drain every queued request: failover with a
                        // retry token, typed shed without.
                        for ei in 0..registry.len() {
                            for p in shards[si].queues[ei].drain_all() {
                                shards[si].outstanding -= 1;
                                let id = p.req.id;
                                if let Some(locs) = location.get_mut(&id) {
                                    locs.retain(|&(s, e)| !(s == si && e == ei));
                                    if !locs.is_empty() {
                                        continue; // a twin survives elsewhere
                                    }
                                    location.remove(&id);
                                }
                                let healthy: Vec<bool> =
                                    shards.iter().map(|s| !s.health.is_ejected()).collect();
                                let load: Vec<usize> =
                                    shards.iter().map(|s| s.outstanding).collect();
                                let dest = if tokens >= 1.0 {
                                    router
                                        .route_avoiding(ei, p.req.target, si, &healthy, &load)
                                        .filter(|&s2| shards[s2].outstanding < cfg.admission_cap)
                                } else {
                                    None
                                };
                                let mut rerouted = false;
                                if let Some(s2) = dest {
                                    if shards[s2].queues[ei].admit(p.req.clone(), now).is_ok() {
                                        shards[s2].outstanding += 1;
                                        tokens -= 1.0;
                                        stats.retries += 1;
                                        stats.dispatched += 1;
                                        failover_ids.insert(id);
                                        location.insert(id, vec![(s2, ei)]);
                                        fleet_instant(
                                            "retry",
                                            now,
                                            vec![
                                                ("request".to_owned(), Value::from(id as f64)),
                                                ("from".to_owned(), Value::from(si as f64)),
                                                ("to".to_owned(), Value::from(s2 as f64)),
                                            ],
                                        );
                                        rerouted = true;
                                    }
                                }
                                if !rerouted {
                                    stats.sheds += 1;
                                    fleet_instant(
                                        "shed",
                                        now,
                                        vec![
                                            ("request".to_owned(), Value::from(id as f64)),
                                            ("shard".to_owned(), Value::from(si as f64)),
                                            ("reason".to_owned(), Value::from("ejection-drain")),
                                        ],
                                    );
                                    terminal!(
                                        &p.req,
                                        now,
                                        Outcome::Shed(ServeError::Shed { queue_depth: 0 })
                                    );
                                }
                            }
                        }
                    }
                    Some(HealthTransition::Readmitted) => {
                        stats.readmissions += 1;
                        fleet_instant(
                            "readmit",
                            now,
                            vec![("shard".to_owned(), Value::from(si as f64))],
                        );
                    }
                    None => {}
                }
                // Autoscale at the same tick, after health settles.
                if let Some(pol) = &cfg.autoscale {
                    if !shards[si].health.is_ejected() {
                        let outstanding = shards[si].outstanding;
                        let alive = shards[si].alive_count();
                        match shards[si].scaler.decide(now, outstanding, alive, pol) {
                            Some(ScaleAction::Up) => {
                                shards[si].replicas.push(Replica {
                                    free_at: now,
                                    alive: true,
                                });
                                stats.scale_ups += 1;
                                fleet_instant(
                                    "scale_up",
                                    now,
                                    vec![
                                        ("shard".to_owned(), Value::from(si as f64)),
                                        ("replicas".to_owned(), Value::from((alive + 1) as f64)),
                                    ],
                                );
                            }
                            Some(ScaleAction::Down) => {
                                // Retire the highest-index alive replica
                                // (deterministic; batches settle at
                                // dispatch, so no work is abandoned).
                                if let Some(r) =
                                    shards[si].replicas.iter_mut().rev().find(|r| r.alive)
                                {
                                    r.alive = false;
                                }
                                stats.scale_downs += 1;
                                fleet_instant(
                                    "scale_down",
                                    now,
                                    vec![
                                        ("shard".to_owned(), Value::from(si as f64)),
                                        ("replicas".to_owned(), Value::from((alive - 1) as f64)),
                                    ],
                                );
                            }
                            None => {}
                        }
                    }
                }
            }
        } else if t_hedge <= t_disp {
            now = now.max(t_hedge);
            let (si, ei, req) = hedge_due.expect("hedge candidate exists");
            // Hedge at most once per request, token or not — a request
            // that cannot afford its hedge now will not become cheaper.
            hedged.insert(req.id);
            if tokens >= 1.0 {
                let healthy: Vec<bool> = shards.iter().map(|s| !s.health.is_ejected()).collect();
                let load: Vec<usize> = shards.iter().map(|s| s.outstanding).collect();
                if let Some(s2) = router
                    .route_avoiding(ei, req.target, si, &healthy, &load)
                    .filter(|&s2| shards[s2].outstanding < cfg.admission_cap)
                {
                    if shards[s2].queues[ei].admit(req.clone(), now).is_ok() {
                        shards[s2].outstanding += 1;
                        tokens -= 1.0;
                        stats.hedges += 1;
                        stats.dispatched += 1;
                        hedge_shard.insert(req.id, s2);
                        location.entry(req.id).or_default().push((s2, ei));
                        fleet_instant(
                            "hedge",
                            now,
                            vec![
                                ("request".to_owned(), Value::from(req.id as f64)),
                                ("from".to_owned(), Value::from(si as f64)),
                                ("to".to_owned(), Value::from(s2 as f64)),
                            ],
                        );
                    }
                }
            }
        } else {
            let (si, ei) = disp.expect("dispatch candidate exists");
            now = now.max(t_disp);
            // Replica-failure hook, fleet-wide: one dp-step per dispatch,
            // victim indexed into the shard-major flattened alive list.
            // The last alive replica in the whole fleet refuses to die.
            let alive_flat: Vec<(usize, usize)> = shards
                .iter()
                .enumerate()
                .flat_map(|(s, sh)| {
                    sh.replicas
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.alive)
                        .map(move |(ri, _)| (s, ri))
                })
                .collect();
            if let Some(g) = gnn_faults::on_dp_step(alive_flat.len(), now) {
                if alive_flat.len() > 1 {
                    let (vs, vr) = alive_flat[g];
                    shards[vs].replicas[vr].alive = false;
                    replicas_lost += 1;
                    notes.push(format!(
                        "shard {vs} replica {vr} failed at {now:.4}s: {} fleet replica(s) remain",
                        alive_flat.len() - 1
                    ));
                } else {
                    notes.push(format!(
                        "replica failure injected at {now:.4}s ignored: last fleet replica keeps \
                         serving"
                    ));
                }
            }
            // The victim may have been this shard's last replica: skip the
            // dispatch and let the health checker eject it.
            let Some((replica, _)) = shards[si]
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.alive)
                .min_by(|(_, a), (_, b)| {
                    a.free_at.partial_cmp(&b.free_at).expect("finite free_at")
                })
            else {
                continue;
            };
            let start = now.max(shards[si].replicas[replica].free_at);
            let endpoint = registry.get(ei);
            let batch = shards[si].queues[ei].take_batch(&cfg.policy);
            shards[si].outstanding -= batch.len();
            // First dispatch wins: cancel every other queued copy of each
            // batched request (hedge twins, stale failover copies).
            for p in &batch {
                if let Some(locs) = location.remove(&p.req.id) {
                    for (s2, e2) in locs {
                        if s2 == si && e2 == ei {
                            continue;
                        }
                        if shards[s2].queues[e2].remove(p.req.id).is_some() {
                            shards[s2].outstanding -= 1;
                        }
                    }
                }
            }
            let bid = batches.len() as u64;
            gnn_faults::set_cell(&endpoint.cell.path());
            let targets: Vec<u32> = batch.iter().map(|p| p.req.target).collect();
            let exec = exec_targets(endpoint, &targets, &mut notes, &cfg.cost);
            let done = start + exec.duration;
            let reply = done + cfg.net_delay * gnn_faults::shard_net_factor(si, start);
            shards[si].replicas[replica].free_at = done;
            obs::complete(
                tracks::SERVE,
                "batch",
                start,
                exec.duration,
                vec![
                    (
                        "endpoint".to_owned(),
                        Value::from(endpoint.cell.path().as_str()),
                    ),
                    ("shard".to_owned(), Value::from(si as f64)),
                    ("replica".to_owned(), Value::from(replica as f64)),
                    ("size".to_owned(), Value::from(batch.len() as f64)),
                ],
            );
            for (pending, output) in batch.iter().zip(exec.outputs) {
                let ep_arg = (
                    "endpoint".to_owned(),
                    Value::from(endpoint.cell.path().as_str()),
                );
                let req_arg = ("request".to_owned(), Value::from(pending.req.id as f64));
                obs::complete(
                    tracks::SERVE,
                    "queue_wait",
                    pending.enqueue,
                    start - pending.enqueue,
                    vec![ep_arg.clone(), req_arg.clone()],
                );
                obs::complete(
                    tracks::SERVE,
                    "execute",
                    start,
                    exec.duration,
                    vec![ep_arg.clone(), req_arg.clone()],
                );
                obs::complete(
                    tracks::SERVE,
                    "request",
                    pending.req.arrival,
                    reply - pending.req.arrival,
                    vec![
                        ep_arg,
                        req_arg,
                        ("shard".to_owned(), Value::from(si as f64)),
                        ("batch".to_owned(), Value::from(bid as f64)),
                    ],
                );
                let id = pending.req.id;
                if failover_ids.contains(&id) || hedge_shard.get(&id) == Some(&si) {
                    failover_ids.insert(id);
                    stats.failover_latencies.push(reply - pending.req.arrival);
                }
                records.push(RequestRecord {
                    id,
                    endpoint: endpoint.cell.path(),
                    target: pending.req.target,
                    enqueue: pending.req.arrival,
                    dispatch: start,
                    reply,
                    batch: Some(bid),
                    batch_size: batch.len(),
                    class: argmax(&output),
                    output,
                    outcome: Outcome::Ok,
                });
                if let Some(cl) = closed.as_mut() {
                    if let Some(next) = cl.on_done(id, reply, &space) {
                        insert_sorted(&mut incoming, next);
                    }
                }
            }
            batches.push(BatchRecord {
                id: bid,
                endpoint: endpoint.cell.path(),
                shard: si,
                replica,
                start,
                duration: exec.duration,
                size: batch.len(),
                oom_splits: exec.oom_splits,
                kernel_retries: exec.kernel_retries,
                peak_memory: exec.peak_memory,
            });
        }
    }

    // Conservation: every submitted request reached exactly one terminal
    // outcome, and the retry/hedge token bucket held its amplification
    // bound. Both are structural invariants, not configuration issues.
    assert_eq!(
        records.len(),
        stats.submitted,
        "fleet dropped requests silently"
    );
    assert!(
        stats.dispatched as f64 <= (1.0 + cfg.retry_budget) * stats.submitted as f64 + 1e-9,
        "retry/hedge amplification exceeded budget: {} dispatched for {} submitted at budget {}",
        stats.dispatched,
        stats.submitted,
        cfg.retry_budget
    );

    records.sort_by_key(|r| r.id);
    let makespan = records.iter().map(|r| r.reply).fold(0.0, f64::max);
    // Queue statistics aggregate per endpoint across shards (CSV rows key
    // on the endpoint path).
    let queues_stats = (0..registry.len())
        .map(|ei| {
            let max_depth = shards
                .iter()
                .map(|s| s.queues[ei].max_depth)
                .max()
                .unwrap_or(0);
            let depth_sum: f64 = shards.iter().map(|s| s.queues[ei].depth_sum).sum();
            let admitted: u64 = shards.iter().map(|s| s.queues[ei].admitted).sum();
            QueueStats {
                endpoint: registry.get(ei).cell.path(),
                max_depth,
                mean_depth: if admitted == 0 {
                    0.0
                } else {
                    depth_sum / admitted as f64
                },
            }
        })
        .collect();
    Ok(ServeReport {
        policy: cfg.policy,
        routing: cfg.routing.label().to_owned(),
        slo_target: cfg.slo_target,
        fleet: Some(stats),
        requests: records,
        batches,
        queues: queues_stats,
        makespan,
        replicas: cfg.shards * cfg.replicas_per_shard,
        replicas_lost,
        restored_endpoints: registry.iter().filter(|e| e.restored).count(),
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_faults::FaultPlan;

    fn small_fleet() -> FleetConfig {
        FleetConfig {
            endpoints: vec![
                CellId::parse("table4/Cora/GCN/PyG").unwrap(),
                CellId::parse("table5/ENZYMES/GIN/DGL").unwrap(),
            ],
            shards: 2,
            replicas_per_shard: 1,
            routing: RoutingPolicy::LeastLoaded,
            policy: BatchPolicy {
                max_batch: 4,
                max_delay: 0.002,
            },
            queue_cap: 16,
            admission_cap: 24,
            retry_budget: 0.5,
            hedge_after: Some(0.01),
            health: HealthPolicy {
                probe_interval: 0.005,
                fail_threshold: 2,
                readmit_threshold: 2,
            },
            autoscale: None,
            net_delay: 0.0002,
            slo_target: 0.01,
            workload: FleetWorkload::Open(WorkloadKind::OpenLoop),
            requests: 80,
            rate: 1500.0,
            seed: 7,
            scale: 0.05,
            ckpt_dir: None,
            cost: CostModel::rtx2080ti(),
        }
    }

    #[test]
    fn validation_rejects_degenerate_fleets() {
        let mut cfg = small_fleet();
        cfg.shards = 0;
        assert_eq!(cfg.validate().unwrap_err(), ServeConfigError::NoShards);
        let mut cfg = small_fleet();
        cfg.admission_cap = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeConfigError::ZeroAdmissionCap
        );
        let mut cfg = small_fleet();
        cfg.retry_budget = f64::NAN;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ServeConfigError::BadRetryBudget(_)
        ));
        let mut cfg = small_fleet();
        cfg.health.fail_threshold = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeConfigError::ZeroFailThreshold
        );
        let mut cfg = small_fleet();
        cfg.autoscale = Some(AutoscalePolicy {
            queue_low: 8,
            queue_high: 8,
            ..AutoscalePolicy::default()
        });
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeConfigError::AutoscaleWatermarks { low: 8, high: 8 }
        );
        let mut cfg = small_fleet();
        cfg.rate = 0.0;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ServeConfigError::Workload(_)
        ));
        assert!(small_fleet().validate().is_ok());
    }

    #[test]
    fn every_request_reaches_a_terminal_outcome() {
        let cfg = small_fleet();
        let report = serve_fleet(&cfg).unwrap();
        assert_eq!(report.requests.len(), cfg.requests);
        for (i, r) in report.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64, "records dense and sorted by id");
            assert!(r.reply >= r.enqueue);
        }
        assert_eq!(
            report.answered() + report.rejected() + report.shed(),
            cfg.requests,
            "conservation: answered + rejected + shed == submitted"
        );
        assert!(report.answered() > 0);
        let fleet = report.fleet.as_ref().unwrap();
        assert_eq!(fleet.submitted, cfg.requests);
        assert!(
            fleet.dispatched as f64 <= (1.0 + cfg.retry_budget) * fleet.submitted as f64,
            "budget bound"
        );
        // Batches land on both shards under least-loaded routing.
        assert!(report.batches.iter().any(|b| b.shard == 0));
        assert!(report.batches.iter().any(|b| b.shard == 1));
    }

    #[test]
    fn same_seed_fleet_reruns_are_bit_identical() {
        let cfg = small_fleet();
        let a = serve_fleet(&cfg).unwrap();
        let b = serve_fleet(&cfg).unwrap();
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.reply.to_bits(), y.reply.to_bits());
            assert_eq!(x.output, y.output);
        }
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn blackout_ejects_the_shard_and_conserves_requests() {
        let mut cfg = small_fleet();
        cfg.requests = 150;
        cfg.rate = 2000.0; // ~75ms horizon, covering the blackout window
        let plan = FaultPlan::empty().with(gnn_faults::FaultKind::ShardBlackout {
            shard: 1,
            from: 0.01,
            until: 0.05,
        });
        let handle = gnn_faults::install(plan);
        let report = serve_fleet(&cfg).unwrap();
        let log = gnn_faults::finish(handle);
        assert_eq!(
            report.answered() + report.rejected() + report.shed(),
            cfg.requests,
            "conservation holds under blackout"
        );
        let fleet = report.fleet.as_ref().unwrap();
        assert!(fleet.ejections >= 1, "the dark shard must be ejected");
        assert!(
            fleet.readmissions >= 1,
            "the shard recovers after the window"
        );
        assert!(
            fleet.retries + fleet.sheds > 0,
            "drained requests either failed over or shed"
        );
        assert!(
            log.events.iter().any(|e| e.kind == "blackout"),
            "the injector logged the blackout"
        );
        assert!(
            fleet.dispatched as f64 <= (1.0 + cfg.retry_budget) * fleet.submitted as f64,
            "budget bound holds under chaos"
        );
        // No batch dispatched on the dark shard inside its window.
        for b in &report.batches {
            if b.shard == 1 {
                assert!(
                    b.start < 0.01 || b.start >= 0.05,
                    "batch {} started at {} on the dark shard",
                    b.id,
                    b.start
                );
            }
        }
    }

    #[test]
    fn zero_retry_budget_never_amplifies() {
        let mut cfg = small_fleet();
        cfg.retry_budget = 0.0;
        cfg.requests = 100;
        let plan = FaultPlan::empty().with(gnn_faults::FaultKind::ShardBlackout {
            shard: 0,
            from: 0.005,
            until: 0.04,
        });
        let handle = gnn_faults::install(plan);
        let report = serve_fleet(&cfg).unwrap();
        gnn_faults::finish(handle);
        let fleet = report.fleet.as_ref().unwrap();
        assert_eq!(fleet.retries, 0);
        assert_eq!(fleet.hedges, 0);
        assert!(
            fleet.dispatched <= fleet.submitted,
            "zero budget: dispatched ≤ submitted"
        );
        assert_eq!(
            report.answered() + report.rejected() + report.shed(),
            cfg.requests
        );
    }

    #[test]
    fn net_straggler_inflates_reply_latency_in_its_window() {
        let mut cfg = small_fleet();
        cfg.shards = 1;
        cfg.net_delay = 0.001;
        cfg.hedge_after = None;
        cfg.requests = 60;
        let baseline = serve_fleet(&cfg).unwrap();
        let plan = FaultPlan::empty().with(gnn_faults::FaultKind::NetStraggler {
            shard: 0,
            from: 0.0,
            until: 10.0,
            factor: 50.0,
        });
        let handle = gnn_faults::install(plan);
        let slowed = serve_fleet(&cfg).unwrap();
        gnn_faults::finish(handle);
        let (bp50, _, _) = baseline.latency_percentiles();
        let (sp50, _, _) = slowed.latency_percentiles();
        assert!(
            sp50 > bp50 + 0.04,
            "straggler must inflate p50: baseline {bp50}, slowed {sp50}"
        );
    }

    #[test]
    fn autoscaler_adds_replicas_under_a_flash_crowd() {
        let mut cfg = small_fleet();
        cfg.workload = FleetWorkload::Open(WorkloadKind::FlashCrowd {
            at: 0.01,
            width: 0.05,
            factor: 6.0,
        });
        cfg.requests = 200;
        cfg.rate = 1000.0;
        cfg.admission_cap = 64;
        cfg.queue_cap = 64;
        cfg.autoscale = Some(AutoscalePolicy {
            queue_high: 6,
            queue_low: 1,
            min_replicas: 1,
            max_replicas: 4,
            cooldown: 0.005,
        });
        let report = serve_fleet(&cfg).unwrap();
        let fleet = report.fleet.as_ref().unwrap();
        assert!(
            fleet.scale_ups > 0,
            "flash crowd must trigger scale-ups: {fleet:?}"
        );
        assert_eq!(
            report.answered() + report.rejected() + report.shed(),
            cfg.requests
        );
    }

    #[test]
    fn closed_loop_workload_self_paces() {
        let mut cfg = small_fleet();
        cfg.workload = FleetWorkload::Closed {
            clients: 4,
            think_time: 0.002,
        };
        cfg.requests = 60;
        let report = serve_fleet(&cfg).unwrap();
        assert_eq!(
            report.requests.len(),
            60,
            "budget fully minted and answered"
        );
        assert_eq!(report.answered() + report.rejected() + report.shed(), 60);
        // Closed loops cannot overload a healthy fleet: at most `clients`
        // requests are ever outstanding, so nothing is rejected or shed.
        assert_eq!(report.answered(), 60);
        for q in &report.queues {
            assert!(q.max_depth <= 4, "at most one request per client queued");
        }
    }

    #[test]
    fn consistent_hash_and_least_loaded_both_serve_everything() {
        for routing in [RoutingPolicy::ConsistentHash, RoutingPolicy::LeastLoaded] {
            let mut cfg = small_fleet();
            cfg.routing = routing;
            let report = serve_fleet(&cfg).unwrap();
            assert_eq!(report.routing, routing.label());
            assert_eq!(
                report.answered() + report.rejected() + report.shed(),
                cfg.requests,
                "{routing} conserves requests"
            );
        }
    }
}
