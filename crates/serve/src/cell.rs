//! Endpoint addressing: every (experiment, dataset, model, framework) cell
//! of the paper's sweep is a servable endpoint.
//!
//! Endpoints reuse the sweep's cell-path convention
//! (`table4/Cora/GCN/PyG`, `table5/ENZYMES/GIN/DGL`, ...) so a serving run
//! can restore exactly the checkpoints a training sweep wrote, and trace /
//! fault events attribute to the same names across subsystems.

use std::fmt;

use gnn_models::config::{ALL_FRAMEWORKS, ALL_MODELS};
use gnn_models::{FrameworkKind, ModelKind};

use crate::error::ServeConfigError;

/// Which task family an endpoint serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Node classification over a citation graph (`table4` cells): a
    /// request names a node, a batch is answered by one full-graph forward.
    Node,
    /// Graph classification (`table5` cells): a request names a graph, a
    /// batch goes through the framework's concat/hetero collation path.
    Graph,
    /// Seed-node classification over a giant RMAT graph (`sample` cells):
    /// a request names a seed node, a batch is answered by sampling the
    /// union block and forwarding it — the graph never fits on device, so
    /// there is no full-graph path to fall back on.
    Sample,
}

impl TaskKind {
    /// The experiment prefix used in cell paths.
    pub fn experiment(self) -> &'static str {
        match self {
            TaskKind::Node => "table4",
            TaskKind::Graph => "table5",
            TaskKind::Sample => "sample",
        }
    }
}

/// The node datasets of Table IV, in paper order.
pub const NODE_DATASETS: [&str; 2] = ["Cora", "PubMed"];
/// The graph datasets of Table V (plus MNIST), in paper order.
pub const GRAPH_DATASETS: [&str; 3] = ["ENZYMES", "DD", "MNIST"];

/// Splits a sampled endpoint's dataset component — `<spec>-<sampler>`,
/// e.g. `rmat-1m-neighbor` — into its catalog spec and sampler kind.
/// `None` when either half is unknown.
pub fn sample_dataset(dataset: &str) -> Option<(gnn_sample::SampleSpec, gnn_sample::SamplerKind)> {
    for kind in gnn_sample::SamplerKind::all() {
        if let Some(prefix) = dataset.strip_suffix(kind.label()) {
            let name = prefix.strip_suffix('-')?;
            if let Ok(spec) = gnn_sample::SampleSpec::get(name) {
                return Some((spec, kind));
            }
        }
    }
    None
}

/// One addressable endpoint: a sweep cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Task family (fixes the experiment prefix).
    pub task: TaskKind,
    /// Dataset name as generated (`Cora`, `PubMed`, `ENZYMES`, `DD`,
    /// `MNIST`).
    pub dataset: String,
    /// Model architecture.
    pub model: ModelKind,
    /// Framework the model runs under.
    pub framework: FrameworkKind,
}

impl CellId {
    /// The canonical cell path, e.g. `table4/Cora/GCN/PyG`.
    pub fn path(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.task.experiment(),
            self.dataset,
            self.model.label(),
            self.framework.label()
        )
    }

    /// The checkpoint filename the training sweep writes for this cell's
    /// run `run_idx` (seed index for node cells, fold index for graph
    /// cells) — see `gnn_core::sweep`.
    pub fn ckpt_file(&self, run_idx: usize) -> String {
        format!("{}_{run_idx}.ckpt", self.path().replace('/', "_"))
    }

    /// Parses a cell path back into a [`CellId`].
    ///
    /// # Errors
    ///
    /// Returns the [`ServeConfigError`] variant naming the unknown
    /// component (its `Display` is the same diagnostic earlier releases
    /// returned as a bare string).
    pub fn parse(path: &str) -> Result<CellId, ServeConfigError> {
        let parts: Vec<&str> = path.split('/').collect();
        if parts.len() != 4 {
            return Err(ServeConfigError::MalformedCellPath(path.to_owned()));
        }
        let task = match parts[0] {
            "table4" => TaskKind::Node,
            "table5" => TaskKind::Graph,
            "sample" => TaskKind::Sample,
            other => {
                return Err(ServeConfigError::UnknownExperiment {
                    experiment: other.to_owned(),
                    path: path.to_owned(),
                })
            }
        };
        let dataset_known = match task {
            TaskKind::Node => NODE_DATASETS.contains(&parts[1]),
            TaskKind::Graph => GRAPH_DATASETS.contains(&parts[1]),
            TaskKind::Sample => sample_dataset(parts[1]).is_some(),
        };
        if !dataset_known {
            return Err(ServeConfigError::UnknownDataset {
                experiment: parts[0].to_owned(),
                dataset: parts[1].to_owned(),
                path: path.to_owned(),
            });
        }
        let dataset = parts[1];
        let model = ALL_MODELS
            .into_iter()
            .find(|m| m.label() == parts[2])
            .ok_or_else(|| ServeConfigError::UnknownModel {
                model: parts[2].to_owned(),
                path: path.to_owned(),
            })?;
        let framework = ALL_FRAMEWORKS
            .into_iter()
            .find(|f| f.label() == parts[3])
            .ok_or_else(|| ServeConfigError::UnknownFramework {
                framework: parts[3].to_owned(),
                path: path.to_owned(),
            })?;
        Ok(CellId {
            task,
            dataset: dataset.to_owned(),
            model,
            framework,
        })
    }

    /// Every servable cell of the *classic* grid: the full 60-cell sweep
    /// (24 node + 36 graph), in sweep execution order. Sampled endpoints
    /// are addressable (`sample/<spec>-<sampler>/<model>/<framework>`) but
    /// opt-in, so they are deliberately not part of this grid.
    pub fn all() -> Vec<CellId> {
        let mut cells = Vec::with_capacity(60);
        for ds in NODE_DATASETS {
            for model in ALL_MODELS {
                for framework in ALL_FRAMEWORKS {
                    cells.push(CellId {
                        task: TaskKind::Node,
                        dataset: ds.to_owned(),
                        model,
                        framework,
                    });
                }
            }
        }
        for ds in GRAPH_DATASETS {
            for model in ALL_MODELS {
                for framework in ALL_FRAMEWORKS {
                    cells.push(CellId {
                        task: TaskKind::Graph,
                        dataset: ds.to_owned(),
                        model,
                        framework,
                    });
                }
            }
        }
        cells
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.path())
    }
}

/// The reduced representative endpoint set the `gnn-bench serve` binary
/// targets by default (and CI serves under the canonical fault plan): both
/// task families, both frameworks, isotropic and anisotropic models.
pub fn default_endpoints() -> Vec<CellId> {
    [
        "table4/Cora/GCN/PyG",
        "table4/Cora/GAT/DGL",
        "table4/PubMed/SAGE/PyG",
        "table5/ENZYMES/GIN/DGL",
        "table5/ENZYMES/GatedGCN/PyG",
        "table5/DD/MoNet/DGL",
    ]
    .iter()
    .map(|p| CellId::parse(p).expect("default endpoints are valid cells"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_round_trip_for_all_sixty_cells() {
        let cells = CellId::all();
        assert_eq!(cells.len(), 60);
        for cell in &cells {
            let parsed = CellId::parse(&cell.path()).unwrap();
            assert_eq!(&parsed, cell);
        }
    }

    #[test]
    fn ckpt_file_matches_sweep_convention() {
        let cell = CellId::parse("table4/Cora/GCN/PyG").unwrap();
        assert_eq!(cell.ckpt_file(0), "table4_Cora_GCN_PyG_0.ckpt");
        let cell = CellId::parse("table5/ENZYMES/GatedGCN/DGL").unwrap();
        assert_eq!(cell.ckpt_file(3), "table5_ENZYMES_GatedGCN_DGL_3.ckpt");
    }

    #[test]
    fn parse_rejects_unknown_components() {
        assert!(CellId::parse("table4/Cora/GCN").is_err());
        assert!(CellId::parse("table6/Cora/GCN/PyG").is_err());
        assert!(CellId::parse("table4/ENZYMES/GCN/PyG")
            .unwrap_err()
            .to_string()
            .contains("dataset"));
        assert!(CellId::parse("table4/Cora/VGG/PyG")
            .unwrap_err()
            .to_string()
            .contains("model"));
        assert!(CellId::parse("table4/Cora/GCN/TF")
            .unwrap_err()
            .to_string()
            .contains("framework"));
    }

    #[test]
    fn sample_cells_parse_but_stay_out_of_the_classic_grid() {
        let cell = CellId::parse("sample/rmat-1m-neighbor/SAGE/PyG").unwrap();
        assert_eq!(cell.task, TaskKind::Sample);
        assert_eq!(cell.dataset, "rmat-1m-neighbor");
        assert_eq!(cell.path(), "sample/rmat-1m-neighbor/SAGE/PyG");
        assert_eq!(cell.ckpt_file(0), "sample_rmat-1m-neighbor_SAGE_PyG_0.ckpt");
        let (spec, kind) = sample_dataset("rmat-1m-neighbor").unwrap();
        assert_eq!(spec.name, "rmat-1m");
        assert_eq!(kind.label(), "neighbor");
        assert!(sample_dataset("rmat-1m").is_none(), "sampler kind required");
        assert!(sample_dataset("rmat-9z-layerwise").is_none());
        assert!(CellId::parse("sample/rmat-1m/SAGE/PyG")
            .unwrap_err()
            .to_string()
            .contains("dataset"));
        assert!(!CellId::all().iter().any(|c| c.task == TaskKind::Sample));
    }

    #[test]
    fn default_endpoints_cover_both_tasks_and_frameworks() {
        let eps = default_endpoints();
        assert!(eps.len() >= 6);
        assert!(eps.iter().any(|c| c.task == TaskKind::Node));
        assert!(eps.iter().any(|c| c.task == TaskKind::Graph));
        assert!(eps.iter().any(|c| c.framework == FrameworkKind::RustyG));
        assert!(eps.iter().any(|c| c.framework == FrameworkKind::Rgl));
    }
}
