//! Per-request accounting, latency percentiles, and `serve_metrics.csv`.
//!
//! Every timestamp is simulated seconds on the serve clock (the same clock
//! batches execute on), so latency is exactly `reply - enqueue` with no
//! wall-time jitter — reruns with the same seed reproduce every figure in
//! this module bit-identically. Floats are written with Rust's shortest
//! round-trip formatting, so the CSV itself is byte-stable across reruns.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use gnn_obs::Histogram;

use crate::batcher::{BatchPolicy, ServeError};

/// How one request was answered.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Served: the output row is the model's logits for the target.
    Ok,
    /// Refused with a typed error (counted separately, never dropped).
    Rejected(ServeError),
    /// Shed by admission control or an ejection drain with no retry token
    /// — also a terminal typed reply, never a drop.
    Shed(ServeError),
}

/// The full service record of one request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id (submission order).
    pub id: u64,
    /// Cell path of the endpoint.
    pub endpoint: String,
    /// Requested target (node or graph index).
    pub target: u32,
    /// Simulated admission time (= arrival).
    pub enqueue: f64,
    /// Simulated time the request's batch started executing (rejections:
    /// equal to `enqueue`).
    pub dispatch: f64,
    /// Simulated time the reply left the server.
    pub reply: f64,
    /// Id of the batch that served it (rejections: `None`).
    pub batch: Option<u64>,
    /// Size of that batch.
    pub batch_size: usize,
    /// Served logits row (empty for rejections).
    pub output: Vec<f32>,
    /// Predicted class (rejections: 0, unused).
    pub class: u32,
    /// How the request ended.
    pub outcome: Outcome,
}

impl RequestRecord {
    /// Enqueue-to-reply latency on the serve clock.
    pub fn latency(&self) -> f64 {
        self.reply - self.enqueue
    }

    /// Whether the request was served (not rejected).
    pub fn served(&self) -> bool {
        matches!(self.outcome, Outcome::Ok)
    }
}

/// The execution record of one dispatched batch.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Dense batch id, in dispatch order.
    pub id: u64,
    /// Cell path of the endpoint.
    pub endpoint: String,
    /// Shard that dispatched it (0 in the single-engine path).
    pub shard: usize,
    /// Replica that executed it.
    pub replica: usize,
    /// Simulated dispatch time.
    pub start: f64,
    /// Total service duration, including faulted attempts and retries.
    pub duration: f64,
    /// Requests in the batch.
    pub size: usize,
    /// OOM split-and-retry halvings performed.
    pub oom_splits: usize,
    /// Whole-batch retries after kernel faults.
    pub kernel_retries: usize,
    /// Largest device-session allocator high-water mark (bytes) across the
    /// batch's attempts, including OOM-split re-executions. Cross-checked
    /// against the static certifier's per-cell bound.
    pub peak_memory: u64,
}

/// Per-endpoint queue statistics.
#[derive(Debug, Clone)]
pub struct QueueStats {
    /// Cell path.
    pub endpoint: String,
    /// Largest observed depth.
    pub max_depth: usize,
    /// Mean depth at admission times.
    pub mean_depth: f64,
}

/// Fleet-level counters a fleet run adds on top of per-request records.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Shards configured at start.
    pub shards: usize,
    /// Requests submitted to the router.
    pub submitted: usize,
    /// Queue admissions the fleet performed: primary admissions plus
    /// every retry re-admission and hedge twin. Bounded at runtime by
    /// `(1 + retry_budget) × submitted`.
    pub dispatched: usize,
    /// Re-admissions spent from the retry token bucket (ejection drains).
    pub retries: usize,
    /// Hedge twins enqueued on a second shard.
    pub hedges: usize,
    /// Requests shed (admission control, unroutable, or drained without a
    /// token).
    pub sheds: usize,
    /// Health-checker shard ejections.
    pub ejections: usize,
    /// Health-checker shard re-admissions.
    pub readmissions: usize,
    /// Autoscaler replica additions.
    pub scale_ups: usize,
    /// Autoscaler replica removals.
    pub scale_downs: usize,
    /// Enqueue-to-reply latencies of requests that were answered only
    /// after a failover re-route or by a hedge twin.
    pub failover_latencies: Vec<f64>,
    /// The configured retry budget (tokens earned per primary admission).
    pub retry_budget: f64,
}

impl FleetStats {
    /// p99 latency of failover-served requests (0 when none failed over).
    pub fn failover_p99(&self) -> f64 {
        let mut hist = Histogram::from_values(self.failover_latencies.iter().copied());
        hist.quantile(99.0)
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The batching policy that ran.
    pub policy: BatchPolicy,
    /// Routing-policy label: `single` for the one-engine path,
    /// `consistent-hash` / `least-loaded` for fleet runs.
    pub routing: String,
    /// SLO latency target (seconds) the run was graded against.
    pub slo_target: f64,
    /// Fleet counters (`None` for the single-engine path).
    pub fleet: Option<FleetStats>,
    /// One record per submitted request, in id order. Nothing is ever
    /// dropped: every submitted request has exactly one record.
    pub requests: Vec<RequestRecord>,
    /// One record per dispatched batch, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Per-endpoint queue statistics.
    pub queues: Vec<QueueStats>,
    /// Simulated time of the last reply.
    pub makespan: f64,
    /// Replicas configured at start.
    pub replicas: usize,
    /// Replicas lost to injected failures during the run.
    pub replicas_lost: usize,
    /// Endpoints whose weights came from checkpoints.
    pub restored_endpoints: usize,
    /// Supervisor-style notes (persistent OOM at batch size 1, exhausted
    /// kernel retries, refused replica shutdowns).
    pub notes: Vec<String>,
}

impl ServeReport {
    /// Requests served with logits.
    pub fn answered(&self) -> usize {
        self.requests.iter().filter(|r| r.served()).count()
    }

    /// Requests refused with [`Outcome::Rejected`] (full queue).
    pub fn rejected(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected(_)))
            .count()
    }

    /// Requests shed with [`Outcome::Shed`] (admission control,
    /// unroutable, or ejection drain).
    pub fn shed(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Shed(_)))
            .count()
    }

    /// Requests that vanished without any reply — always 0 by
    /// construction; exposed so CI can assert it.
    pub fn dropped(&self, submitted: usize) -> usize {
        submitted - self.requests.len()
    }

    /// Served enqueue-to-reply latencies as a [`Histogram`] (the typed
    /// registry primitive; its nearest-rank [`Histogram::quantile`] is
    /// bit-identical to [`percentile`] on the sorted latencies).
    pub fn latency_histogram(&self) -> Histogram {
        Histogram::from_values(
            self.requests
                .iter()
                .filter(|r| r.served())
                .map(RequestRecord::latency),
        )
    }

    /// `(p50, p95, p99)` enqueue-to-reply latency over served requests.
    pub fn latency_percentiles(&self) -> (f64, f64, f64) {
        let mut hist = self.latency_histogram();
        (
            hist.quantile(50.0),
            hist.quantile(95.0),
            hist.quantile(99.0),
        )
    }

    /// Fraction of **submitted** requests answered within `target`
    /// seconds. Rejections and sheds count against attainment (they were
    /// submitted and not served in time); an empty run attains trivially.
    pub fn slo_attainment(&self, target: f64) -> f64 {
        if self.requests.is_empty() {
            return 1.0;
        }
        let hist = self.latency_histogram();
        hist.fraction_le(target) * self.answered() as f64 / self.requests.len() as f64
    }

    /// Served requests per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.answered() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.size as f64).sum::<f64>() / self.batches.len() as f64
    }

    /// Mean batch fill fraction relative to the policy's `max_batch`.
    pub fn occupancy(&self) -> f64 {
        self.mean_batch_size() / self.policy.max_batch as f64
    }

    /// Total OOM splits across batches.
    pub fn oom_splits(&self) -> usize {
        self.batches.iter().map(|b| b.oom_splits).sum()
    }

    /// Total kernel-fault retries across batches.
    pub fn kernel_retries(&self) -> usize {
        self.batches.iter().map(|b| b.kernel_retries).sum()
    }

    /// Largest device-session peak memory (bytes) across all batches.
    pub fn peak_memory(&self) -> u64 {
        self.batches
            .iter()
            .map(|b| b.peak_memory)
            .max()
            .unwrap_or(0)
    }

    /// Human-readable run summary (the block the serve binary prints).
    pub fn summary(&self) -> String {
        let (p50, p95, p99) = self.latency_percentiles();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "policy {} [{}]: {} served, {} rejected, {} shed, 0 dropped over {:.4}s",
            self.policy.label(),
            self.routing,
            self.answered(),
            self.rejected(),
            self.shed(),
            self.makespan
        );
        let _ = writeln!(
            s,
            "  latency p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms",
            p50 * 1e3,
            p95 * 1e3,
            p99 * 1e3
        );
        let _ = writeln!(
            s,
            "  throughput {:.1} req/s  batches {}  occupancy {:.2}  replicas {}-{}",
            self.throughput(),
            self.batches.len(),
            self.occupancy(),
            self.replicas,
            self.replicas_lost
        );
        if let Some(fleet) = &self.fleet {
            let _ = writeln!(
                s,
                "  fleet: {} shard(s)  {} retries  {} hedges  {} ejection(s)/{} readmission(s)  \
                 scale +{}/-{}  failover p99 {:.3}ms",
                fleet.shards,
                fleet.retries,
                fleet.hedges,
                fleet.ejections,
                fleet.readmissions,
                fleet.scale_ups,
                fleet.scale_downs,
                fleet.failover_p99() * 1e3
            );
        }
        if self.oom_splits() + self.kernel_retries() > 0 {
            let _ = writeln!(
                s,
                "  faults survived: {} OOM split(s), {} kernel retry(ies)",
                self.oom_splits(),
                self.kernel_retries()
            );
        }
        for note in &self.notes {
            let _ = writeln!(s, "  note: {note}");
        }
        s
    }

    /// Per-endpoint CSV rows (see [`write_serve_metrics`] for the header).
    pub fn csv_rows(&self) -> String {
        let mut out = String::new();
        let mut endpoints: Vec<&str> = self.queues.iter().map(|q| q.endpoint.as_str()).collect();
        endpoints.sort_unstable();
        // One aggregate row, then one row per endpoint.
        self.csv_row(&mut out, "all", |_| true);
        for ep in endpoints {
            self.csv_row(&mut out, ep, |r| r.endpoint == ep);
        }
        out
    }

    fn csv_row(&self, out: &mut String, scope: &str, keep: impl Fn(&RequestRecord) -> bool) {
        let reqs: Vec<&RequestRecord> = self.requests.iter().filter(|r| keep(r)).collect();
        let served: Vec<&&RequestRecord> = reqs.iter().filter(|r| r.served()).collect();
        let rejected = reqs
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected(_)))
            .count();
        let shed = reqs
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Shed(_)))
            .count();
        let mut lats = Histogram::from_values(served.iter().map(|r| r.latency()));
        let attainment = if reqs.is_empty() {
            1.0
        } else {
            lats.fraction_le(self.slo_target) * served.len() as f64 / reqs.len() as f64
        };
        let batches: Vec<&BatchRecord> = self
            .batches
            .iter()
            .filter(|b| scope == "all" || b.endpoint == scope)
            .collect();
        let mean_batch = if batches.is_empty() {
            0.0
        } else {
            batches.iter().map(|b| b.size as f64).sum::<f64>() / batches.len() as f64
        };
        let (max_q, mean_q) = if scope == "all" {
            (
                self.queues.iter().map(|q| q.max_depth).max().unwrap_or(0),
                mean(self.queues.iter().map(|q| q.mean_depth)),
            )
        } else {
            self.queues
                .iter()
                .find(|q| q.endpoint == scope)
                .map(|q| (q.max_depth, q.mean_depth))
                .unwrap_or((0, 0.0))
        };
        let peak_mem = batches.iter().map(|b| b.peak_memory).max().unwrap_or(0);
        // Router-level counters (retries, hedges, failover) have no
        // per-endpoint decomposition: the aggregate row carries them and
        // endpoint rows read 0.
        let (retries, hedges, failover_p99) = match (&self.fleet, scope) {
            (Some(fleet), "all") => (fleet.retries, fleet.hedges, fleet.failover_p99()),
            _ => (0, 0, 0.0),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.policy.label(),
            self.routing,
            self.policy.max_batch,
            self.policy.max_delay,
            scope,
            reqs.len(),
            served.len(),
            rejected,
            shed,
            0, // dropped: structurally impossible, asserted in CI
            lats.quantile(50.0),
            lats.quantile(95.0),
            lats.quantile(99.0),
            self.throughput(),
            mean_batch,
            mean_batch / self.policy.max_batch as f64,
            max_q,
            mean_q,
            peak_mem,
            attainment,
            retries,
            hedges,
            failover_p99,
        );
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`0` for empty
/// input). Deterministic: no interpolation, so the result is always an
/// exact element of the input.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Header line of `serve_metrics.csv`.
pub const CSV_HEADER: &str = "policy,routing,max_batch,max_delay_s,endpoint,requests,answered,\
rejected,shed,dropped,p50_s,p95_s,p99_s,throughput_rps,mean_batch,occupancy,max_queue_depth,\
mean_queue_depth,peak_mem_bytes,slo_attainment,retries,hedges,failover_p99_s";

/// Schema tag stamped into `serve_metrics.csv` as a leading `# schema:`
/// comment line; bumped on any column change so downstream consumers fail
/// loudly on drift instead of misreading shifted columns. v2 added the
/// fleet columns (`routing`, `shed`, `slo_attainment`, `retries`,
/// `hedges`, `failover_p99_s`).
pub const SERVE_METRICS_SCHEMA: &str = "gnn-serve-metrics/v2";

/// Verifies that serve-metrics CSV `text` starts with the expected
/// `# schema:` comment line followed by [`CSV_HEADER`].
///
/// # Errors
///
/// Returns a diagnostic naming what was expected and what was found.
pub fn check_serve_metrics_schema(text: &str) -> Result<(), String> {
    let expected = format!("# schema: {SERVE_METRICS_SCHEMA}");
    let mut lines = text.lines();
    match lines.next() {
        Some(first) if first == expected => {}
        Some(first) => {
            return Err(format!(
                "serve-metrics schema mismatch: expected `{expected}`, found `{first}`"
            ))
        }
        None => return Err(format!("empty serve metrics, expected `{expected}`")),
    }
    match lines.next() {
        Some(header) if header == CSV_HEADER => Ok(()),
        Some(header) => Err(format!(
            "serve-metrics header drifted: expected `{CSV_HEADER}`, found `{header}`"
        )),
        None => Err("serve metrics ends after the schema line".into()),
    }
}

/// Writes `serve_metrics.csv` into `dir` (created if missing): a
/// `# schema:` comment line ([`SERVE_METRICS_SCHEMA`]), the header, then
/// one aggregate row plus one per-endpoint row for every policy's report.
/// The written text is verified with [`check_serve_metrics_schema`]
/// before it lands on disk.
///
/// # Errors
///
/// Returns the underlying IO error.
pub fn write_serve_metrics(dir: &Path, reports: &[ServeReport]) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut csv = format!("# schema: {SERVE_METRICS_SCHEMA}\n{CSV_HEADER}\n");
    for report in reports {
        csv.push_str(&report.csv_rows());
    }
    check_serve_metrics_schema(&csv).expect("writer stamped a malformed schema header");
    let path = dir.join("serve_metrics.csv");
    std::fs::write(&path, csv)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    fn sample_report() -> ServeReport {
        let policy = BatchPolicy {
            max_batch: 4,
            max_delay: 0.001,
        };
        let mk = |id: u64, enq: f64, reply: f64, served: bool| RequestRecord {
            id,
            endpoint: "table4/Cora/GCN/PyG".into(),
            target: id as u32,
            enqueue: enq,
            dispatch: enq,
            reply,
            batch: served.then_some(0),
            batch_size: 2,
            output: if served { vec![0.0; 7] } else { vec![] },
            class: 0,
            outcome: if served {
                Outcome::Ok
            } else {
                Outcome::Rejected(ServeError::Overloaded { queue_depth: 4 })
            },
        };
        ServeReport {
            policy,
            routing: "single".into(),
            slo_target: 0.005,
            fleet: None,
            requests: vec![
                mk(0, 0.0, 0.010, true),
                mk(1, 0.001, 0.010, true),
                mk(2, 0.002, 0.002, false),
            ],
            batches: vec![BatchRecord {
                id: 0,
                endpoint: "table4/Cora/GCN/PyG".into(),
                shard: 0,
                replica: 0,
                start: 0.002,
                duration: 0.008,
                size: 2,
                oom_splits: 0,
                kernel_retries: 0,
                peak_memory: 4096,
            }],
            queues: vec![QueueStats {
                endpoint: "table4/Cora/GCN/PyG".into(),
                max_depth: 2,
                mean_depth: 1.5,
            }],
            makespan: 0.010,
            replicas: 2,
            replicas_lost: 0,
            restored_endpoints: 0,
            notes: vec![],
        }
    }

    #[test]
    fn report_counts_and_csv_shape() {
        let r = sample_report();
        assert_eq!(r.answered(), 2);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.dropped(3), 0);
        assert!((r.mean_batch_size() - 2.0).abs() < 1e-12);
        assert!((r.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(r.peak_memory(), 4096);
        let dir = std::env::temp_dir().join("gnn-serve-metrics-test");
        let path = write_serve_metrics(&dir, &[r]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], format!("# schema: {SERVE_METRICS_SCHEMA}"));
        assert_eq!(lines[1], CSV_HEADER);
        assert_eq!(lines.len(), 4, "schema + header + all + one endpoint");
        assert!(
            lines[2].starts_with("b4/d1000us,single,4,0.001,all,3,2,1,0,0,"),
            "{}",
            lines[2]
        );
        assert!(lines[2].contains(",4096,"), "{}", lines[2]);
        assert!(
            lines[2].ends_with(",0,0,0"),
            "single-engine rows carry zero retries/hedges/failover: {}",
            lines[2]
        );
        assert!(lines[3].contains("table4/Cora/GCN/PyG"));
        // Parse-back guard: consumers fail loudly on drift.
        assert!(check_serve_metrics_schema(&text).is_ok());
        assert!(check_serve_metrics_schema("").is_err());
        assert!(check_serve_metrics_schema(&text.replacen("/v2", "/v0", 1)).is_err());
        let headerless = format!("# schema: {SERVE_METRICS_SCHEMA}\npolicy,oops\n");
        let err = check_serve_metrics_schema(&headerless).unwrap_err();
        assert!(err.contains("header drifted"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn histogram_percentiles_match_legacy_percentile_fn() {
        let r = sample_report();
        let mut lats: Vec<f64> = r
            .requests
            .iter()
            .filter(|q| q.served())
            .map(RequestRecord::latency)
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (p50, p95, p99) = r.latency_percentiles();
        assert_eq!(p50, percentile(&lats, 50.0));
        assert_eq!(p95, percentile(&lats, 95.0));
        assert_eq!(p99, percentile(&lats, 99.0));
    }

    #[test]
    fn slo_attainment_counts_rejections_against() {
        let r = sample_report();
        // Both served requests land within 10ms, but one of three
        // submissions was rejected: attainment is 2/3, not 1.
        assert!((r.slo_attainment(0.010) - 2.0 / 3.0).abs() < 1e-12);
        // A 1ms target excludes every served request too.
        assert_eq!(r.slo_attainment(0.001), 0.0);
        let empty = ServeReport {
            requests: vec![],
            batches: vec![],
            queues: vec![],
            ..r
        };
        assert_eq!(empty.slo_attainment(0.010), 1.0);
    }

    #[test]
    fn summary_mentions_percentiles_and_throughput() {
        let s = sample_report().summary();
        assert!(s.contains("p50"));
        assert!(s.contains("p95"));
        assert!(s.contains("p99"));
        assert!(s.contains("throughput"));
        assert!(s.contains("0 dropped"));
    }

    #[test]
    fn shed_outcomes_count_separately_from_rejections() {
        let mut r = sample_report();
        r.requests[2].outcome = Outcome::Shed(ServeError::Shed { queue_depth: 64 });
        assert_eq!(r.answered(), 2);
        assert_eq!(r.rejected(), 0);
        assert_eq!(r.shed(), 1);
        // Sheds still count against SLO attainment.
        assert!((r.slo_attainment(0.010) - 2.0 / 3.0).abs() < 1e-12);
        let s = r.summary();
        assert!(s.contains("1 shed"), "{s}");
    }

    #[test]
    fn fleet_rows_carry_router_counters_on_the_aggregate_row() {
        let mut r = sample_report();
        r.routing = "least-loaded".into();
        r.fleet = Some(FleetStats {
            shards: 3,
            submitted: 3,
            dispatched: 4,
            retries: 1,
            hedges: 2,
            sheds: 0,
            ejections: 1,
            readmissions: 1,
            scale_ups: 0,
            scale_downs: 0,
            failover_latencies: vec![0.004, 0.009],
            retry_budget: 0.5,
        });
        assert_eq!(r.fleet.as_ref().unwrap().failover_p99(), 0.009);
        let dir = std::env::temp_dir().join("gnn-serve-metrics-fleet-test");
        let path = write_serve_metrics(&dir, &[r]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[2].starts_with("b4/d1000us,least-loaded,"),
            "{}",
            lines[2]
        );
        assert!(
            lines[2].ends_with(",1,2,0.009"),
            "aggregate row carries retries/hedges/failover: {}",
            lines[2]
        );
        assert!(
            lines[3].ends_with(",0,0,0"),
            "endpoint rows read 0 for router-level counters: {}",
            lines[3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_summary_line_names_the_counters() {
        let mut r = sample_report();
        r.fleet = Some(FleetStats {
            shards: 2,
            ..FleetStats::default()
        });
        let s = r.summary();
        assert!(s.contains("fleet: 2 shard(s)"), "{s}");
        assert!(s.contains("failover p99"), "{s}");
    }
}
