//! Seeded synthetic client workloads: open-loop, diurnal, flash-crowd, and
//! closed-loop generators.
//!
//! The pre-generated kinds are open-loop — arrival times are drawn up front
//! from a seeded RNG and never react to server backpressure, which is
//! exactly what makes overload scenarios reproducible: the same seed always
//! produces the same request stream, so a run (and its rejections, batch
//! boundaries, and latency percentiles) replays bit-identically. The
//! time-varying kinds ([`WorkloadKind::Diurnal`],
//! [`WorkloadKind::FlashCrowd`]) are sampled by thinning an
//! inhomogeneous Poisson process at its peak rate, which keeps every draw
//! on the same seeded stream. The closed-loop generator ([`ClosedLoop`]) is
//! reactive by definition — each simulated client keeps one request
//! outstanding and thinks before the next — so it is driven by the fleet
//! engine at reply time instead of pre-generated; its draws are made in
//! completion order, which the deterministic engine makes reproducible.
//!
//! Degenerate workloads (zero rate, zero requests, empty endpoint set,
//! malformed shape parameters) are rejected with a typed [`WorkloadError`]
//! at [`WorkloadSpec::new`] construction and again at [`generate`] — never
//! by silently producing an empty request vec.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Constant-rate open-loop Poisson arrivals (the original generator;
    /// its RNG stream is byte-compatible with earlier releases).
    OpenLoop,
    /// Diurnal open-loop arrivals: the instantaneous rate follows
    /// `rate * (1 + amplitude * sin(2π t / period))`, sampled by thinning
    /// at the peak rate.
    Diurnal {
        /// Period of the rate cycle in simulated seconds.
        period: f64,
        /// Relative swing around the mean rate, in `[0, 1)`.
        amplitude: f64,
    },
    /// Flash crowd: the base rate multiplies by `factor` over the window
    /// `[at, at + width)`, sampled by thinning at the crowd rate.
    FlashCrowd {
        /// Window start in simulated seconds.
        at: f64,
        /// Window width in simulated seconds.
        width: f64,
        /// Rate multiplier inside the window (≥ 1).
        factor: f64,
    },
}

/// Why a workload specification is degenerate.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The endpoint set is empty.
    NoEndpoints,
    /// The spec generates zero requests (zero duration).
    NoRequests,
    /// The arrival rate is zero, negative, or non-finite.
    BadRate(f64),
    /// An endpoint offers zero targets to draw from.
    EmptyEndpoint(String),
    /// A diurnal period is zero, negative, or non-finite.
    BadPeriod(f64),
    /// A diurnal amplitude is outside `[0, 1)`.
    BadAmplitude(f64),
    /// A flash-crowd start is negative or non-finite.
    BadCrowdStart(f64),
    /// A flash-crowd width is zero, negative, or non-finite.
    BadCrowdWidth(f64),
    /// A flash-crowd factor is below 1 or non-finite.
    BadCrowdFactor(f64),
    /// A closed-loop client count is zero.
    NoClients,
    /// A closed-loop think time is negative or non-finite.
    BadThinkTime(f64),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoEndpoints => write!(f, "workload needs at least one endpoint"),
            WorkloadError::NoRequests => write!(f, "workload generates no requests"),
            WorkloadError::BadRate(rate) => write!(f, "arrival rate {rate} must be positive"),
            WorkloadError::EmptyEndpoint(path) => write!(f, "endpoint {path} has no targets"),
            WorkloadError::BadPeriod(period) => {
                write!(f, "diurnal period {period} must be positive")
            }
            WorkloadError::BadAmplitude(amplitude) => {
                write!(f, "diurnal amplitude {amplitude} must be in [0, 1)")
            }
            WorkloadError::BadCrowdStart(at) => {
                write!(f, "flash-crowd start {at} must be non-negative")
            }
            WorkloadError::BadCrowdWidth(width) => {
                write!(f, "flash-crowd width {width} must be positive")
            }
            WorkloadError::BadCrowdFactor(factor) => {
                write!(f, "flash-crowd factor {factor} must be at least 1")
            }
            WorkloadError::NoClients => write!(f, "closed loop needs at least one client"),
            WorkloadError::BadThinkTime(think) => {
                write!(f, "think time {think} must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Workload shape: how many requests arrive, how fast, from which seed,
/// following which arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// RNG seed for arrivals, endpoint choice, and target choice.
    pub seed: u64,
    /// Total requests to generate.
    pub requests: usize,
    /// Mean arrival rate in requests per simulated second (the exponential
    /// inter-arrival parameter; the base rate for time-varying kinds).
    pub rate: f64,
    /// The arrival process.
    pub kind: WorkloadKind,
}

impl WorkloadSpec {
    /// Constructs a validated spec — the blessed path: degenerate shapes
    /// are rejected here with a typed error instead of surfacing later as
    /// an empty request vec.
    ///
    /// # Errors
    ///
    /// Returns the [`WorkloadError`] naming the degenerate parameter.
    pub fn new(
        seed: u64,
        requests: usize,
        rate: f64,
        kind: WorkloadKind,
    ) -> Result<Self, WorkloadError> {
        let spec = WorkloadSpec {
            seed,
            requests,
            rate,
            kind,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// [`WorkloadSpec::new`] with the constant-rate open-loop kind.
    ///
    /// # Errors
    ///
    /// Returns the [`WorkloadError`] naming the degenerate parameter.
    pub fn open_loop(seed: u64, requests: usize, rate: f64) -> Result<Self, WorkloadError> {
        WorkloadSpec::new(seed, requests, rate, WorkloadKind::OpenLoop)
    }

    /// Re-checks the spec (struct-literal construction can bypass
    /// [`WorkloadSpec::new`]; [`generate`] calls this again).
    ///
    /// # Errors
    ///
    /// Returns the [`WorkloadError`] naming the degenerate parameter.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.requests == 0 {
            return Err(WorkloadError::NoRequests);
        }
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return Err(WorkloadError::BadRate(self.rate));
        }
        match self.kind {
            WorkloadKind::OpenLoop => {}
            WorkloadKind::Diurnal { period, amplitude } => {
                if !(period.is_finite() && period > 0.0) {
                    return Err(WorkloadError::BadPeriod(period));
                }
                if !(amplitude.is_finite() && (0.0..1.0).contains(&amplitude)) {
                    return Err(WorkloadError::BadAmplitude(amplitude));
                }
            }
            WorkloadKind::FlashCrowd { at, width, factor } => {
                if !(at.is_finite() && at >= 0.0) {
                    return Err(WorkloadError::BadCrowdStart(at));
                }
                if !(width.is_finite() && width > 0.0) {
                    return Err(WorkloadError::BadCrowdWidth(width));
                }
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(WorkloadError::BadCrowdFactor(factor));
                }
            }
        }
        Ok(())
    }

    /// The peak instantaneous arrival rate of the process (the thinning
    /// envelope for time-varying kinds).
    pub fn peak_rate(&self) -> f64 {
        match self.kind {
            WorkloadKind::OpenLoop => self.rate,
            WorkloadKind::Diurnal { amplitude, .. } => self.rate * (1.0 + amplitude),
            WorkloadKind::FlashCrowd { factor, .. } => self.rate * factor,
        }
    }

    /// The instantaneous arrival rate at simulated time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match self.kind {
            WorkloadKind::OpenLoop => self.rate,
            WorkloadKind::Diurnal { period, amplitude } => {
                self.rate * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period).sin())
            }
            WorkloadKind::FlashCrowd { at, width, factor } => {
                if t >= at && t < at + width {
                    self.rate * factor
                } else {
                    self.rate
                }
            }
        }
    }
}

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique, dense id (also the submission order).
    pub id: u64,
    /// Index into the registry's endpoint list.
    pub endpoint: usize,
    /// Target within the endpoint: a node index (table4) or graph index
    /// (table5).
    pub target: u32,
    /// Simulated arrival time in seconds.
    pub arrival: f64,
}

fn check_endpoints(endpoints: &[(String, u32)]) -> Result<(), WorkloadError> {
    if endpoints.is_empty() {
        return Err(WorkloadError::NoEndpoints);
    }
    for (path, targets) in endpoints {
        if *targets == 0 {
            return Err(WorkloadError::EmptyEndpoint(path.clone()));
        }
    }
    Ok(())
}

/// Generates the request stream for `endpoints` (`(cell path, target
/// count)` pairs, from [`crate::ModelRegistry::target_space`]).
///
/// Inter-arrival gaps are exponential via inverse-transform sampling
/// (`-ln(1 - u) / rate`), endpoints are chosen uniformly, targets uniformly
/// within each endpoint's range. Time-varying kinds thin candidate arrivals
/// drawn at the peak rate, keeping every decision on the same seeded
/// stream. Arrival times are strictly increasing, so `id` order is arrival
/// order. The [`WorkloadKind::OpenLoop`] draw sequence is unchanged from
/// earlier releases, so legacy seeds reproduce byte-identical streams.
///
/// # Errors
///
/// Returns a [`WorkloadError`] for a degenerate spec or endpoint set.
pub fn generate(
    spec: &WorkloadSpec,
    endpoints: &[(String, u32)],
) -> Result<Vec<Request>, WorkloadError> {
    spec.validate()?;
    check_endpoints(endpoints)?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let peak = spec.peak_rate();
    let mut now = 0.0f64;
    let mut out = Vec::with_capacity(spec.requests);
    for id in 0..spec.requests as u64 {
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            now += -(1.0 - u).ln() / peak;
            // Thinning: accept the candidate with probability
            // rate(t)/peak. The open-loop kind has rate(t) == peak, and
            // skips the acceptance draw entirely to keep its RNG stream
            // byte-compatible with the original generator.
            if matches!(spec.kind, WorkloadKind::OpenLoop) {
                break;
            }
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept < spec.rate_at(now) / peak {
                break;
            }
        }
        let endpoint = rng.gen_range(0..endpoints.len());
        let target = rng.gen_range(0..endpoints[endpoint].1);
        out.push(Request {
            id,
            endpoint,
            target,
            arrival: now,
        });
    }
    Ok(out)
}

/// The closed-loop generator: `clients` simulated users, each keeping
/// exactly one request outstanding and thinking an exponential
/// `think_time`-mean gap between its reply and its next request.
///
/// Unlike the open-loop kinds this cannot be pre-generated — the next
/// arrival depends on when the previous reply landed — so the fleet engine
/// drives it: [`ClosedLoop::initial`] seeds the first wave and
/// [`ClosedLoop::on_done`] mints the follow-up request when one terminates
/// (answered, rejected, or shed — a client re-issues after any terminal
/// outcome). Draws happen in completion order, which the deterministic
/// engine makes reproducible.
#[derive(Debug)]
pub struct ClosedLoop {
    rng: StdRng,
    think_time: f64,
    clients: usize,
    /// Total requests still allowed to be minted (budget).
    remaining: usize,
    next_id: u64,
    owner: HashMap<u64, usize>,
}

impl ClosedLoop {
    /// Creates a validated closed-loop generator minting at most
    /// `requests` requests in total.
    ///
    /// # Errors
    ///
    /// Returns the [`WorkloadError`] naming the degenerate parameter.
    pub fn new(
        seed: u64,
        requests: usize,
        clients: usize,
        think_time: f64,
    ) -> Result<Self, WorkloadError> {
        if requests == 0 {
            return Err(WorkloadError::NoRequests);
        }
        if clients == 0 {
            return Err(WorkloadError::NoClients);
        }
        if !(think_time.is_finite() && think_time >= 0.0) {
            return Err(WorkloadError::BadThinkTime(think_time));
        }
        Ok(ClosedLoop {
            rng: StdRng::seed_from_u64(seed),
            think_time,
            clients,
            remaining: requests,
            next_id: 0,
            owner: HashMap::new(),
        })
    }

    /// Requests already minted.
    pub fn minted(&self) -> u64 {
        self.next_id
    }

    fn mint(&mut self, client: usize, at: f64, endpoints: &[(String, u32)]) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        let endpoint = self.rng.gen_range(0..endpoints.len());
        let target = self.rng.gen_range(0..endpoints[endpoint].1);
        self.owner.insert(id, client);
        Some(Request {
            id,
            endpoint,
            target,
            arrival: at,
        })
    }

    /// The first wave: one request per client, with exponential think-gap
    /// staggering from time zero (clients do not all arrive at once).
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] for a degenerate endpoint set.
    pub fn initial(&mut self, endpoints: &[(String, u32)]) -> Result<Vec<Request>, WorkloadError> {
        check_endpoints(endpoints)?;
        let mut out = Vec::new();
        for client in 0..self.clients {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            let at = if self.think_time > 0.0 {
                -(1.0 - u).ln() * self.think_time
            } else {
                0.0
            };
            match self.mint(client, at, endpoints) {
                Some(req) => out.push(req),
                None => break,
            }
        }
        Ok(out)
    }

    /// Reports request `id`'s terminal outcome at simulated time `now`;
    /// returns the owning client's next request (arriving after its think
    /// gap), or `None` when the budget is exhausted or `id` is unknown.
    pub fn on_done(&mut self, id: u64, now: f64, endpoints: &[(String, u32)]) -> Option<Request> {
        let client = self.owner.remove(&id)?;
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let gap = if self.think_time > 0.0 {
            -(1.0 - u).ln() * self.think_time
        } else {
            0.0
        };
        self.mint(client, now + gap, endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Vec<(String, u32)> {
        vec![("a".into(), 100), ("b".into(), 7)]
    }

    fn open(seed: u64, requests: usize, rate: f64) -> WorkloadSpec {
        WorkloadSpec::open_loop(seed, requests, rate).unwrap()
    }

    #[test]
    fn same_seed_reproduces_bit_identically() {
        let spec = open(9, 200, 50.0);
        let a = generate(&spec, &space()).unwrap();
        let b = generate(&spec, &space()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn arrivals_increase_and_targets_stay_in_range() {
        let spec = open(3, 500, 200.0);
        let reqs = generate(&spec, &space()).unwrap();
        for w in reqs.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
        for r in &reqs {
            let cap = space()[r.endpoint].1;
            assert!(r.target < cap);
        }
        // Uniform endpoint choice actually uses both endpoints.
        assert!(reqs.iter().any(|r| r.endpoint == 0));
        assert!(reqs.iter().any(|r| r.endpoint == 1));
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let spec = open(1, 4000, 100.0);
        let reqs = generate(&spec, &space()).unwrap();
        let makespan = reqs.last().unwrap().arrival;
        let mean_gap = makespan / reqs.len() as f64;
        assert!((mean_gap - 0.01).abs() < 0.002, "mean gap {mean_gap}");
    }

    #[test]
    fn degenerate_specs_are_typed_errors_at_construction() {
        assert_eq!(
            WorkloadSpec::open_loop(0, 0, 10.0).unwrap_err(),
            WorkloadError::NoRequests
        );
        assert_eq!(
            WorkloadSpec::open_loop(0, 5, 0.0).unwrap_err(),
            WorkloadError::BadRate(0.0)
        );
        assert!(matches!(
            WorkloadSpec::open_loop(0, 5, f64::NAN).unwrap_err(),
            WorkloadError::BadRate(rate) if rate.is_nan()
        ));
        assert_eq!(
            WorkloadSpec::new(
                0,
                5,
                10.0,
                WorkloadKind::Diurnal {
                    period: 0.0,
                    amplitude: 0.5
                }
            )
            .unwrap_err(),
            WorkloadError::BadPeriod(0.0)
        );
        assert_eq!(
            WorkloadSpec::new(
                0,
                5,
                10.0,
                WorkloadKind::FlashCrowd {
                    at: 0.1,
                    width: 0.0,
                    factor: 3.0
                }
            )
            .unwrap_err(),
            WorkloadError::BadCrowdWidth(0.0)
        );
    }

    #[test]
    fn zero_target_endpoint_is_a_typed_error() {
        let spec = open(0, 1, 1.0);
        assert_eq!(
            generate(&spec, &[("empty".into(), 0)]).unwrap_err(),
            WorkloadError::EmptyEndpoint("empty".into())
        );
        assert_eq!(
            generate(&spec, &[]).unwrap_err(),
            WorkloadError::NoEndpoints
        );
    }

    #[test]
    fn diurnal_and_flash_crowd_modulate_arrival_density() {
        let period = 1.0;
        let spec = WorkloadSpec::new(
            5,
            4000,
            1000.0,
            WorkloadKind::Diurnal {
                period,
                amplitude: 0.9,
            },
        )
        .unwrap();
        let reqs = generate(&spec, &space()).unwrap();
        assert_eq!(reqs.len(), 4000);
        for w in reqs.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
        // The first half-cycle (sin > 0) must be denser than the second.
        let rising = reqs
            .iter()
            .filter(|r| (r.arrival % period) < period / 2.0)
            .count();
        assert!(
            rising > reqs.len() * 55 / 100,
            "diurnal peak half-cycle holds only {rising}/{} arrivals",
            reqs.len()
        );

        let crowd = WorkloadSpec::new(
            5,
            2000,
            500.0,
            WorkloadKind::FlashCrowd {
                at: 0.5,
                width: 0.5,
                factor: 8.0,
            },
        )
        .unwrap();
        let reqs = generate(&crowd, &space()).unwrap();
        let inside = reqs
            .iter()
            .filter(|r| r.arrival >= 0.5 && r.arrival < 1.0)
            .count();
        let before = reqs.iter().filter(|r| r.arrival < 0.5).count();
        assert!(
            inside > before * 3,
            "flash crowd window holds {inside} vs {before} before it"
        );
    }

    #[test]
    fn time_varying_kinds_are_deterministic_too() {
        let spec = WorkloadSpec::new(
            11,
            300,
            200.0,
            WorkloadKind::FlashCrowd {
                at: 0.2,
                width: 0.3,
                factor: 4.0,
            },
        )
        .unwrap();
        let a = generate(&spec, &space()).unwrap();
        let b = generate(&spec, &space()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn closed_loop_keeps_one_request_outstanding_per_client() {
        let mut cl = ClosedLoop::new(3, 10, 4, 0.01).unwrap();
        let first = cl.initial(&space()).unwrap();
        assert_eq!(first.len(), 4, "one request per client");
        let ids: Vec<u64> = first.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Completing a request mints its owner's next one, later in time.
        let next = cl.on_done(0, 0.5, &space()).unwrap();
        assert_eq!(next.id, 4);
        assert!(next.arrival >= 0.5);
        // Unknown ids (already completed) mint nothing.
        assert!(cl.on_done(0, 0.6, &space()).is_none());
        // The budget caps total minted requests.
        let mut done = vec![next];
        let mut t = 1.0;
        for id in ids.into_iter().skip(1) {
            if let Some(r) = cl.on_done(id, t, &space()) {
                done.push(r);
            }
            t += 0.1;
        }
        let mut all = first.len() as u64 + done.len() as u64;
        let mut frontier: Vec<u64> = done.iter().map(|r| r.id).collect();
        while let Some(id) = frontier.pop() {
            if let Some(r) = cl.on_done(id, t, &space()) {
                frontier.push(r.id);
                all += 1;
            }
            t += 0.1;
        }
        assert_eq!(all, 10, "budget of 10 requests is exhausted exactly");
        assert_eq!(cl.minted(), 10);
    }

    #[test]
    fn closed_loop_rejects_degenerate_shapes() {
        assert_eq!(
            ClosedLoop::new(0, 10, 0, 0.1).unwrap_err(),
            WorkloadError::NoClients
        );
        assert_eq!(
            ClosedLoop::new(0, 0, 2, 0.1).unwrap_err(),
            WorkloadError::NoRequests
        );
        assert_eq!(
            ClosedLoop::new(0, 10, 2, -1.0).unwrap_err(),
            WorkloadError::BadThinkTime(-1.0)
        );
    }
}
