//! Seeded synthetic client workload: open-loop Poisson-like arrivals.
//!
//! The generator is open-loop — arrival times are drawn up front from a
//! seeded RNG and never react to server backpressure, which is exactly what
//! makes overload scenarios reproducible: the same seed always produces the
//! same request stream, so a run (and its rejections, batch boundaries, and
//! latency percentiles) replays bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload shape: how many requests arrive, how fast, from which seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// RNG seed for arrivals, endpoint choice, and target choice.
    pub seed: u64,
    /// Total requests to generate.
    pub requests: usize,
    /// Mean arrival rate in requests per simulated second (the exponential
    /// inter-arrival parameter).
    pub rate: f64,
}

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique, dense id (also the submission order).
    pub id: u64,
    /// Index into the registry's endpoint list.
    pub endpoint: usize,
    /// Target within the endpoint: a node index (table4) or graph index
    /// (table5).
    pub target: u32,
    /// Simulated arrival time in seconds.
    pub arrival: f64,
}

/// Generates the request stream for `endpoints` (`(cell path, target
/// count)` pairs, from [`crate::ModelRegistry::target_space`]).
///
/// Inter-arrival gaps are exponential via inverse-transform sampling
/// (`-ln(1 - u) / rate`), endpoints are chosen uniformly, targets uniformly
/// within each endpoint's range. Arrival times are strictly increasing, so
/// `id` order is arrival order.
///
/// # Panics
///
/// Panics if `endpoints` is empty, an endpoint has zero targets, or the
/// rate is not positive and finite.
pub fn generate(spec: &WorkloadSpec, endpoints: &[(String, u32)]) -> Vec<Request> {
    assert!(
        !endpoints.is_empty(),
        "workload needs at least one endpoint"
    );
    assert!(
        spec.rate.is_finite() && spec.rate > 0.0,
        "arrival rate {} must be positive",
        spec.rate
    );
    for (path, targets) in endpoints {
        assert!(*targets > 0, "endpoint {path} has no targets");
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut now = 0.0f64;
    let mut out = Vec::with_capacity(spec.requests);
    for id in 0..spec.requests as u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        now += -(1.0 - u).ln() / spec.rate;
        let endpoint = rng.gen_range(0..endpoints.len());
        let target = rng.gen_range(0..endpoints[endpoint].1);
        out.push(Request {
            id,
            endpoint,
            target,
            arrival: now,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Vec<(String, u32)> {
        vec![("a".into(), 100), ("b".into(), 7)]
    }

    #[test]
    fn same_seed_reproduces_bit_identically() {
        let spec = WorkloadSpec {
            seed: 9,
            requests: 200,
            rate: 50.0,
        };
        let a = generate(&spec, &space());
        let b = generate(&spec, &space());
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn arrivals_increase_and_targets_stay_in_range() {
        let spec = WorkloadSpec {
            seed: 3,
            requests: 500,
            rate: 200.0,
        };
        let reqs = generate(&spec, &space());
        for w in reqs.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
        for r in &reqs {
            let cap = space()[r.endpoint].1;
            assert!(r.target < cap);
        }
        // Uniform endpoint choice actually uses both endpoints.
        assert!(reqs.iter().any(|r| r.endpoint == 0));
        assert!(reqs.iter().any(|r| r.endpoint == 1));
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let spec = WorkloadSpec {
            seed: 1,
            requests: 4000,
            rate: 100.0,
        };
        let reqs = generate(&spec, &space());
        let makespan = reqs.last().unwrap().arrival;
        let mean_gap = makespan / reqs.len() as f64;
        assert!((mean_gap - 0.01).abs() < 0.002, "mean gap {mean_gap}");
    }

    #[test]
    #[should_panic(expected = "no targets")]
    fn zero_target_endpoint_rejected() {
        let spec = WorkloadSpec {
            seed: 0,
            requests: 1,
            rate: 1.0,
        };
        generate(&spec, &[("empty".into(), 0)]);
    }
}
