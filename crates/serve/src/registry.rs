//! The immutable model registry: every endpoint's dataset + model, with
//! weights restored from `gnn-ckpt v1` training checkpoints when available.
//!
//! Registry construction mirrors the training sweep exactly — same dataset
//! generators at the same scale/seed, same architecture builders with the
//! same per-cell RNG seeds — so a checkpoint written by
//! `gnn_core::sweep` pours back into an identical architecture via
//! [`gnn_train::Checkpoint::load_params`]. Endpoints without a checkpoint
//! serve their (deterministic) initialization weights; [`Endpoint::restored`]
//! records which happened, and the serving report surfaces it.

use std::path::Path;
use std::rc::Rc;

use gnn_datasets::{CitationSpec, GraphDataset, NodeDataset, SuperpixelSpec, TudSpec};
use gnn_models::adapt::{Loader, RglLoader, RustygLoader};
use gnn_models::{build, FrameworkKind, GnnStack};
use gnn_sample::RmatGraph;
use gnn_tensor::Tensor;
use gnn_train::Checkpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cell::{sample_dataset, CellId, TaskKind};
use crate::error::ServeConfigError;

/// The fixed sampling salt of the serving path. Serving is a pure function
/// of (endpoint, targets): the same seed nodes are answered from the same
/// sampled blocks on every rerun, which keeps replies bit-reproducible.
pub const SERVE_SAMPLE_SALT: u64 = 0x5EED;

/// The model of one endpoint, typed by framework batch.
enum EndpointModel {
    Rustyg(GnnStack<rustyg::Batch>),
    Rgl(GnnStack<rgl::HeteroBatch>),
}

/// The dataset behind one endpoint. Sampled endpoints hold the framework's
/// sampled loader (RMAT graph + feature cache) because, unlike the classic
/// datasets, their data path is framework-specific.
enum EndpointData {
    Node(NodeDataset),
    Graph(GraphDataset),
    SampleRustyg(rustyg::sampled::SampledLoader),
    SampleRgl(rgl::sampled::SampledLoader),
}

/// One loaded, servable endpoint: an immutable (dataset, model) pair.
pub struct Endpoint {
    /// The cell this endpoint serves.
    pub cell: CellId,
    /// Whether weights came from a checkpoint (`true`) or are the
    /// deterministic initialization (`false`).
    pub restored: bool,
    data: EndpointData,
    model: EndpointModel,
}

impl Endpoint {
    /// How many distinct targets a request can name: nodes for node
    /// endpoints, graphs for graph endpoints.
    pub fn num_targets(&self) -> u32 {
        match &self.data {
            EndpointData::Node(ds) => ds.graph.num_nodes() as u32,
            EndpointData::Graph(ds) => ds.samples.len() as u32,
            EndpointData::SampleRustyg(l) => l.graph().num_nodes() as u32,
            EndpointData::SampleRgl(l) => l.graph().num_nodes() as u32,
        }
    }

    /// Answers a batch of requests: one logits row per target, in request
    /// order. Runs in inference mode (no tape) with `training = false`
    /// (dropout identity, batch norm on running stats), through the
    /// framework's batch path — full-graph forward for node endpoints,
    /// concat/hetero collation for graph endpoints. Device kernels land on
    /// whatever `gnn-device` session is installed.
    ///
    /// # Panics
    ///
    /// Panics if a target is out of range (the workload generator and the
    /// serve-config lint both keep targets in range).
    pub fn serve_batch(&self, targets: &[u32]) -> Vec<Vec<f32>> {
        gnn_tensor::inference(|| match (&self.model, &self.data) {
            (EndpointModel::Rustyg(stack), EndpointData::Node(ds)) => {
                let batch = rustyg::loader::full_graph_batch(ds);
                rows_at(&stack.forward(&batch, false), targets)
            }
            (EndpointModel::Rgl(stack), EndpointData::Node(ds)) => {
                let batch = rgl::loader::full_graph_batch(ds);
                rows_at(&stack.forward(&batch, false), targets)
            }
            (EndpointModel::Rustyg(stack), EndpointData::Graph(ds)) => {
                let batch = RustygLoader::new(ds).load(targets);
                all_rows(&stack.forward(&batch, false))
            }
            (EndpointModel::Rgl(stack), EndpointData::Graph(ds)) => {
                let batch = RglLoader::new(ds).load(targets);
                all_rows(&stack.forward(&batch, false))
            }
            // Sampled endpoints: the targets are the seed nodes of one
            // sampled block — seeds come first in the union's node order,
            // so the answer rows are the first `targets.len()` rows.
            (EndpointModel::Rustyg(stack), EndpointData::SampleRustyg(loader)) => {
                let batch = loader
                    .try_load_block(targets, SERVE_SAMPLE_SALT)
                    .expect("serve targets are in-range seed nodes");
                first_rows(&stack.forward(&batch, false), targets.len())
            }
            (EndpointModel::Rgl(stack), EndpointData::SampleRgl(loader)) => {
                let batch = loader
                    .try_load_block(targets, SERVE_SAMPLE_SALT)
                    .expect("serve targets are in-range seed nodes");
                first_rows(&stack.forward(&batch, false), targets.len())
            }
            _ => unreachable!("endpoint model/data framework mismatch"),
        })
    }

    /// Ground-truth labels for `targets` (accuracy bookkeeping).
    pub fn labels(&self, targets: &[u32]) -> Vec<u32> {
        match &self.data {
            EndpointData::Node(ds) => targets.iter().map(|&t| ds.labels[t as usize]).collect(),
            EndpointData::Graph(ds) => targets
                .iter()
                .map(|&t| ds.samples[t as usize].label)
                .collect(),
            EndpointData::SampleRustyg(l) => targets.iter().map(|&t| l.graph().label(t)).collect(),
            EndpointData::SampleRgl(l) => targets.iter().map(|&t| l.graph().label(t)).collect(),
        }
    }

    /// Top-1 accuracy (percent) of served predictions over `targets`,
    /// answered in chunks of `batch_size`. Used by the train→serve
    /// round-trip test: a checkpoint-restored endpoint must reproduce the
    /// training loop's eval accuracy exactly.
    pub fn eval_accuracy(&self, targets: &[u32], batch_size: usize) -> f64 {
        assert!(batch_size > 0, "batch_size must be positive");
        if targets.is_empty() {
            return 0.0;
        }
        let labels = self.labels(targets);
        let mut correct = 0usize;
        let mut seen = 0usize;
        for chunk in targets.chunks(batch_size) {
            for (row, &label) in self.serve_batch(chunk).iter().zip(&labels[seen..]) {
                if argmax(row) == label {
                    correct += 1;
                }
            }
            seen += chunk.len();
        }
        100.0 * correct as f64 / targets.len() as f64
    }

    /// The node indices of the dataset's test split (node endpoints only).
    /// Sampled endpoints answer from the training sweep's deterministic
    /// test seed pool.
    pub fn test_targets(&self) -> Vec<u32> {
        match &self.data {
            EndpointData::Node(ds) => ds.test_idx.clone(),
            EndpointData::Graph(ds) => (0..ds.samples.len() as u32).collect(),
            EndpointData::SampleRustyg(l) => l
                .graph()
                .seed_pool(l.spec().batch_seeds, gnn_train::TEST_POOL_SALT),
            EndpointData::SampleRgl(l) => l
                .graph()
                .seed_pool(l.spec().batch_seeds, gnn_train::TEST_POOL_SALT),
        }
    }
}

/// Index of the largest value in a logits row.
pub fn argmax(row: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best as u32
}

fn rows_at(logits: &Tensor, targets: &[u32]) -> Vec<Vec<f32>> {
    let data = logits.data();
    let (_, cols) = data.shape();
    targets
        .iter()
        .map(|&t| {
            let start = t as usize * cols;
            data.data()[start..start + cols].to_vec()
        })
        .collect()
}

fn all_rows(logits: &Tensor) -> Vec<Vec<f32>> {
    let data = logits.data();
    let (rows, cols) = data.shape();
    (0..rows)
        .map(|r| data.data()[r * cols..(r + 1) * cols].to_vec())
        .collect()
}

fn first_rows(logits: &Tensor, n: usize) -> Vec<Vec<f32>> {
    let data = logits.data();
    let (_, cols) = data.shape();
    (0..n)
        .map(|r| data.data()[r * cols..(r + 1) * cols].to_vec())
        .collect()
}

/// The immutable registry of loaded endpoints a serving run answers from.
pub struct ModelRegistry {
    endpoints: Vec<Endpoint>,
}

impl ModelRegistry {
    /// Builds the registry for `cells`: generates each cell's dataset
    /// (same generators/scale/seed as the sweep), builds its architecture
    /// (same per-cell RNG seeding as the sweep's run 0), and restores
    /// weights from `<ckpt_dir>/<cell>_0.ckpt` when the directory is given
    /// and the file exists.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeConfigError`] for an unknown cell path or an
    /// unreadable / mismatched checkpoint. A *missing* checkpoint file is
    /// not an error — the endpoint serves its initialization weights
    /// (`restored = false`).
    pub fn build(
        cells: &[CellId],
        scale: f64,
        seed: u64,
        ckpt_dir: Option<&Path>,
    ) -> Result<ModelRegistry, ServeConfigError> {
        let mut endpoints = Vec::with_capacity(cells.len());
        for cell in cells {
            let data = generate_data(cell, scale, seed)?;
            // Architecture seeding matches `gnn_core::sweep` run 0: node
            // and sampled cells draw from seed + 1 (+ seed index), graph
            // cells from seed + 10 (+ fold index). A checkpoint from that
            // run restores into a bit-identical architecture.
            let arch_seed = match cell.task {
                TaskKind::Node | TaskKind::Sample => seed + 1,
                TaskKind::Graph => seed + 10,
            };
            let mut rng = StdRng::seed_from_u64(arch_seed);
            let (feat, classes) = match &data {
                EndpointData::Node(ds) => (ds.features.cols(), ds.num_classes),
                EndpointData::Graph(ds) => (ds.feature_dim, ds.num_classes),
                EndpointData::SampleRustyg(l) => (
                    l.graph().config().feature_dim,
                    l.graph().config().num_classes,
                ),
                EndpointData::SampleRgl(l) => (
                    l.graph().config().feature_dim,
                    l.graph().config().num_classes,
                ),
            };
            let model = match (cell.framework, cell.task) {
                (FrameworkKind::RustyG, TaskKind::Node | TaskKind::Sample) => {
                    EndpointModel::Rustyg(build::node_model_rustyg(
                        cell.model, feat, classes, &mut rng,
                    ))
                }
                (FrameworkKind::RustyG, TaskKind::Graph) => EndpointModel::Rustyg(
                    build::graph_model_rustyg(cell.model, feat, classes, &mut rng),
                ),
                (FrameworkKind::Rgl, TaskKind::Node | TaskKind::Sample) => {
                    EndpointModel::Rgl(build::node_model_rgl(cell.model, feat, classes, &mut rng))
                }
                (FrameworkKind::Rgl, TaskKind::Graph) => {
                    EndpointModel::Rgl(build::graph_model_rgl(cell.model, feat, classes, &mut rng))
                }
            };
            let mut endpoint = Endpoint {
                cell: cell.clone(),
                restored: false,
                data,
                model,
            };
            if let Some(dir) = ckpt_dir {
                let path = dir.join(cell.ckpt_file(0));
                if path.exists() {
                    let ckpt =
                        Checkpoint::load(&path).map_err(|e| ServeConfigError::Checkpoint {
                            cell: cell.to_string(),
                            message: e.to_string(),
                        })?;
                    let (params, norms) = match &endpoint.model {
                        EndpointModel::Rustyg(s) => (s.params(), s.norm_layers()),
                        EndpointModel::Rgl(s) => (s.params(), s.norm_layers()),
                    };
                    ckpt.load_params(&params, &norms);
                    endpoint.restored = true;
                }
            }
            endpoints.push(endpoint);
        }
        Ok(ModelRegistry { endpoints })
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The endpoint at registry index `idx`.
    pub fn get(&self, idx: usize) -> &Endpoint {
        &self.endpoints[idx]
    }

    /// All endpoints, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Endpoint> {
        self.endpoints.iter()
    }

    /// `(cell path, target count)` pairs, the shape the workload generator
    /// consumes.
    pub fn target_space(&self) -> Vec<(String, u32)> {
        self.endpoints
            .iter()
            .map(|e| (e.cell.path(), e.num_targets()))
            .collect()
    }
}

/// Target count (nodes or graphs) of `cell`'s dataset at `scale`/`seed`,
/// without building the model — the cheap path the `serve-config` lint
/// uses to bound admissible batch sizes before anything executes.
///
/// # Errors
///
/// Returns a typed [`ServeConfigError`] for an unknown dataset name.
pub fn target_count(cell: &CellId, scale: f64, seed: u64) -> Result<u32, ServeConfigError> {
    // Sampled endpoints have a closed-form target space (every node of the
    // RMAT graph) — no generation needed even for the million-node spec.
    if cell.task == TaskKind::Sample {
        let (spec, _) = sample_dataset(&cell.dataset)
            .ok_or_else(|| ServeConfigError::UnknownSampleDataset(cell.dataset.clone()))?;
        return Ok(spec.rmat.num_nodes() as u32);
    }
    Ok(match generate_data(cell, scale, seed)? {
        EndpointData::Node(ds) => ds.graph.num_nodes() as u32,
        EndpointData::Graph(ds) => ds.samples.len() as u32,
        EndpointData::SampleRustyg(_) | EndpointData::SampleRgl(_) => {
            unreachable!("sample endpoints take the closed-form path above")
        }
    })
}

fn generate_data(cell: &CellId, scale: f64, seed: u64) -> Result<EndpointData, ServeConfigError> {
    match cell.task {
        TaskKind::Sample => {
            let (spec, kind) = sample_dataset(&cell.dataset)
                .ok_or_else(|| ServeConfigError::UnknownSampleDataset(cell.dataset.clone()))?;
            // RMAT specs fix their own size and seed; the serve-level
            // scale/seed intentionally do not perturb them, so sampled
            // endpoints answer from the same graph the sweep trained on.
            let _ = (scale, seed);
            let graph =
                Rc::new(RmatGraph::generate(spec.rmat).expect("catalog specs generate cleanly"));
            Ok(match cell.framework {
                FrameworkKind::RustyG => EndpointData::SampleRustyg(
                    rustyg::sampled::SampledLoader::new(graph, &spec, kind)
                        .expect("catalog specs validate"),
                ),
                FrameworkKind::Rgl => EndpointData::SampleRgl(
                    rgl::sampled::SampledLoader::new(graph, &spec, kind)
                        .expect("catalog specs validate"),
                ),
            })
        }
        TaskKind::Node => {
            let spec = match cell.dataset.as_str() {
                "Cora" => CitationSpec::cora(),
                "PubMed" => CitationSpec::pubmed(),
                other => return Err(ServeConfigError::UnknownNodeDataset(other.to_owned())),
            };
            Ok(EndpointData::Node(spec.scaled(scale).generate(seed)))
        }
        TaskKind::Graph => {
            let ds = match cell.dataset.as_str() {
                "ENZYMES" => TudSpec::enzymes().scaled(scale).generate(seed),
                "DD" => TudSpec::dd().scaled(scale).generate(seed),
                // MNIST subsamples 10x harder, matching the runners.
                "MNIST" => SuperpixelSpec::mnist()
                    .scaled((scale * 0.1).min(1.0))
                    .generate(seed),
                other => return Err(ServeConfigError::UnknownGraphDataset(other.to_owned())),
            };
            Ok(EndpointData::Graph(ds))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_and_serves_both_task_kinds() {
        let cells = [
            CellId::parse("table4/Cora/GCN/PyG").unwrap(),
            CellId::parse("table5/ENZYMES/GIN/DGL").unwrap(),
        ];
        let reg = ModelRegistry::build(&cells, 0.05, 0, None).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(!reg.get(0).restored, "no checkpoint dir given");

        let node = reg.get(0);
        assert!(node.num_targets() > 10);
        let rows = node.serve_batch(&[0, 3, 7]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 7), "Cora has 7 classes");

        let graph = reg.get(1);
        let rows = graph.serve_batch(&[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 6), "ENZYMES has 6 classes");
    }

    #[test]
    fn served_outputs_are_independent_of_batch_composition() {
        // The property OOM split-and-retry rests on: a request's logits do
        // not depend on which other requests share its batch (eval mode,
        // running-stat BN, per-graph segments).
        let cells = [CellId::parse("table5/ENZYMES/GatedGCN/PyG").unwrap()];
        let reg = ModelRegistry::build(&cells, 0.05, 0, None).unwrap();
        let ep = reg.get(0);
        let together = ep.serve_batch(&[0, 1, 2, 3]);
        let first_half = ep.serve_batch(&[0, 1]);
        let second_half = ep.serve_batch(&[2, 3]);
        assert_eq!(&together[..2], &first_half[..]);
        assert_eq!(&together[2..], &second_half[..]);
    }

    #[test]
    fn target_space_names_cells() {
        let cells = [CellId::parse("table4/PubMed/SAGE/PyG").unwrap()];
        let reg = ModelRegistry::build(&cells, 0.05, 0, None).unwrap();
        let space = reg.target_space();
        assert_eq!(space[0].0, "table4/PubMed/SAGE/PyG");
        assert!(space[0].1 > 0);
    }

    #[test]
    fn sampled_endpoints_serve_seed_rows() {
        let cells = [
            CellId::parse("sample/rmat-4k-neighbor/SAGE/PyG").unwrap(),
            CellId::parse("sample/rmat-4k-layerwise/SAGE/DGL").unwrap(),
        ];
        let reg = ModelRegistry::build(&cells, 0.05, 0, None).unwrap();
        assert_eq!(reg.len(), 2);
        for i in 0..2 {
            let ep = reg.get(i);
            assert_eq!(ep.num_targets(), 1 << 12, "rmat-4k has 2^12 nodes");
            let rows = ep.serve_batch(&[5, 9, 11]);
            assert_eq!(rows.len(), 3, "one answer row per seed");
            assert!(rows.iter().all(|r| r.len() == 8), "8 RMAT classes");
            assert_eq!(ep.labels(&[5, 9]).len(), 2);
            assert!(!ep.test_targets().is_empty());
        }
        // Same seeds, same salt: replies are bit-identical across calls.
        let ep = reg.get(0);
        assert_eq!(ep.serve_batch(&[5, 9, 11]), ep.serve_batch(&[5, 9, 11]));
    }

    #[test]
    fn sample_target_count_is_closed_form() {
        let cell = CellId::parse("sample/rmat-1m-neighbor/SAGE/PyG").unwrap();
        // Cheap: answers without generating the million-node graph.
        assert_eq!(target_count(&cell, 0.05, 0).unwrap(), 1 << 20);
        let bogus = CellId {
            task: TaskKind::Sample,
            dataset: "rmat-1m".into(),
            model: cell.model,
            framework: cell.framework,
        };
        assert_eq!(
            target_count(&bogus, 0.05, 0).unwrap_err(),
            ServeConfigError::UnknownSampleDataset("rmat-1m".into())
        );
    }

    #[test]
    fn argmax_picks_first_of_ties() {
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }
}
