//! The dynamic batcher: max-batch-size + max-queue-delay dispatch policy
//! over bounded per-endpoint queues.
//!
//! A batch dispatches as soon as either condition holds: the queue reaches
//! `max_batch` requests, or the oldest queued request has waited
//! `max_delay` simulated seconds. Queues are bounded; an arrival that finds
//! its endpoint queue full is answered immediately with
//! [`ServeError::Overloaded`] instead of growing the queue without limit —
//! open-loop arrivals never stop coming, so backpressure must be explicit.

use std::collections::VecDeque;
use std::fmt;

use crate::workload::Request;

/// Dispatch policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Dispatch when this many requests are queued (also the batch size
    /// cap). Must be ≥ 1.
    pub max_batch: usize,
    /// Dispatch when the oldest queued request has waited this many
    /// simulated seconds, even if the batch is not full. `0` disables
    /// waiting entirely (every request dispatches alone — only sensible
    /// with `max_batch == 1`).
    pub max_delay: f64,
}

impl BatchPolicy {
    /// Stable label used in reports and `serve_metrics.csv`, e.g.
    /// `b8/d2ms`.
    pub fn label(&self) -> String {
        format!("b{}/d{:.0}us", self.max_batch, self.max_delay * 1e6)
    }
}

impl fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Typed serving errors a request can be answered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The endpoint's queue was full on arrival; the request was refused
    /// (answered immediately) rather than queued without bound.
    Overloaded {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
    },
    /// The request named a cell the registry does not hold.
    UnknownEndpoint(String),
    /// The shard's admission controller refused the request: outstanding
    /// work already at the admission cap, or an ejected shard drained its
    /// queue with no retry token left. Load was *shed* deliberately,
    /// before queuing — distinct from [`ServeError::Overloaded`], which is
    /// a full queue.
    Shed {
        /// Outstanding requests observed at shed time.
        queue_depth: usize,
    },
    /// Every shard that could serve the request was ejected (or the fleet
    /// has none): the router had nowhere to send it.
    Unroutable,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(f, "overloaded: queue full at depth {queue_depth}")
            }
            ServeError::UnknownEndpoint(cell) => write!(f, "unknown endpoint `{cell}`"),
            ServeError::Shed { queue_depth } => {
                write!(f, "shed: admission control at depth {queue_depth}")
            }
            ServeError::Unroutable => write!(f, "unroutable: every shard is ejected"),
        }
    }
}

/// A queued request with its admission timestamp.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The request.
    pub req: Request,
    /// Simulated time the request entered the queue (its arrival — the
    /// span every latency figure is measured from).
    pub enqueue: f64,
}

/// One endpoint's bounded FIFO queue, with depth statistics.
#[derive(Debug)]
pub struct EndpointQueue {
    cap: usize,
    items: VecDeque<Pending>,
    /// Largest depth ever observed (after admission).
    pub max_depth: usize,
    /// Sum of depths sampled at each admission (mean-depth numerator).
    pub depth_sum: f64,
    /// Admissions sampled (mean-depth denominator).
    pub admitted: u64,
}

impl EndpointQueue {
    /// Creates a queue bounded at `cap` requests.
    pub fn new(cap: usize) -> Self {
        EndpointQueue {
            cap,
            items: VecDeque::new(),
            max_depth: 0,
            depth_sum: 0.0,
            admitted: 0,
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Admits a request, or refuses it with [`ServeError::Overloaded`]
    /// when the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the typed backpressure error; the caller answers the
    /// request with it immediately.
    pub fn admit(&mut self, req: Request, now: f64) -> Result<(), ServeError> {
        if self.items.len() >= self.cap {
            return Err(ServeError::Overloaded {
                queue_depth: self.items.len(),
            });
        }
        self.items.push_back(Pending { req, enqueue: now });
        self.max_depth = self.max_depth.max(self.items.len());
        self.depth_sum += self.items.len() as f64;
        self.admitted += 1;
        Ok(())
    }

    /// When this queue's next batch becomes dispatchable under `policy`:
    /// `now` if the batch is already full, the head's deadline otherwise,
    /// `None` if the queue is empty. The caller still waits for a free
    /// replica.
    pub fn ready_at(&self, policy: &BatchPolicy, now: f64) -> Option<f64> {
        let head = self.items.front()?;
        if self.items.len() >= policy.max_batch {
            Some(now)
        } else {
            Some(head.enqueue + policy.max_delay)
        }
    }

    /// Removes and returns the next batch (up to `policy.max_batch`
    /// requests, FIFO).
    pub fn take_batch(&mut self, policy: &BatchPolicy) -> Vec<Pending> {
        let n = self.items.len().min(policy.max_batch);
        self.items.drain(..n).collect()
    }

    /// Queued requests in FIFO order (the fleet router scans these for
    /// hedge deadlines).
    pub fn iter(&self) -> impl Iterator<Item = &Pending> {
        self.items.iter()
    }

    /// Removes the queued copy of request `id`, if present, returning it.
    /// The fleet router uses this to cancel a hedge twin the moment its
    /// sibling dispatches, and to drain an ejected shard's queue.
    pub fn remove(&mut self, id: u64) -> Option<Pending> {
        let pos = self.items.iter().position(|p| p.req.id == id)?;
        self.items.remove(pos)
    }

    /// Removes and returns everything queued (ejection drain), FIFO order.
    pub fn drain_all(&mut self) -> Vec<Pending> {
        self.items.drain(..).collect()
    }

    /// Mean depth observed at admission times.
    pub fn mean_depth(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.depth_sum / self.admitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: f64) -> Request {
        Request {
            id,
            endpoint: 0,
            target: 0,
            arrival,
        }
    }

    #[test]
    fn full_batch_is_ready_immediately() {
        let policy = BatchPolicy {
            max_batch: 2,
            max_delay: 1.0,
        };
        let mut q = EndpointQueue::new(16);
        q.admit(req(0, 0.0), 0.0).unwrap();
        assert_eq!(q.ready_at(&policy, 0.0), Some(1.0), "head deadline");
        q.admit(req(1, 0.1), 0.1).unwrap();
        assert_eq!(q.ready_at(&policy, 0.1), Some(0.1), "full batch: now");
        let batch = q.take_batch(&policy);
        assert_eq!(batch.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn partial_batch_waits_for_head_deadline() {
        let policy = BatchPolicy {
            max_batch: 8,
            max_delay: 0.5,
        };
        let mut q = EndpointQueue::new(16);
        q.admit(req(0, 2.0), 2.0).unwrap();
        q.admit(req(1, 2.1), 2.1).unwrap();
        // The *oldest* request's wait bounds the delay.
        assert_eq!(q.ready_at(&policy, 2.1), Some(2.5));
    }

    #[test]
    fn bounded_queue_refuses_with_overloaded() {
        let mut q = EndpointQueue::new(2);
        q.admit(req(0, 0.0), 0.0).unwrap();
        q.admit(req(1, 0.0), 0.0).unwrap();
        let err = q.admit(req(2, 0.0), 0.0).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { queue_depth: 2 });
        assert_eq!(q.len(), 2, "rejected request must not enter the queue");
    }

    #[test]
    fn depth_stats_track_admissions() {
        let mut q = EndpointQueue::new(8);
        q.admit(req(0, 0.0), 0.0).unwrap();
        q.admit(req(1, 0.0), 0.0).unwrap();
        q.admit(req(2, 0.0), 0.0).unwrap();
        assert_eq!(q.max_depth, 3);
        assert!((q.mean_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn remove_cancels_a_queued_twin_and_drain_empties() {
        let mut q = EndpointQueue::new(8);
        q.admit(req(0, 0.0), 0.0).unwrap();
        q.admit(req(1, 0.0), 0.0).unwrap();
        q.admit(req(2, 0.0), 0.0).unwrap();
        let gone = q.remove(1).unwrap();
        assert_eq!(gone.req.id, 1);
        assert!(q.remove(1).is_none(), "already removed");
        let rest = q.drain_all();
        assert_eq!(
            rest.iter().map(|p| p.req.id).collect::<Vec<_>>(),
            vec![0, 2],
            "drain preserves FIFO order"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn shed_and_unroutable_render_typed_diagnostics() {
        assert_eq!(
            ServeError::Shed { queue_depth: 64 }.to_string(),
            "shed: admission control at depth 64"
        );
        assert_eq!(
            ServeError::Unroutable.to_string(),
            "unroutable: every shard is ejected"
        );
    }

    #[test]
    fn policy_label_is_stable() {
        let p = BatchPolicy {
            max_batch: 8,
            max_delay: 0.002,
        };
        assert_eq!(p.label(), "b8/d2000us");
    }
}
