//! The serving engine: a deterministic discrete-event loop that admits the
//! workload, batches per endpoint, and executes batches on simulated
//! device replicas — surviving injected faults.
//!
//! Time is a single simulated serve clock. Replicas are virtual device
//! slots: each holds only a `free_at` timestamp and an `alive` flag; a
//! dispatched batch installs a fresh `gnn-device` session, runs the
//! endpoint's forward in inference mode, and the session report's
//! `total_time` is the batch's service time. Because every source of time
//! (arrivals, cost model, fault plan) is seeded or analytic, a rerun with
//! the same [`ServeConfig`] reproduces every reply bit-identically — the
//! property the batcher tests and CI assert.
//!
//! Fault tolerance (hooks fire only when a `gnn-faults` plan is armed):
//!
//! - **OOM on a batch** → split-and-retry: the batch is halved and each
//!   half re-executed in its own session, recursively down to single
//!   requests. Eval-mode outputs are independent of batch composition, so
//!   the replies stay bit-identical to an unfaulted run; only timing and
//!   the split counters change.
//! - **Kernel fault** → the attempt is retried in place up to
//!   [`MAX_KERNEL_RETRIES`] times, then accepted with a note (the
//!   simulated forward completes; the note mirrors the training
//!   supervisor's bookkeeping).
//! - **Replica failure** (`on_dp_step`) → the replica is marked dead and
//!   all subsequent batches shed to the survivors. The last replica
//!   refuses to die — a serving fleet of one keeps answering.

use std::path::PathBuf;

use gnn_device::{CostModel, Session};
use gnn_faults::Fault;
use gnn_obs::{self as obs, tracks, Value};

use crate::batcher::{BatchPolicy, EndpointQueue};
use crate::cell::{default_endpoints, CellId};
use crate::error::ServeConfigError;
use crate::metrics::{BatchRecord, Outcome, QueueStats, RequestRecord, ServeReport};
use crate::registry::{argmax, Endpoint, ModelRegistry};
use crate::workload::{self, WorkloadKind, WorkloadSpec};

/// Whole-batch retries after a kernel fault before accepting with a note.
pub const MAX_KERNEL_RETRIES: usize = 3;

/// Everything one serving run needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cells to load and serve.
    pub endpoints: Vec<CellId>,
    /// Total requests in the synthetic workload.
    pub requests: usize,
    /// Mean arrival rate, requests per simulated second.
    pub rate: f64,
    /// Seed for workload generation (and dataset/architecture generation,
    /// shared with the sweep convention).
    pub seed: u64,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Per-endpoint queue bound; arrivals beyond it are refused with
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Device replicas executing batches.
    pub replicas: usize,
    /// Dataset scale factor (sweep convention).
    pub scale: f64,
    /// Directory of `gnn-ckpt v1` checkpoints to restore weights from.
    pub ckpt_dir: Option<PathBuf>,
    /// Cost model pricing every replica session. The default is the paper's
    /// RTX 2080Ti; the causal profiler's conformance pass overlays what-if
    /// speedups here (`CostModel::with_speedups`) to re-run a policy under
    /// a hypothetically faster component.
    pub cost: CostModel,
    /// SLO latency target (seconds) reports grade attainment against.
    pub slo_target: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            endpoints: default_endpoints(),
            requests: 400,
            rate: 2000.0,
            seed: 0,
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: 0.002,
            },
            queue_cap: 32,
            replicas: 2,
            scale: 0.05,
            ckpt_dir: None,
            cost: CostModel::rtx2080ti(),
            slo_target: 0.005,
        }
    }
}

impl ServeConfig {
    /// Validates the config, mirroring the `serve-config` lint's hard
    /// rules (the lint additionally warns about never-firing policies).
    ///
    /// # Errors
    ///
    /// Returns the typed [`ServeConfigError`] naming what is impossible
    /// (its `Display` matches the stringly diagnostics of earlier
    /// releases).
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.endpoints.is_empty() {
            return Err(ServeConfigError::NoEndpoints);
        }
        if self.requests == 0 {
            return Err(ServeConfigError::NoRequests);
        }
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return Err(ServeConfigError::BadRate(self.rate));
        }
        if self.policy.max_batch == 0 {
            return Err(ServeConfigError::ZeroMaxBatch);
        }
        if !(self.policy.max_delay.is_finite() && self.policy.max_delay >= 0.0) {
            return Err(ServeConfigError::BadMaxDelay(self.policy.max_delay));
        }
        if self.queue_cap < self.policy.max_batch {
            return Err(ServeConfigError::QueueBelowBatch {
                queue_cap: self.queue_cap,
                max_batch: self.policy.max_batch,
            });
        }
        if self.replicas == 0 {
            return Err(ServeConfigError::NoReplicas);
        }
        if !(self.slo_target.is_finite() && self.slo_target > 0.0) {
            return Err(ServeConfigError::BadSloTarget(self.slo_target));
        }
        Ok(())
    }
}

/// One virtual device slot.
struct Replica {
    free_at: f64,
    alive: bool,
}

/// Runs one complete serving session: builds the registry, generates the
/// seeded workload, and plays it through the batcher onto the replicas.
/// Returns a report answering *every* submitted request (served or
/// rejected — never dropped).
///
/// Fault hooks are called unconditionally; they are no-ops unless the
/// caller armed a `gnn-faults` plan (the `gnn-bench serve` binary does
/// this for `--faults` runs).
///
/// # Errors
///
/// Returns a typed [`ServeConfigError`] for an invalid config or a
/// registry that fails to build (unknown cell, unreadable checkpoint).
pub fn serve(cfg: &ServeConfig) -> Result<ServeReport, ServeConfigError> {
    cfg.validate()?;
    let registry =
        ModelRegistry::build(&cfg.endpoints, cfg.scale, cfg.seed, cfg.ckpt_dir.as_deref())?;
    let spec = WorkloadSpec {
        seed: cfg.seed,
        requests: cfg.requests,
        rate: cfg.rate,
        kind: WorkloadKind::OpenLoop,
    };
    let requests = workload::generate(&spec, &registry.target_space())?;
    Ok(run(cfg, &registry, requests))
}

/// Plays an explicit request stream against an already-built registry.
/// Exposed separately so property tests can drive arbitrary arrival
/// patterns through the real engine.
pub fn run(
    cfg: &ServeConfig,
    registry: &ModelRegistry,
    requests: Vec<crate::Request>,
) -> ServeReport {
    run_with(cfg, registry, requests, &mut |endpoint, targets, notes| {
        exec_targets(endpoint, targets, notes, &cfg.cost)
    })
}

/// A pluggable batch executor for [`run_with`]: endpoint + batched targets
/// (+ a notes sink) → the batch's [`Execution`].
pub(crate) type BatchExecutor<'a> =
    dyn FnMut(&Endpoint, &[u32], &mut Vec<String>) -> Execution + 'a;

/// The engine loop with a pluggable batch executor: the real path runs the
/// endpoint's forward in a device session; the causal profiler substitutes
/// replayed-from-capture service times so policy what-ifs re-simulate the
/// *queue dynamics* on the serve clock instead of scaling latencies naively.
pub(crate) fn run_with(
    cfg: &ServeConfig,
    registry: &ModelRegistry,
    requests: Vec<crate::Request>,
    exec_batch: &mut BatchExecutor<'_>,
) -> ServeReport {
    let mut queues: Vec<EndpointQueue> = (0..registry.len())
        .map(|_| EndpointQueue::new(cfg.queue_cap))
        .collect();
    let mut replicas: Vec<Replica> = (0..cfg.replicas)
        .map(|_| Replica {
            free_at: 0.0,
            alive: true,
        })
        .collect();
    let mut records: Vec<RequestRecord> = Vec::with_capacity(requests.len());
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let mut now = 0.0f64;
    let mut next = 0usize; // next arrival index
    let mut replicas_lost = 0usize;

    loop {
        let t_arr = requests
            .get(next)
            .map(|r| r.arrival)
            .unwrap_or(f64::INFINITY);
        // Earliest dispatch opportunity across endpoints: the batch must be
        // ready (full, or head past its delay deadline) AND an alive
        // replica must be free. Ties break on the lowest endpoint index —
        // fully deterministic.
        let free_at = replicas
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.free_at.max(now))
            .fold(f64::INFINITY, f64::min);
        let mut t_disp = f64::INFINITY;
        let mut disp_ep = usize::MAX;
        for (e, q) in queues.iter().enumerate() {
            if let Some(ready) = q.ready_at(&cfg.policy, now) {
                let t = ready.max(free_at);
                if t < t_disp {
                    t_disp = t;
                    disp_ep = e;
                }
            }
        }
        if t_arr <= t_disp {
            if next >= requests.len() {
                break; // no arrivals left, nothing dispatchable
            }
            // Admission: an arrival at exactly a dispatch deadline joins
            // the queue first and may ride the dispatching batch.
            let req = requests[next].clone();
            next += 1;
            now = now.max(req.arrival);
            let q = &mut queues[req.endpoint];
            let endpoint = registry.get(req.endpoint);
            match q.admit(req.clone(), now) {
                Ok(()) => {
                    obs::counter(tracks::SERVE, "queue_depth", q.len() as f64, now);
                }
                Err(err) => {
                    obs::instant(
                        tracks::SERVE,
                        "rejected",
                        now,
                        vec![
                            (
                                "endpoint".to_owned(),
                                Value::from(endpoint.cell.path().as_str()),
                            ),
                            ("request".to_owned(), Value::from(req.id as f64)),
                            ("error".to_owned(), Value::from(err.to_string().as_str())),
                        ],
                    );
                    records.push(RequestRecord {
                        id: req.id,
                        endpoint: endpoint.cell.path(),
                        target: req.target,
                        enqueue: now,
                        dispatch: now,
                        reply: now,
                        batch: None,
                        batch_size: 0,
                        output: Vec::new(),
                        class: 0,
                        outcome: Outcome::Rejected(err),
                    });
                }
            }
        } else {
            now = t_disp;
            // Replica-failure hook fires once per dispatch (the serving
            // analogue of a data-parallel step). The last survivor refuses
            // to die: a fleet of one keeps answering.
            let alive: Vec<usize> = replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.alive)
                .map(|(i, _)| i)
                .collect();
            if let Some(g) = gnn_faults::on_dp_step(alive.len(), now) {
                if alive.len() > 1 {
                    let victim = alive[g];
                    replicas[victim].alive = false;
                    replicas_lost += 1;
                    notes.push(format!(
                        "replica {victim} failed at {now:.4}s: shedding to {} survivor(s)",
                        alive.len() - 1
                    ));
                } else {
                    notes.push(format!(
                        "replica failure injected at {now:.4}s ignored: last replica keeps serving"
                    ));
                }
            }
            // Pick the earliest-free alive replica (recomputed after any
            // failure; lowest index breaks ties).
            let replica = replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.alive)
                .min_by(|(_, a), (_, b)| a.free_at.partial_cmp(&b.free_at).expect("finite free_at"))
                .map(|(i, _)| i)
                .expect("at least one replica stays alive");
            let start = now.max(replicas[replica].free_at);
            let endpoint = registry.get(disp_ep);
            let batch = queues[disp_ep].take_batch(&cfg.policy);
            let bid = batches.len() as u64;
            gnn_faults::set_cell(&endpoint.cell.path());
            let targets: Vec<u32> = batch.iter().map(|p| p.req.target).collect();
            let exec = exec_batch(endpoint, &targets, &mut notes);
            let reply = start + exec.duration;
            replicas[replica].free_at = reply;
            let roofline = exec.roofline(cfg.cost.peak_flops, cfg.cost.peak_bw);
            obs::complete(
                tracks::SERVE,
                "batch",
                start,
                exec.duration,
                vec![
                    (
                        "endpoint".to_owned(),
                        Value::from(endpoint.cell.path().as_str()),
                    ),
                    ("size".to_owned(), Value::from(batch.len() as f64)),
                    ("replica".to_owned(), Value::from(replica as f64)),
                    ("oom_splits".to_owned(), Value::from(exec.oom_splits as f64)),
                    (
                        "kernel_retries".to_owned(),
                        Value::from(exec.kernel_retries as f64),
                    ),
                    ("flops".to_owned(), Value::from(exec.flops)),
                    ("bytes".to_owned(), Value::from(exec.bytes)),
                    ("ai".to_owned(), Value::Num(exec.intensity())),
                    ("roofline".to_owned(), Value::Num(roofline)),
                ],
            );
            for (pending, output) in batch.iter().zip(exec.outputs) {
                let ep_arg = (
                    "endpoint".to_owned(),
                    Value::from(endpoint.cell.path().as_str()),
                );
                let req_arg = ("request".to_owned(), Value::from(pending.req.id as f64));
                // Sub-phases of the request's life: queue-wait from
                // admission to batch dispatch, execute from dispatch to
                // reply. The critical-path analyzer attributes serve
                // latency from exactly these two slices, and they sum to
                // the enclosing request span by construction.
                obs::complete(
                    tracks::SERVE,
                    "queue_wait",
                    pending.enqueue,
                    start - pending.enqueue,
                    vec![ep_arg.clone(), req_arg.clone()],
                );
                obs::complete(
                    tracks::SERVE,
                    "execute",
                    start,
                    exec.duration,
                    vec![
                        ep_arg.clone(),
                        req_arg,
                        ("flops".to_owned(), Value::from(exec.flops)),
                        ("bytes".to_owned(), Value::from(exec.bytes)),
                        ("roofline".to_owned(), Value::Num(roofline)),
                    ],
                );
                obs::complete(
                    tracks::SERVE,
                    "request",
                    pending.enqueue,
                    reply - pending.enqueue,
                    vec![
                        ep_arg,
                        ("target".to_owned(), Value::from(pending.req.target as f64)),
                        ("batch".to_owned(), Value::from(bid as f64)),
                        ("queued".to_owned(), Value::from(start - pending.enqueue)),
                        ("service".to_owned(), Value::from(exec.duration)),
                    ],
                );
                records.push(RequestRecord {
                    id: pending.req.id,
                    endpoint: endpoint.cell.path(),
                    target: pending.req.target,
                    enqueue: pending.enqueue,
                    dispatch: start,
                    reply,
                    batch: Some(bid),
                    batch_size: batch.len(),
                    class: argmax(&output),
                    output,
                    outcome: Outcome::Ok,
                });
            }
            batches.push(BatchRecord {
                id: bid,
                endpoint: endpoint.cell.path(),
                shard: 0,
                replica,
                start,
                duration: exec.duration,
                size: batch.len(),
                oom_splits: exec.oom_splits,
                kernel_retries: exec.kernel_retries,
                peak_memory: exec.peak_memory,
            });
        }
    }

    records.sort_by_key(|r| r.id);
    let makespan = records.iter().map(|r| r.reply).fold(0.0, f64::max);
    let queues_stats = queues
        .iter()
        .enumerate()
        .map(|(e, q)| QueueStats {
            endpoint: registry.get(e).cell.path(),
            max_depth: q.max_depth,
            mean_depth: q.mean_depth(),
        })
        .collect();
    ServeReport {
        policy: cfg.policy,
        routing: "single".to_owned(),
        slo_target: cfg.slo_target,
        fleet: None,
        requests: records,
        batches,
        queues: queues_stats,
        makespan,
        replicas: cfg.replicas,
        replicas_lost,
        restored_endpoints: registry.iter().filter(|e| e.restored).count(),
        notes,
    }
}

/// Result of executing one dispatched batch, including every retry.
pub(crate) struct Execution {
    pub(crate) outputs: Vec<Vec<f32>>,
    pub(crate) duration: f64,
    pub(crate) oom_splits: usize,
    pub(crate) kernel_retries: usize,
    /// Hardware counters summed over every attempt's session report.
    pub(crate) flops: u64,
    pub(crate) bytes: u64,
    pub(crate) busy: f64,
    /// Largest session peak memory across every attempt (bytes).
    pub(crate) peak_memory: u64,
}

impl Execution {
    /// Attained roofline fraction of the batch's device-busy time against
    /// the replica cost model's peaks.
    fn roofline(&self, peak_flops: f64, peak_bw: f64) -> f64 {
        if self.busy <= 0.0 {
            return 0.0;
        }
        let flop_frac = self.flops as f64 / self.busy / peak_flops;
        let bw_frac = self.bytes as f64 / self.busy / peak_bw;
        flop_frac.max(bw_frac).clamp(0.0, 1.0)
    }

    fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// Executes a batch of `targets` on the endpoint, surviving injected faults:
/// OOM → split-and-retry halves (recursively, down to single requests),
/// kernel fault → in-place retry with a cap. Each attempt runs in its own
/// device session priced by `cost`; the batch's service time is the sum
/// over all attempts. Shared with the fleet engine, whose shards execute
/// batches through exactly this path.
pub(crate) fn exec_targets(
    endpoint: &Endpoint,
    targets: &[u32],
    notes: &mut Vec<String>,
    cost: &CostModel,
) -> Execution {
    let mut duration = 0.0f64;
    let mut kernel_retries = 0usize;
    let mut flops = 0u64;
    let mut bytes_moved = 0u64;
    let mut busy = 0.0f64;
    let mut peak_memory = 0u64;
    loop {
        let handle = gnn_device::session::install(Session::new(cost.clone()));
        let outputs = endpoint.serve_batch(targets);
        let report = gnn_device::session::finish(handle);
        duration += report.total_time;
        flops += report.total_flops;
        bytes_moved += report.total_bytes;
        busy += report.busy_time;
        peak_memory = peak_memory.max(report.peak_memory);
        match gnn_faults::take_pending() {
            None => {
                return Execution {
                    outputs,
                    duration,
                    oom_splits: 0,
                    kernel_retries,
                    flops,
                    bytes: bytes_moved,
                    busy,
                    peak_memory,
                }
            }
            Some(Fault::Oom { bytes }) => {
                if targets.len() > 1 {
                    // Split-and-retry: halve the batch and re-execute each
                    // half. Outputs are batch-composition independent in
                    // eval mode, so replies stay bit-identical.
                    let mid = targets.len() / 2;
                    let left = exec_targets(endpoint, &targets[..mid], notes, cost);
                    let right = exec_targets(endpoint, &targets[mid..], notes, cost);
                    let mut outputs = left.outputs;
                    outputs.extend(right.outputs);
                    return Execution {
                        outputs,
                        duration: duration + left.duration + right.duration,
                        oom_splits: 1 + left.oom_splits + right.oom_splits,
                        kernel_retries: kernel_retries + left.kernel_retries + right.kernel_retries,
                        flops: flops + left.flops + right.flops,
                        bytes: bytes_moved + left.bytes + right.bytes,
                        busy: busy + left.busy + right.busy,
                        peak_memory: peak_memory.max(left.peak_memory).max(right.peak_memory),
                    };
                }
                // Already a single request: the simulated forward still
                // completed, so answer it and note the persistent OOM.
                notes.push(format!(
                    "{}: persistent OOM ({bytes} B) at batch size 1; answered anyway",
                    endpoint.cell.path()
                ));
                return Execution {
                    outputs,
                    duration,
                    oom_splits: 0,
                    kernel_retries,
                    flops,
                    bytes: bytes_moved,
                    busy,
                    peak_memory,
                };
            }
            Some(Fault::Kernel { name }) => {
                if kernel_retries >= MAX_KERNEL_RETRIES {
                    notes.push(format!(
                        "{}: kernel `{name}` still faulting after {MAX_KERNEL_RETRIES} retries; \
                         accepting result",
                        endpoint.cell.path()
                    ));
                    return Execution {
                        outputs,
                        duration,
                        oom_splits: 0,
                        kernel_retries,
                        flops,
                        bytes: bytes_moved,
                        busy,
                        peak_memory,
                    };
                }
                kernel_retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            endpoints: vec![
                CellId::parse("table4/Cora/GCN/PyG").unwrap(),
                CellId::parse("table5/ENZYMES/GIN/DGL").unwrap(),
            ],
            requests: 60,
            rate: 500.0,
            seed: 7,
            policy: BatchPolicy {
                max_batch: 4,
                max_delay: 0.004,
            },
            queue_cap: 16,
            replicas: 2,
            scale: 0.05,
            ckpt_dir: None,
            cost: gnn_device::CostModel::rtx2080ti(),
            slo_target: 0.005,
        }
    }

    #[test]
    fn config_validation_rejects_impossible_setups() {
        let mut cfg = small_cfg();
        cfg.replicas = 0;
        assert_eq!(cfg.validate().unwrap_err(), ServeConfigError::NoReplicas);
        let mut cfg = small_cfg();
        cfg.queue_cap = 2; // below max_batch 4
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeConfigError::QueueBelowBatch {
                queue_cap: 2,
                max_batch: 4
            }
        );
        let mut cfg = small_cfg();
        cfg.rate = 0.0;
        assert_eq!(cfg.validate().unwrap_err(), ServeConfigError::BadRate(0.0));
        let mut cfg = small_cfg();
        cfg.slo_target = 0.0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeConfigError::BadSloTarget(0.0)
        );
        assert!(small_cfg().validate().is_ok());
    }

    #[test]
    fn every_request_is_answered_exactly_once() {
        let cfg = small_cfg();
        let report = serve(&cfg).unwrap();
        assert_eq!(report.requests.len(), cfg.requests, "nothing dropped");
        for (i, r) in report.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64, "records sorted and dense by id");
            assert!(r.reply >= r.enqueue);
            if r.served() {
                assert!(!r.output.is_empty());
                assert!(r.latency() > 0.0);
            }
        }
        assert!(report.answered() > 0);
        assert!(report.makespan > 0.0);
        assert!(!report.batches.is_empty());
        for b in &report.batches {
            assert!(b.size >= 1 && b.size <= cfg.policy.max_batch);
            assert!(b.peak_memory > 0, "every dispatch allocates on-device");
        }
    }

    #[test]
    fn same_seed_reruns_are_bit_identical() {
        let cfg = small_cfg();
        let a = serve(&cfg).unwrap();
        let b = serve(&cfg).unwrap();
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.output, y.output, "request {} outputs differ", x.id);
            assert_eq!(x.enqueue.to_bits(), y.enqueue.to_bits());
            assert_eq!(x.reply.to_bits(), y.reply.to_bits());
        }
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn sampled_endpoints_answer_every_request_under_canonical_faults() {
        let mut cfg = small_cfg();
        cfg.endpoints = vec![
            CellId::parse("sample/rmat-4k-neighbor/SAGE/PyG").unwrap(),
            CellId::parse("sample/rmat-4k-layerwise/SAGE/DGL").unwrap(),
        ];
        cfg.requests = 40;
        let handle = gnn_faults::install(gnn_faults::FaultPlan::canonical());
        let report = serve(&cfg);
        drop(handle);
        let report = report.unwrap();
        assert_eq!(report.requests.len(), cfg.requests, "conservation");
        assert_eq!(
            report.answered() + report.rejected(),
            cfg.requests,
            "every request gets a reply even while the fault plan fires"
        );
        assert!(report.answered() > 0);
        for r in report.requests.iter().filter(|r| r.served()) {
            assert_eq!(r.output.len(), 8, "8 RMAT classes per sampled answer");
        }
    }

    #[test]
    fn overload_rejects_instead_of_growing_queues() {
        let mut cfg = small_cfg();
        // One slow endpoint, tiny queue, arrivals far faster than service.
        cfg.endpoints = vec![CellId::parse("table5/DD/MoNet/DGL").unwrap()];
        cfg.requests = 120;
        cfg.rate = 100_000.0;
        cfg.queue_cap = 4;
        cfg.policy = BatchPolicy {
            max_batch: 4,
            max_delay: 0.001,
        };
        cfg.replicas = 1;
        let report = serve(&cfg).unwrap();
        assert!(report.rejected() > 0, "overload must trigger backpressure");
        assert_eq!(
            report.answered() + report.rejected(),
            cfg.requests,
            "rejected requests are answered, not dropped"
        );
        for q in &report.queues {
            assert!(q.max_depth <= cfg.queue_cap);
        }
    }
}
