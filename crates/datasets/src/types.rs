//! Dataset containers and Table-I-style statistics.

use gnn_graph::Graph;
use gnn_tensor::NdArray;

/// A single-graph node-classification dataset (Cora / PubMed style).
#[derive(Debug)]
pub struct NodeDataset {
    /// Dataset name, e.g. `"Cora"`.
    pub name: String,
    /// The (symmetric) citation graph.
    pub graph: Graph,
    /// Node features `[N, F]`.
    pub features: NdArray,
    /// Node class labels `[N]`.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Indices of training nodes.
    pub train_idx: Vec<u32>,
    /// Indices of validation nodes.
    pub val_idx: Vec<u32>,
    /// Indices of test nodes.
    pub test_idx: Vec<u32>,
}

impl NodeDataset {
    /// Labels of the given node indices.
    pub fn labels_at(&self, idx: &[u32]) -> Vec<u32> {
        idx.iter().map(|&i| self.labels[i as usize]).collect()
    }

    /// Table-I statistics of this dataset. Edge counts are undirected pairs
    /// (the convention of the paper's citation/TU rows).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            num_graphs: 1,
            avg_nodes: self.graph.num_nodes() as f64,
            avg_edges: self.graph.num_edges() as f64 / 2.0,
            feature_dim: self.features.cols(),
            num_classes: self.num_classes,
        }
    }
}

/// One labelled graph of a graph-classification dataset.
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// Topology (message-passing directed; symmetric where the source data
    /// is undirected).
    pub graph: Graph,
    /// Node features `[num_nodes, F]`.
    pub features: NdArray,
    /// Graph-level class label.
    pub label: u32,
}

/// A multi-graph graph-classification dataset (ENZYMES / DD / MNIST style).
#[derive(Debug)]
pub struct GraphDataset {
    /// Dataset name, e.g. `"ENZYMES"`.
    pub name: String,
    /// The labelled graphs.
    pub samples: Vec<GraphSample>,
    /// Number of classes.
    pub num_classes: usize,
    /// Node feature dimension.
    pub feature_dim: usize,
    /// Whether edge counts should be reported as directed edges (true for
    /// MNIST's k-NN graphs, matching Table I) or undirected pairs (TU data).
    pub directed_edge_stats: bool,
}

impl GraphDataset {
    /// All graph labels, in sample order.
    pub fn labels(&self) -> Vec<u32> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Table-I statistics of this dataset.
    pub fn stats(&self) -> DatasetStats {
        let n = self.samples.len().max(1) as f64;
        let nodes: f64 = self
            .samples
            .iter()
            .map(|s| s.graph.num_nodes() as f64)
            .sum();
        let mut edges: f64 = self
            .samples
            .iter()
            .map(|s| s.graph.num_edges() as f64)
            .sum();
        if !self.directed_edge_stats {
            edges /= 2.0;
        }
        DatasetStats {
            name: self.name.clone(),
            num_graphs: self.samples.len(),
            avg_nodes: nodes / n,
            avg_edges: edges / n,
            feature_dim: self.feature_dim,
            num_classes: self.num_classes,
        }
    }
}

/// The row shape of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of graphs.
    pub num_graphs: usize,
    /// Average node count per graph.
    pub avg_nodes: f64,
    /// Average edge count per graph (see dataset docs for direction
    /// convention).
    pub avg_edges: f64,
    /// Node feature dimension.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} graphs={:<6} nodes(avg)={:<9.2} edges(avg)={:<9.2} feat={:<5} classes={}",
            self.name,
            self.num_graphs,
            self.avg_nodes,
            self.avg_edges,
            self.feature_dim,
            self.num_classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: u32, nodes: usize) -> GraphSample {
        let edges: Vec<(u32, u32)> = (0..nodes as u32 - 1)
            .flat_map(|i| [(i, i + 1), (i + 1, i)])
            .collect();
        GraphSample {
            graph: Graph::from_edges(nodes, &edges),
            features: NdArray::zeros(nodes, 4),
            label,
        }
    }

    #[test]
    fn graph_dataset_stats_average() {
        let ds = GraphDataset {
            name: "toy".into(),
            samples: vec![sample(0, 3), sample(1, 5)],
            num_classes: 2,
            feature_dim: 4,
            directed_edge_stats: false,
        };
        let s = ds.stats();
        assert_eq!(s.num_graphs, 2);
        assert_eq!(s.avg_nodes, 4.0);
        assert_eq!(s.avg_edges, 3.0); // (2 + 4) undirected pairs / 2 graphs
        assert_eq!(ds.labels(), vec![0, 1]);
    }

    #[test]
    fn directed_stats_do_not_halve() {
        let ds = GraphDataset {
            name: "toy".into(),
            samples: vec![sample(0, 3)],
            num_classes: 1,
            feature_dim: 4,
            directed_edge_stats: true,
        };
        assert_eq!(ds.stats().avg_edges, 4.0);
    }

    #[test]
    fn display_contains_name() {
        let s = DatasetStats {
            name: "Cora".into(),
            num_graphs: 1,
            avg_nodes: 2708.0,
            avg_edges: 5429.0,
            feature_dim: 1433,
            num_classes: 7,
        };
        assert!(format!("{s}").contains("Cora"));
    }
}
