//! Citation-network generator (Cora / PubMed stand-ins).
//!
//! Real citation graphs combine a heavy-tailed degree distribution (papers
//! accumulate citations preferentially) with strong label homophily (papers
//! cite their own field ~80% of the time) and class-indicative bag-of-words
//! features. The generator reproduces all three so that the six GNN models
//! genuinely learn, at exactly the node/edge/feature/class scale of Table I.

use std::collections::HashSet;

use gnn_graph::Graph;
use gnn_tensor::NdArray;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::splits::planetoid_split;
use crate::types::NodeDataset;

/// Parameters of a citation-network dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CitationSpec {
    /// Dataset name.
    pub name: String,
    /// Number of nodes (documents).
    pub num_nodes: usize,
    /// Target number of undirected citation edges.
    pub target_edges: usize,
    /// Bag-of-words dimensionality.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training nodes per class (Planetoid convention).
    pub train_per_class: usize,
    /// Validation node count.
    pub num_val: usize,
    /// Test node count.
    pub num_test: usize,
    /// Probability that a citation stays within the citing paper's class.
    pub homophily: f64,
    /// Average number of active words per document.
    pub words_per_doc: usize,
    /// Probability an active word is drawn from the class's topic block
    /// rather than the full vocabulary.
    pub topic_purity: f64,
    /// Fraction of node labels flipped to a random other class. Real
    /// citation labels are noisy (inter-annotator disagreement, papers
    /// spanning fields); this keeps test accuracies in the realistic band
    /// instead of saturating.
    pub label_noise: f64,
}

impl CitationSpec {
    /// The Cora stand-in: 2708 nodes, 5429 edges, 1433 features, 7 classes,
    /// 140/500/1000 split.
    pub fn cora() -> Self {
        CitationSpec {
            name: "Cora".into(),
            num_nodes: 2708,
            target_edges: 5429,
            feature_dim: 1433,
            num_classes: 7,
            train_per_class: 20,
            num_val: 500,
            num_test: 1000,
            homophily: 0.81,
            words_per_doc: 18,
            topic_purity: 0.55,
            label_noise: 0.12,
        }
    }

    /// The PubMed stand-in: 19717 nodes, 44338 edges, 500 features,
    /// 3 classes, 60/500/1000 split.
    pub fn pubmed() -> Self {
        CitationSpec {
            name: "PubMed".into(),
            num_nodes: 19717,
            target_edges: 44338,
            feature_dim: 500,
            num_classes: 3,
            train_per_class: 20,
            num_val: 500,
            num_test: 1000,
            homophily: 0.80,
            words_per_doc: 50,
            topic_purity: 0.45,
            label_noise: 0.14,
        }
    }

    /// Proportionally shrinks node/edge/split counts by `factor` for
    /// laptop-scale runs (feature and class counts are preserved).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor {factor} out of (0, 1]"
        );
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        self.num_nodes = scale(self.num_nodes);
        self.target_edges = scale(self.target_edges);
        self.num_val = scale(self.num_val);
        self.num_test = scale(self.num_test);
        // Keep enough nodes for the fixed-count splits plus slack so every
        // class can fill its training quota.
        let floor = self.num_classes * (self.train_per_class + 8) + self.num_val + self.num_test;
        self.num_nodes = self.num_nodes.max(floor);
        self
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> NodeDataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC17A_7104);
        let n = self.num_nodes;
        let labels: Vec<u32> = (0..n)
            .map(|_| rng.gen_range(0..self.num_classes as u32))
            .collect();

        let graph = self.generate_graph(&labels, &mut rng);
        let features = self.generate_features(&labels, &mut rng);
        // Label noise is applied after topology/features so the graph keeps
        // its homophilous structure around the *true* classes.
        let mut labels = labels;
        for l in labels.iter_mut() {
            if rng.gen_bool(self.label_noise) {
                *l = rng.gen_range(0..self.num_classes as u32);
            }
        }
        let (train_idx, val_idx, test_idx) = planetoid_split(
            &labels,
            self.train_per_class,
            self.num_val,
            self.num_test,
            seed ^ 0x5911_7000,
        );

        NodeDataset {
            name: self.name.clone(),
            graph,
            features,
            labels,
            num_classes: self.num_classes,
            train_idx,
            val_idx,
            test_idx,
        }
    }

    /// Homophilous preferential attachment, then symmetrization.
    fn generate_graph(&self, labels: &[u32], rng: &mut StdRng) -> Graph {
        let n = self.num_nodes;
        let m = self.target_edges as f64 / n as f64;
        // Degree-proportional sampling via endpoint lists, one per class and
        // one global.
        let mut class_endpoints: Vec<Vec<u32>> = vec![Vec::new(); self.num_classes];
        let mut all_endpoints: Vec<u32> = Vec::with_capacity(self.target_edges * 2);
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(self.target_edges);
        let mut src = Vec::with_capacity(self.target_edges * 2);
        let mut dst = Vec::with_capacity(self.target_edges * 2);

        for i in 0..n as u32 {
            let c = labels[i as usize] as usize;
            let edges_here =
                m.floor() as usize + usize::from(rng.gen_bool(m.fract().clamp(0.0, 1.0)));
            for _ in 0..edges_here.max(if i > 0 { 1 } else { 0 }) {
                let target = self.pick_target(i, c, &class_endpoints, &all_endpoints, rng);
                let Some(t) = target else { continue };
                let key = if i < t { (i, t) } else { (t, i) };
                if i == t || !seen.insert(key) {
                    continue;
                }
                src.push(i);
                dst.push(t);
                // Update degree-proportional pools.
                all_endpoints.push(i);
                all_endpoints.push(t);
                class_endpoints[c].push(i);
                class_endpoints[labels[t as usize] as usize].push(t);
            }
            // Seed pools so early nodes are reachable even before any edge.
            class_endpoints[c].push(i);
            all_endpoints.push(i);
        }

        // Store both directions for message passing.
        let mut full_src = src.clone();
        let mut full_dst = dst.clone();
        full_src.extend_from_slice(&dst);
        full_dst.extend_from_slice(&src);
        Graph::new(n, full_src, full_dst)
    }

    fn pick_target(
        &self,
        node: u32,
        class: usize,
        class_endpoints: &[Vec<u32>],
        all_endpoints: &[u32],
        rng: &mut StdRng,
    ) -> Option<u32> {
        for _ in 0..8 {
            let pool = if rng.gen_bool(self.homophily) {
                &class_endpoints[class]
            } else {
                all_endpoints
            };
            if pool.is_empty() {
                return None;
            }
            let cand = pool[rng.gen_range(0..pool.len())];
            if cand != node {
                return Some(cand);
            }
        }
        None
    }

    /// Sparse class-indicative bag of words, row-normalized.
    fn generate_features(&self, labels: &[u32], rng: &mut StdRng) -> NdArray {
        let f = self.feature_dim;
        let block = f / self.num_classes;
        let mut feats = NdArray::zeros(labels.len(), f);
        for (i, &label) in labels.iter().enumerate() {
            let c = label as usize;
            let row = feats.row_mut(i);
            let mut active = 0usize;
            for _ in 0..self.words_per_doc {
                let w = if rng.gen_bool(self.topic_purity) {
                    c * block + rng.gen_range(0..block)
                } else {
                    rng.gen_range(0..f)
                };
                if row[w] == 0.0 {
                    active += 1;
                }
                row[w] = 1.0;
            }
            let inv = 1.0 / active.max(1) as f32;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        feats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_matches_table1_scale() {
        let ds = CitationSpec::cora().generate(0);
        let stats = ds.stats();
        assert_eq!(stats.num_graphs, 1);
        assert_eq!(stats.avg_nodes, 2708.0);
        assert_eq!(stats.feature_dim, 1433);
        assert_eq!(stats.num_classes, 7);
        // Edge count within 5% of the 5429 target (dedup loses a few).
        assert!(
            (stats.avg_edges - 5429.0).abs() / 5429.0 < 0.05,
            "edges = {}",
            stats.avg_edges
        );
        assert_eq!(ds.train_idx.len(), 140);
        assert_eq!(ds.val_idx.len(), 500);
        assert_eq!(ds.test_idx.len(), 1000);
    }

    #[test]
    fn graph_is_symmetric() {
        let ds = CitationSpec::cora().scaled(0.2).generate(1);
        let set: HashSet<(u32, u32)> = ds.graph.edges().collect();
        for &(s, d) in &set {
            assert!(set.contains(&(d, s)), "missing reverse of ({s},{d})");
        }
    }

    #[test]
    fn homophily_is_high() {
        let ds = CitationSpec::cora().scaled(0.5).generate(2);
        let same = ds
            .graph
            .edges()
            .filter(|&(s, d)| ds.labels[s as usize] == ds.labels[d as usize])
            .count();
        let frac = same as f64 / ds.graph.num_edges() as f64;
        // Measured against the *noisy* labels: 0.81 structural homophily
        // attenuated by ~12% label flips on each endpoint.
        assert!(frac > 0.6, "homophily {frac} too low for citation stand-in");
    }

    #[test]
    fn features_are_class_indicative() {
        let ds = CitationSpec::cora().scaled(0.2).generate(3);
        let block = 1433 / 7;
        // Average in-block mass must dominate 1/num_classes.
        let mut in_block = 0.0f64;
        for (i, &l) in ds.labels.iter().enumerate() {
            let row = ds.features.row(i);
            let c = l as usize;
            in_block += row[c * block..(c + 1) * block].iter().sum::<f32>() as f64;
        }
        let frac = in_block / ds.labels.len() as f64; // rows are normalized to sum 1
        assert!(frac > 0.5, "topic purity {frac} too low");
    }

    #[test]
    fn rows_are_normalized() {
        let ds = CitationSpec::pubmed().scaled(0.05).generate(4);
        for i in 0..ds.labels.len() {
            let s: f32 = ds.features.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {i} sums to {s}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CitationSpec::cora().scaled(0.1).generate(7);
        let b = CitationSpec::cora().scaled(0.1).generate(7);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        let c = CitationSpec::cora().scaled(0.1).generate(8);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn scaled_keeps_feature_and_class_dims() {
        let s = CitationSpec::pubmed().scaled(0.1);
        assert_eq!(s.feature_dim, 500);
        assert_eq!(s.num_classes, 3);
        assert!(s.num_nodes < 3000);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn bad_scale_panics() {
        CitationSpec::cora().scaled(0.0);
    }
}
