//! Stratified splits.
//!
//! The paper uses fixed train/val/test node counts for Cora/PubMed (the
//! Planetoid convention) and stratified 10-fold cross-validation with an
//! 8:1:1 ratio for ENZYMES/DD.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One cross-validation fold: index lists into the sample array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training sample indices.
    pub train: Vec<u32>,
    /// Validation sample indices.
    pub val: Vec<u32>,
    /// Test sample indices.
    pub test: Vec<u32>,
}

/// Stratified k-fold split with an `(k-2):1:1` train/val/test ratio per fold
/// (8:1:1 for `k = 10`, the paper's setting).
///
/// Samples of each class are shuffled (deterministically from `seed`) and
/// dealt into `k` buckets; fold `i` uses bucket `i` as test, bucket
/// `(i + 1) % k` as validation, and the rest as training. Class proportions
/// are preserved to within one sample per bucket.
///
/// # Panics
///
/// Panics if `k < 3` or any class has fewer than `k` samples.
pub fn stratified_kfold(labels: &[u32], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 3, "need k >= 3 for train/val/test folds");
    let num_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut rng = StdRng::seed_from_u64(seed);

    // Deal each class into k buckets.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); k];
    for c in 0..num_classes as u32 {
        let mut members: Vec<u32> = labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| i as u32)
            .collect();
        assert!(
            members.len() >= k,
            "class {c} has {} samples, fewer than k = {k}",
            members.len()
        );
        members.shuffle(&mut rng);
        for (j, idx) in members.into_iter().enumerate() {
            buckets[j % k].push(idx);
        }
    }

    (0..k)
        .map(|i| {
            let val_bucket = (i + 1) % k;
            let mut train = Vec::new();
            for (j, b) in buckets.iter().enumerate() {
                if j != i && j != val_bucket {
                    train.extend_from_slice(b);
                }
            }
            Fold {
                train,
                val: buckets[val_bucket].clone(),
                test: buckets[i].clone(),
            }
        })
        .collect()
}

/// Planetoid-style fixed-count split: the first `train_per_class` nodes of
/// each class (in shuffled order) train; the next `num_val` and `num_test`
/// nodes overall validate and test.
///
/// # Panics
///
/// Panics if the dataset is too small for the requested counts.
pub fn planetoid_split(
    labels: &[u32],
    train_per_class: usize,
    num_val: usize,
    num_test: usize,
    seed: u64,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let num_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..labels.len() as u32).collect();
    order.shuffle(&mut rng);

    let mut taken = vec![false; labels.len()];
    let mut train = Vec::with_capacity(train_per_class * num_classes);
    let mut per_class = vec![0usize; num_classes];
    for &i in &order {
        let c = labels[i as usize] as usize;
        if per_class[c] < train_per_class {
            per_class[c] += 1;
            taken[i as usize] = true;
            train.push(i);
        }
    }
    assert!(
        per_class.iter().all(|&n| n == train_per_class),
        "not enough samples per class for {train_per_class} training nodes"
    );
    let mut rest = order.into_iter().filter(|&i| !taken[i as usize]);
    let val: Vec<u32> = rest.by_ref().take(num_val).collect();
    let test: Vec<u32> = rest.take(num_test).collect();
    assert_eq!(val.len(), num_val, "not enough nodes for validation split");
    assert_eq!(test.len(), num_test, "not enough nodes for test split");
    (train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn labels() -> Vec<u32> {
        // 3 classes x 20 samples
        (0..60).map(|i| (i % 3) as u32).collect()
    }

    #[test]
    fn folds_partition_and_are_disjoint() {
        let l = labels();
        let folds = stratified_kfold(&l, 10, 1);
        assert_eq!(folds.len(), 10);
        for f in &folds {
            let all: Vec<u32> = f
                .train
                .iter()
                .chain(&f.val)
                .chain(&f.test)
                .copied()
                .collect();
            let set: HashSet<u32> = all.iter().copied().collect();
            assert_eq!(
                set.len(),
                l.len(),
                "train/val/test must partition the dataset"
            );
            assert_eq!(f.train.len(), 48);
            assert_eq!(f.val.len(), 6);
            assert_eq!(f.test.len(), 6);
        }
    }

    #[test]
    fn folds_are_stratified() {
        let l = labels();
        for f in stratified_kfold(&l, 10, 2) {
            for c in 0..3u32 {
                let count = f.test.iter().filter(|&&i| l[i as usize] == c).count();
                assert_eq!(count, 2, "each class contributes equally to each test fold");
            }
        }
    }

    #[test]
    fn test_folds_cover_everything_exactly_once() {
        let l = labels();
        let folds = stratified_kfold(&l, 10, 3);
        let mut seen: Vec<u32> = folds.iter().flat_map(|f| f.test.iter().copied()).collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..60).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn kfold_deterministic_per_seed() {
        let l = labels();
        assert_eq!(stratified_kfold(&l, 5, 9), stratified_kfold(&l, 5, 9));
        assert_ne!(stratified_kfold(&l, 5, 9), stratified_kfold(&l, 5, 10));
    }

    #[test]
    fn planetoid_split_counts() {
        let l: Vec<u32> = (0..2000).map(|i| (i % 7) as u32).collect();
        let (train, val, test) = planetoid_split(&l, 20, 500, 1000, 0);
        assert_eq!(train.len(), 140);
        assert_eq!(val.len(), 500);
        assert_eq!(test.len(), 1000);
        let set: HashSet<u32> = train.iter().chain(&val).chain(&test).copied().collect();
        assert_eq!(set.len(), 1640, "splits must be disjoint");
        for c in 0..7u32 {
            assert_eq!(train.iter().filter(|&&i| l[i as usize] == c).count(), 20);
        }
    }

    #[test]
    #[should_panic(expected = "fewer than k")]
    fn tiny_class_rejected() {
        let l = vec![0, 0, 0, 1];
        stratified_kfold(&l, 3, 0);
    }
}
