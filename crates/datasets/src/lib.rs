//! # gnn-datasets
//!
//! Synthetic stand-ins for the five datasets of the GNN framework
//! performance study, statistically matched to the paper's Table I:
//!
//! | Dataset | #Graph | #Nodes (avg) | #Edges (avg) | #Feature | #Classes |
//! |---------|--------|--------------|--------------|----------|----------|
//! | Cora    | 1      | 2708         | 5429         | 1433     | 7        |
//! | PubMed  | 1      | 19717        | 44338        | 500      | 3        |
//! | ENZYMES | 600    | 32.63        | 62.14        | 18       | 6        |
//! | MNIST   | 70000  | 70.57        | 564.53       | 1        | 10       |
//! | DD      | 1178   | 284.32       | 715.66       | 89       | 2        |
//!
//! The real datasets are not reproducible byte-for-byte in this environment
//! (and do not need to be — the paper's performance results depend on
//! dataset *scale and shape*), so each generator matches node/edge/feature/
//! class counts and plants a class-correlated signal in the features so the
//! six models genuinely learn. Every generator is deterministic given a
//! seed, and every spec has a `scaled(f)` knob for laptop-scale runs.
//!
//! # Example
//!
//! ```
//! use gnn_datasets::citation::CitationSpec;
//!
//! let cora = CitationSpec::cora().scaled(0.1).generate(42);
//! assert_eq!(cora.num_classes, 7);
//! assert_eq!(cora.features.cols(), 1433);
//! ```

mod randn;

pub mod citation;
pub mod sbm;
pub mod splits;
pub mod superpixel;
pub mod tud;
pub mod types;

pub use citation::CitationSpec;
pub use sbm::SbmSpec;
pub use splits::{stratified_kfold, Fold};
pub use superpixel::SuperpixelSpec;
pub use tud::TudSpec;
pub use types::{DatasetStats, GraphDataset, GraphSample, NodeDataset};
