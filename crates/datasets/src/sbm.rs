//! Stochastic-block-model community datasets.
//!
//! The benchmarking suite the paper's DGL implementations come from
//! (Dwivedi et al.) complements the feature-dominant citation datasets with
//! structure-dominant SBM tasks (PATTERN/CLUSTER): communities are encoded
//! almost entirely in the topology, with weak or absent node features, so a
//! model must actually use message passing to solve them. This generator
//! provides the same regime as a [`NodeDataset`], which makes it a useful
//! sanity check that a GNN implementation aggregates at all (an MLP on
//! features alone stays near chance).

use gnn_graph::Graph;
use gnn_tensor::NdArray;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::splits::planetoid_split;
use crate::types::NodeDataset;

/// Parameters of an SBM community-detection dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SbmSpec {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of communities (classes).
    pub num_blocks: usize,
    /// Expected intra-community degree.
    pub intra_degree: f64,
    /// Expected inter-community degree.
    pub inter_degree: f64,
    /// Node feature dimension.
    pub feature_dim: usize,
    /// Fraction of nodes whose feature weakly hints their community
    /// (CLUSTER-style sparse seeding); the rest get pure noise.
    pub seed_fraction: f64,
    /// Training nodes per class.
    pub train_per_class: usize,
    /// Validation node count.
    pub num_val: usize,
    /// Test node count.
    pub num_test: usize,
}

impl SbmSpec {
    /// A CLUSTER-like default: 6 communities, strong structure, 20% seeded
    /// features.
    pub fn cluster() -> Self {
        SbmSpec {
            num_nodes: 1200,
            num_blocks: 6,
            intra_degree: 14.0,
            inter_degree: 2.5,
            feature_dim: 8,
            seed_fraction: 0.2,
            train_per_class: 30,
            num_val: 200,
            num_test: 400,
        }
    }

    /// Shrinks node and split counts by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor {factor} out of (0, 1]"
        );
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        self.num_nodes = scale(self.num_nodes);
        self.num_val = scale(self.num_val);
        self.num_test = scale(self.num_test);
        let floor = self.num_blocks * (self.train_per_class + 8) + self.num_val + self.num_test;
        self.num_nodes = self.num_nodes.max(floor);
        self
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0`.
    pub fn generate(&self, seed: u64) -> NodeDataset {
        assert!(self.num_blocks > 0, "need at least one block");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5B31_0000);
        let n = self.num_nodes;
        let labels: Vec<u32> = (0..n).map(|i| (i % self.num_blocks) as u32).collect();

        // Bernoulli edges with p_intra / p_inter tuned to the expected
        // degrees. Sampling via geometric skips keeps this O(E).
        let p_intra = (self.intra_degree / (n as f64 / self.num_blocks as f64)).min(1.0);
        let p_inter = (self.inter_degree
            / (n as f64 * (self.num_blocks - 1).max(1) as f64 / self.num_blocks as f64))
            .min(1.0);
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                let p = if labels[i as usize] == labels[j as usize] {
                    p_intra
                } else {
                    p_inter
                };
                if rng.gen_bool(p) {
                    src.push(i);
                    dst.push(j);
                    src.push(j);
                    dst.push(i);
                }
            }
        }
        let graph = Graph::new(n, src, dst);

        // Features: mostly uniform noise; a seeded minority get a one-hot
        // community hint in the leading columns.
        let mut features = NdArray::zeros(n, self.feature_dim);
        for (i, &label) in labels.iter().enumerate().take(n) {
            for c in 0..self.feature_dim {
                *features.at_mut(i, c) = rng.gen_range(-0.5..0.5);
            }
            if rng.gen_bool(self.seed_fraction) {
                let hint = label as usize % self.feature_dim;
                *features.at_mut(i, hint) += 2.0;
            }
        }

        let (train_idx, val_idx, test_idx) = planetoid_split(
            &labels,
            self.train_per_class,
            self.num_val,
            self.num_test,
            seed ^ 0x5B31_0001,
        );
        NodeDataset {
            name: "SBM-CLUSTER".into(),
            graph,
            features,
            labels,
            num_classes: self.num_blocks,
            train_idx,
            val_idx,
            test_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_match_spec() {
        let spec = SbmSpec::cluster().scaled(0.5);
        let ds = spec.generate(0);
        let n = ds.graph.num_nodes() as f64;
        let mean_deg = ds.graph.num_edges() as f64 / n;
        let expect = spec.intra_degree + spec.inter_degree;
        assert!(
            (mean_deg - expect).abs() / expect < 0.15,
            "mean degree {mean_deg} vs expected {expect}"
        );
    }

    #[test]
    fn structure_is_assortative() {
        let ds = SbmSpec::cluster().scaled(0.5).generate(1);
        let same = ds
            .graph
            .edges()
            .filter(|&(s, d)| ds.labels[s as usize] == ds.labels[d as usize])
            .count();
        let frac = same as f64 / ds.graph.num_edges() as f64;
        assert!(frac > 0.7, "intra-community edge fraction {frac}");
    }

    #[test]
    fn features_alone_are_weak() {
        // Only the seeded minority carries any feature signal: a feature-only
        // predictor (argmax over the hint columns) must stay far from the
        // structural ceiling.
        let spec = SbmSpec::cluster().scaled(0.5);
        let ds = spec.generate(2);
        let mut correct = 0usize;
        for i in 0..ds.graph.num_nodes() {
            let row = ds.features.row(i);
            let pred = row
                .iter()
                .take(spec.num_blocks)
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if pred == ds.labels[i] as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.graph.num_nodes() as f64;
        assert!(
            acc < 0.5,
            "feature-only accuracy {acc} too high for an SBM task"
        );
    }

    #[test]
    fn deterministic_and_split_sized() {
        let a = SbmSpec::cluster().scaled(0.3).generate(7);
        let b = SbmSpec::cluster().scaled(0.3).generate(7);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.train_idx.len(), 6 * 30);
    }
}
