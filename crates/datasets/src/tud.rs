//! TU-style graph-classification generators (ENZYMES / DD stand-ins).
//!
//! Each sample is a connected small graph (a ring backbone plus random
//! chords up to a class-modulated target degree) whose node features carry a
//! class-dependent signal: continuous class-mean-shifted attributes for
//! ENZYMES (18-dim protein secondary-structure attributes in the original),
//! and a class-dependent categorical distribution over one-hot types for DD
//! (89 amino-acid types in the original).

use std::collections::HashSet;

use gnn_graph::Graph;
use gnn_tensor::NdArray;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::randn::{lognormal, randn};
use crate::types::{GraphDataset, GraphSample};

/// How node features encode the class signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureKind {
    /// Continuous attributes: class mean direction + unit Gaussian noise.
    Continuous {
        /// Distance between class means (higher = easier).
        class_sep: f32,
    },
    /// One-hot categorical types with a class-dependent distribution.
    OneHot {
        /// Fraction of probability mass concentrated on the class's
        /// preferred band of types.
        band_mass: f64,
    },
}

/// Parameters of a TU-style dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TudSpec {
    /// Dataset name.
    pub name: String,
    /// Number of graphs.
    pub num_graphs: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Log-space mean of the node-count distribution.
    pub nodes_log_mean: f32,
    /// Log-space deviation of the node-count distribution.
    pub nodes_log_sigma: f32,
    /// Minimum and maximum node counts (inclusive).
    pub nodes_range: (usize, usize),
    /// Target average (undirected) degree.
    pub avg_degree: f32,
    /// Node feature dimension.
    pub feature_dim: usize,
    /// Feature generation mode.
    pub feature_kind: FeatureKind,
    /// Fraction of graph labels flipped to a random other class (real TU
    /// labels are noisy; keeps accuracies in the paper's band instead of
    /// saturating).
    pub label_noise: f64,
}

impl TudSpec {
    /// The ENZYMES stand-in: 600 graphs, 6 classes, ~32.6 nodes and ~62
    /// undirected edges per graph, 18 continuous attributes.
    pub fn enzymes() -> Self {
        TudSpec {
            name: "ENZYMES".into(),
            num_graphs: 600,
            num_classes: 6,
            nodes_log_mean: 28.0f32.ln(),
            nodes_log_sigma: 0.55,
            nodes_range: (2, 126),
            avg_degree: 3.81,
            feature_dim: 18,
            feature_kind: FeatureKind::Continuous { class_sep: 0.30 },
            label_noise: 0.25,
        }
    }

    /// The DD stand-in: 1178 graphs, 2 classes, ~284 nodes and ~716
    /// undirected edges per graph, 89 one-hot types.
    ///
    /// The original DD's largest protein has 5748 nodes; we cap at 1500 to
    /// keep single-core runs tractable (documented substitution — the tail
    /// barely moves the averages the performance results depend on).
    pub fn dd() -> Self {
        TudSpec {
            name: "DD".into(),
            num_graphs: 1178,
            num_classes: 2,
            nodes_log_mean: 250.0f32.ln(),
            nodes_log_sigma: 0.50,
            nodes_range: (30, 1500),
            avg_degree: 5.03,
            feature_dim: 89,
            feature_kind: FeatureKind::OneHot { band_mass: 0.22 },
            label_noise: 0.18,
        }
    }

    /// Shrinks the number of graphs by `factor` (per-graph sizes preserved).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor {factor} out of (0, 1]"
        );
        self.num_graphs =
            ((self.num_graphs as f64 * factor).round() as usize).max(self.num_classes * 12);
        self
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> GraphDataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70D0_0000);
        let samples = (0..self.num_graphs)
            .map(|i| {
                let true_label = (i % self.num_classes) as u32;
                let mut sample = self.generate_sample(true_label, &mut rng);
                if rng.gen_bool(self.label_noise) {
                    sample.label = rng.gen_range(0..self.num_classes as u32);
                }
                sample
            })
            .collect();
        GraphDataset {
            name: self.name.clone(),
            samples,
            num_classes: self.num_classes,
            feature_dim: self.feature_dim,
            directed_edge_stats: false,
        }
    }

    fn generate_sample(&self, label: u32, rng: &mut StdRng) -> GraphSample {
        let n = (lognormal(rng, self.nodes_log_mean, self.nodes_log_sigma).round() as usize)
            .clamp(self.nodes_range.0, self.nodes_range.1);
        // Classes modulate density slightly (±8% across the class range), a
        // weak structural signal on top of the feature signal.
        let class_factor = 1.0 + 0.08 * (label as f32 / self.num_classes.max(1) as f32 - 0.5);
        let graph = ring_with_chords(n, self.avg_degree * class_factor, rng);
        let features = self.generate_features(n, label, rng);
        GraphSample {
            graph,
            features,
            label,
        }
    }

    fn generate_features(&self, n: usize, label: u32, rng: &mut StdRng) -> NdArray {
        let f = self.feature_dim;
        let mut feats = NdArray::zeros(n, f);
        match self.feature_kind {
            FeatureKind::Continuous { class_sep } => {
                // Class mean: deterministic pseudo-orthogonal direction.
                let mut mean = vec![0.0f32; f];
                let mut h = (u64::from(label) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for m in mean.iter_mut() {
                    h ^= h << 13;
                    h ^= h >> 7;
                    h ^= h << 17;
                    *m = ((h % 2000) as f32 / 1000.0 - 1.0) * class_sep;
                }
                for i in 0..n {
                    let row = feats.row_mut(i);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = mean[j] + randn(rng);
                    }
                }
            }
            FeatureKind::OneHot { band_mass } => {
                let band = f / self.num_classes.max(1);
                let start = label as usize * band;
                for i in 0..n {
                    let t = if rng.gen_bool(band_mass) {
                        start + rng.gen_range(0..band)
                    } else {
                        rng.gen_range(0..f)
                    };
                    *feats.at_mut(i, t) = 1.0;
                }
            }
        }
        feats
    }
}

/// A connected ring of `n` nodes plus random chords to reach the target
/// average undirected degree, stored symmetrically.
fn ring_with_chords(n: usize, avg_degree: f32, rng: &mut StdRng) -> Graph {
    if n == 1 {
        return Graph::from_edges(1, &[]);
    }
    let target_pairs = ((n as f32 * avg_degree / 2.0).round() as usize).max(n - 1);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target_pairs);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(target_pairs);
    // Ring backbone: connected, degree 2.
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        let key = if i < j { (i, j) } else { (j, i) };
        if (n > 2 || i < j) && seen.insert(key) {
            pairs.push(key);
        }
    }
    // Random chords.
    let mut attempts = 0;
    while pairs.len() < target_pairs && attempts < target_pairs * 20 {
        attempts += 1;
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if seen.insert(key) {
            pairs.push(key);
        }
    }
    let mut src = Vec::with_capacity(pairs.len() * 2);
    let mut dst = Vec::with_capacity(pairs.len() * 2);
    for (a, b) in pairs {
        src.push(a);
        dst.push(b);
        src.push(b);
        dst.push(a);
    }
    Graph::new(n, src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enzymes_matches_table1_shape() {
        let ds = TudSpec::enzymes().generate(0);
        let s = ds.stats();
        assert_eq!(s.num_graphs, 600);
        assert_eq!(s.feature_dim, 18);
        assert_eq!(s.num_classes, 6);
        assert!(
            (s.avg_nodes - 32.63).abs() < 6.0,
            "avg nodes {} not near 32.63",
            s.avg_nodes
        );
        assert!(
            (s.avg_edges - 62.14).abs() / 62.14 < 0.25,
            "avg edges {} not near 62.14",
            s.avg_edges
        );
        // Node-size range respected.
        for smp in &ds.samples {
            assert!((2..=126).contains(&smp.graph.num_nodes()));
        }
    }

    #[test]
    fn dd_matches_table1_shape() {
        let ds = TudSpec::dd().scaled(0.2).generate(1);
        let s = ds.stats();
        assert_eq!(s.feature_dim, 89);
        assert_eq!(s.num_classes, 2);
        assert!(
            (s.avg_nodes - 284.32).abs() / 284.32 < 0.25,
            "avg nodes {} not near 284",
            s.avg_nodes
        );
        assert!(
            (s.avg_edges - 715.66).abs() / 715.66 < 0.3,
            "avg edges {} not near 716",
            s.avg_edges
        );
    }

    #[test]
    fn labels_are_roughly_balanced() {
        // Label noise (25%) redistributes a uniform base: every class stays
        // within a generous band of the balanced count.
        let ds = TudSpec::enzymes().scaled(0.5).generate(2);
        let labels = ds.labels();
        let expect = labels.len() / 6;
        for c in 0..6u32 {
            let count = labels.iter().filter(|&&l| l == c).count();
            assert!(
                count as f64 > expect as f64 * 0.6 && (count as f64) < expect as f64 * 1.4,
                "class {c}: {count} vs balanced {expect}"
            );
        }
    }

    #[test]
    fn one_hot_rows_have_single_one() {
        let ds = TudSpec::dd().scaled(0.05).generate(3);
        for smp in ds.samples.iter().take(5) {
            for r in 0..smp.graph.num_nodes() {
                let row = smp.features.row(r);
                assert_eq!(row.iter().filter(|&&v| v == 1.0).count(), 1);
                assert_eq!(row.iter().filter(|&&v| v != 0.0).count(), 1);
            }
        }
    }

    #[test]
    fn graphs_are_symmetric_and_connected_backbone() {
        let ds = TudSpec::enzymes().scaled(0.1).generate(4);
        for smp in ds.samples.iter().take(10) {
            let set: HashSet<(u32, u32)> = smp.graph.edges().collect();
            for &(s, d) in &set {
                assert!(set.contains(&(d, s)));
            }
            // Ring backbone: every node has degree >= 2 when n > 2.
            if smp.graph.num_nodes() > 2 {
                assert!(smp.graph.in_degrees().iter().all(|&d| d >= 2));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TudSpec::enzymes().scaled(0.1).generate(9);
        let b = TudSpec::enzymes().scaled(0.1).generate(9);
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.features, y.features);
        }
    }

    #[test]
    fn continuous_features_separate_classes() {
        let ds = TudSpec::enzymes().scaled(0.2).generate(5);
        // Mean feature vectors of two classes should differ clearly.
        let mean_of = |class: u32| -> Vec<f32> {
            let mut acc = [0.0f32; 18];
            let mut count = 0usize;
            for s in ds.samples.iter().filter(|s| s.label == class) {
                for r in 0..s.graph.num_nodes() {
                    for (a, &v) in acc.iter_mut().zip(s.features.row(r)) {
                        *a += v;
                    }
                }
                count += s.graph.num_nodes();
            }
            acc.iter().map(|&v| v / count as f32).collect()
        };
        let m0 = mean_of(0);
        let m1 = mean_of(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        // class_sep 0.30 over 18 dims gives a mean distance around 0.7;
        // anything clearly above pooled noise (~0.2) shows the signal exists.
        assert!(dist > 0.4, "class means too close: {dist}");
    }
}
