//! MNIST-superpixel stand-in generator.
//!
//! The paper converts MNIST images to graphs with SLIC superpixels: ~71
//! regions per image, each connected to its 8 nearest neighbours (Table I's
//! 564.53 avg edges ≈ 8 × 70.57 directed k-NN edges), with a single
//! intensity feature per node.
//!
//! Without the MNIST images, we synthesize the same *graph population*: each
//! class defines an oriented sinusoidal intensity field ("stroke pattern");
//! superpixel centres are sampled in the unit square, take their intensity
//! from the class field, and are wired by 8-NN over their positions. The
//! class is recoverable from (intensity, neighbourhood) exactly as in the
//! real data, and node/edge/feature counts match Table I.

use gnn_tensor::NdArray;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::randn::randn;
use crate::types::{GraphDataset, GraphSample};

/// Parameters of the MNIST-superpixel stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperpixelSpec {
    /// Number of graphs (70000 in the paper; scale down for laptop runs).
    pub num_graphs: usize,
    /// Number of classes (digits).
    pub num_classes: usize,
    /// Mean number of superpixels per image.
    pub avg_nodes: f32,
    /// Standard deviation of the superpixel count.
    pub nodes_sigma: f32,
    /// Neighbours per node in the k-NN graph.
    pub k: usize,
    /// Pixel-intensity noise level.
    pub noise: f32,
}

impl SuperpixelSpec {
    /// The MNIST stand-in at full Table I scale.
    pub fn mnist() -> Self {
        SuperpixelSpec {
            num_graphs: 70_000,
            num_classes: 10,
            avg_nodes: 70.57,
            nodes_sigma: 4.0,
            k: 8,
            noise: 0.3,
        }
    }

    /// Shrinks the number of graphs by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor {factor} out of (0, 1]"
        );
        self.num_graphs =
            ((self.num_graphs as f64 * factor).round() as usize).max(self.num_classes * 4);
        self
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> GraphDataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5091_ACE1);
        let samples = (0..self.num_graphs)
            .map(|i| {
                let label = (i % self.num_classes) as u32;
                self.generate_sample(label, &mut rng)
            })
            .collect();
        GraphDataset {
            name: "MNIST".into(),
            samples,
            num_classes: self.num_classes,
            feature_dim: 1,
            directed_edge_stats: true,
        }
    }

    fn generate_sample(&self, label: u32, rng: &mut StdRng) -> GraphSample {
        let n = ((self.avg_nodes + self.nodes_sigma * randn(rng)).round() as usize)
            .clamp(self.k + 2, 120);
        // Superpixel centres in the unit square.
        let mut points = Vec::with_capacity(n * 2);
        for _ in 0..n {
            points.push(rng.gen::<f32>());
            points.push(rng.gen::<f32>());
        }
        // Class-specific oriented sinusoidal stroke field.
        let c = label as f32;
        let angle = c * std::f32::consts::PI / self.num_classes as f32;
        let freq = 2.0 + (label % 5) as f32;
        let phase = c * 0.7;
        let (sin_a, cos_a) = angle.sin_cos();
        let mut features = NdArray::zeros(n, 1);
        for i in 0..n {
            let (x, y) = (points[2 * i], points[2 * i + 1]);
            let u = cos_a * x + sin_a * y;
            let intensity = 0.5
                + 0.5 * (freq * std::f32::consts::TAU * u + phase).sin()
                + self.noise * randn(rng);
            *features.at_mut(i, 0) = intensity;
        }
        let graph = gnn_graph::knn_graph(&points, 2, self.k);
        GraphSample {
            graph,
            features,
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_matches_table1_shape() {
        let ds = SuperpixelSpec::mnist().scaled(0.005).generate(0);
        let s = ds.stats();
        assert_eq!(s.feature_dim, 1);
        assert_eq!(s.num_classes, 10);
        assert!(
            (s.avg_nodes - 70.57).abs() < 4.0,
            "avg nodes {}",
            s.avg_nodes
        );
        // 8-NN: directed edges ≈ 8 per node ≈ 564.5 per graph.
        assert!(
            (s.avg_edges - 564.53).abs() / 564.53 < 0.1,
            "avg edges {}",
            s.avg_edges
        );
    }

    #[test]
    fn full_spec_counts() {
        let s = SuperpixelSpec::mnist();
        assert_eq!(s.num_graphs, 70_000);
        assert_eq!(s.k, 8);
    }

    #[test]
    fn labels_cycle_through_digits() {
        let ds = SuperpixelSpec::mnist().scaled(0.001).generate(1);
        let labels = ds.labels();
        assert!(
            labels
                .iter()
                .copied()
                .collect::<std::collections::HashSet<_>>()
                .len()
                == 10
        );
    }

    #[test]
    fn intensity_fields_differ_between_classes() {
        let ds = SuperpixelSpec::mnist().scaled(0.002).generate(2);
        // Mean intensity variance across a class's nodes should be dominated
        // by the sinusoid (amplitude 0.5), i.e. clearly above the noise.
        let s0 = &ds.samples[0];
        let vals: Vec<f32> = (0..s0.graph.num_nodes())
            .map(|i| s0.features.at(i, 0))
            .collect();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        let var: f32 =
            vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
        assert!(var > 0.05, "intensity field degenerate: var = {var}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SuperpixelSpec::mnist().scaled(0.001).generate(5);
        let b = SuperpixelSpec::mnist().scaled(0.001).generate(5);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.features, y.features);
        }
    }
}
