//! Standard-normal sampling (Box–Muller).
//!
//! The allowed dependency list has `rand` but not `rand_distr`, so the few
//! places that need Gaussian noise use this minimal polar Box–Muller
//! transform.

use rand::Rng;

/// Draws one sample from N(0, 1).
pub(crate) fn randn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u: f32 = rng.gen_range(-1.0f32..1.0);
        let v: f32 = rng.gen_range(-1.0f32..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws from a log-normal with the given log-space mean and deviation.
pub(crate) fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f32, sigma: f32) -> f32 {
    (mu + sigma * randn(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples
            .iter()
            .map(|&s| (s - mean) * (s - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_with_expected_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mu = 28.0f32.ln();
        let sigma = 0.5;
        let samples: Vec<f32> = (0..n).map(|_| lognormal(&mut rng, mu, sigma)).collect();
        assert!(samples.iter().all(|&s| s > 0.0));
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let expected = 28.0 * (0.5f32 * sigma * sigma).exp();
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs {expected}"
        );
    }
}
