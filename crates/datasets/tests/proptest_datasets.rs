//! Property-based tests of dataset generation and splitting.

use gnn_datasets::{stratified_kfold, CitationSpec, TudSpec};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Stratified k-fold always partitions the sample set, for any label
    /// distribution with enough members per class.
    #[test]
    fn kfold_partitions_any_labelling(
        per_class in proptest::collection::vec(5usize..20, 2..5),
        k in 3usize..6,
        seed in 0u64..1000,
    ) {
        let labels: Vec<u32> = per_class
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| std::iter::repeat_n(c as u32, n * k))
            .collect();
        let folds = stratified_kfold(&labels, k, seed);
        prop_assert_eq!(folds.len(), k);
        for f in &folds {
            let mut seen = HashSet::new();
            for &i in f.train.iter().chain(&f.val).chain(&f.test) {
                prop_assert!(seen.insert(i), "index {} duplicated", i);
            }
            prop_assert_eq!(seen.len(), labels.len());
        }
        // Test folds tile the dataset exactly once.
        let mut all_test: Vec<u32> =
            folds.iter().flat_map(|f| f.test.iter().copied()).collect();
        all_test.sort_unstable();
        let expect: Vec<u32> = (0..labels.len() as u32).collect();
        prop_assert_eq!(all_test, expect);
    }

    /// Citation generation is deterministic in the seed and scale-invariant
    /// in feature/class dimensions; the split sizes always match the spec.
    #[test]
    fn citation_generator_wellformed(scale in 0.05f64..0.3, seed in 0u64..50) {
        let spec = CitationSpec::cora().scaled(scale);
        let ds = spec.generate(seed);
        prop_assert_eq!(ds.features.cols(), 1433);
        prop_assert_eq!(ds.num_classes, 7);
        prop_assert_eq!(ds.labels.len(), ds.graph.num_nodes());
        prop_assert_eq!(ds.features.rows(), ds.graph.num_nodes());
        prop_assert_eq!(ds.train_idx.len(), 140);
        // Splits are disjoint.
        let mut seen = HashSet::new();
        for &i in ds.train_idx.iter().chain(&ds.val_idx).chain(&ds.test_idx) {
            prop_assert!(seen.insert(i));
        }
        // Labels are in range; every class appears in training.
        prop_assert!(ds.labels.iter().all(|&l| l < 7));
        for c in 0..7u32 {
            prop_assert_eq!(
                ds.train_idx.iter().filter(|&&i| ds.labels[i as usize] == c).count(),
                20
            );
        }
        // Graph edges never dangle.
        let n = ds.graph.num_nodes();
        let edges_valid =
            ds.graph.edges().all(|(s, d)| (s as usize) < n && (d as usize) < n);
        prop_assert!(edges_valid, "dangling edge endpoint");
    }

    /// TU generation respects its node-range clamp and labels every graph
    /// within range.
    #[test]
    fn tud_generator_wellformed(scale in 0.05f64..0.25, seed in 0u64..50) {
        let ds = TudSpec::enzymes().scaled(scale).generate(seed);
        for s in &ds.samples {
            prop_assert!((2..=126).contains(&s.graph.num_nodes()));
            prop_assert!(s.label < 6);
            prop_assert_eq!(s.features.rows(), s.graph.num_nodes());
            prop_assert_eq!(s.features.cols(), 18);
        }
        // Determinism.
        let again = TudSpec::enzymes().scaled(scale).generate(seed);
        prop_assert_eq!(ds.samples.len(), again.samples.len());
        prop_assert_eq!(&ds.samples[0].graph, &again.samples[0].graph);
    }
}
