//! # gnn-core
//!
//! The study itself, as a library: experiment specifications for every
//! table and figure of "Performance Analysis of Graph Neural Network
//! Frameworks" (ISPASS 2021), runners that sweep datasets × models ×
//! frameworks, and plain-text report rendering matching the paper's
//! presentation.
//!
//! | Experiment | Content | Runner |
//! |---|---|---|
//! | Table I    | dataset statistics                          | [`runner::table1`] |
//! | Table IV   | node classification time + accuracy         | [`runner::table4`] |
//! | Table V    | graph classification time + accuracy        | [`runner::table5`] |
//! | Fig. 1/2   | epoch-time breakdown vs batch size           | [`runner::profile_sweep`] |
//! | Fig. 3     | layer-wise execution time of one batch       | [`runner::layer_times`] |
//! | Fig. 4/5   | peak memory and GPU utilization vs batch     | [`runner::profile_sweep`] |
//! | Fig. 6     | multi-GPU epoch time (GCN/GAT on MNIST)      | [`runner::multi_gpu`] |
//!
//! Every runner takes a [`RunConfig`] whose `quick()` preset keeps the full
//! experiment *structure* (all models, both frameworks) at laptop scale,
//! while `paper()` restores the paper's dataset sizes, epoch counts, seeds
//! and folds.
//!
//! # Example
//!
//! ```
//! use gnn_core::{runner, RunConfig};
//!
//! let rows = runner::table1(&RunConfig::smoke());
//! assert_eq!(rows.len(), 5); // Cora, PubMed, ENZYMES, MNIST, DD
//! ```

pub mod config;
pub mod experiments;
pub mod export;
pub mod report;
pub mod runner;
pub mod sweep;

pub use config::{
    ensure_artifact_dir, ensure_artifact_path, validate_artifact_dir, validate_artifact_path,
    ArtifactPathError, RunConfig, TraceConfig,
};
pub use report::render_table;
pub use sweep::{sweep, CellOutcome, CellStatus, SampleRow, SweepOutcome};
