//! The fault-isolated paper sweep: every Table IV/V cell under supervised
//! training, with per-cell outcome records.
//!
//! [`sweep`] runs the full (dataset × model × framework) grid — 24 node
//! cells (Cora/PubMed) plus 36 graph cells (ENZYMES/DD/MNIST), 60 in all —
//! through the supervised loops of `gnn_train::supervisor`. A failure in
//! one cell (a fault that survives retry and degradation, or a panic from
//! deeper in the stack) is caught, recorded as a [`CellOutcome`] with
//! status `failed`, and the sweep moves on to the remaining cells. Cells
//! that needed degradation (batch halved, world shrunk) finish with status
//! `degraded`; everything else is `ok`. Under the canonical fault plan
//! (`FaultPlan::canonical()`), every cell must end `ok` or `degraded` —
//! never `failed` — which is exactly what the CI chaos job asserts.
//!
//! When the config sets a checkpoint directory, every cell writes per-epoch
//! checkpoints there; a killed sweep re-run with `resume` restores each
//! cell from its file and reproduces the uninterrupted sweep's metrics
//! byte-for-byte (already-finished cells restore their recorded metrics
//! without retraining).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::rc::Rc;

use gnn_datasets::{stratified_kfold, CitationSpec, GraphDataset, NodeDataset};
use gnn_faults::FaultLog;
use gnn_models::adapt::{RglLoader, RustygLoader};
use gnn_models::{
    build, config::ALL_FRAMEWORKS, config::ALL_MODELS, graph_hparams, node_hparams, FrameworkKind,
    ModelKind,
};
use gnn_sample::{RmatGraph, SampleConfigError, SampleSpec, SamplerKind};
use gnn_train::supervisor::{
    run_graph_fold_supervised, run_node_task_supervised, run_sampled_task_supervised, Supervised,
    Supervisor, TrainError,
};
use gnn_train::{
    mean_std, FoldOutcome, GraphTaskConfig, NodeOutcome, NodeTaskConfig, SampledTaskConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::RunConfig;
use crate::runner::{mark_cell, GraphDs, Table4Row, Table5Row};

/// How one sweep cell ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Trained to completion with no degradation (transient faults may have
    /// been retried away).
    Ok,
    /// Finished, but a degradation policy fired (batch halved, data-parallel
    /// world shrunk): the result is valid but obtained under reduced
    /// conditions.
    Degraded,
    /// The cell could not complete; its error is in
    /// [`CellOutcome::detail`] and the sweep continued without it.
    Failed,
}

impl CellStatus {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Degraded => "degraded",
            CellStatus::Failed => "failed",
        }
    }
}

/// Per-cell record of the sweep: what ran, how it ended, what the injector
/// did to it.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Experiment the cell belongs to (`table4` / `table5`).
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Model.
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// How the cell ended.
    pub status: CellStatus,
    /// Error message (failed cells) or supervisor notes (degraded/retried
    /// cells); empty for clean cells.
    pub detail: String,
    /// Faults that fired while this cell ran, as `kind:detail` strings.
    pub faults: Vec<String>,
    /// Step retries the supervisor performed in this cell.
    pub retries: usize,
    /// Largest device-session allocator high-water mark (bytes) across the
    /// cell's runs/folds; 0 for failed cells. The static certifier's
    /// `peak_upper` must dominate this, which the conformance suite
    /// asserts.
    pub peak_memory: u64,
}

/// One completed sampled-training cell (giant-graph subsystem): SAGE
/// trained by neighbor-sampled mini-batches over a synthetic RMAT graph.
#[derive(Debug, Clone)]
pub struct SampleRow {
    /// `gnn_sample::SampleSpec` name (e.g. `rmat-1m`).
    pub spec: String,
    /// Sampler kind the loader used.
    pub sampler: SamplerKind,
    /// Model (the sweep trains SAGE — the GraphSAGE recipe).
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// Simulated seconds per epoch.
    pub epoch_time: f64,
    /// Simulated total training seconds.
    pub total_time: f64,
    /// Seed-node test accuracy over seeds, percent.
    pub acc: gnn_train::Summary,
    /// Lifetime feature-cache hit rate of the last run's loader.
    pub cache_hit_rate: f64,
}

/// Result of the fault-isolated sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Table IV rows for every node cell that completed.
    pub table4: Vec<Table4Row>,
    /// Table V-style rows for every graph cell that completed (ENZYMES, DD,
    /// and MNIST).
    pub table5: Vec<Table5Row>,
    /// Sampled-training rows for every `sample/…` cell that completed
    /// (empty unless the config names sample specs).
    pub sample: Vec<SampleRow>,
    /// One record per cell, in execution order — including failed cells.
    pub cells: Vec<CellOutcome>,
    /// The full fault log, when this sweep armed the config's plan itself
    /// (`None` when a caller had already installed an injector).
    pub fault_log: Option<FaultLog>,
}

impl SweepOutcome {
    /// `(ok, degraded, failed)` cell counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for cell in &self.cells {
            match cell.status {
                CellStatus::Ok => c.0 += 1,
                CellStatus::Degraded => c.1 += 1,
                CellStatus::Failed => c.2 += 1,
            }
        }
        c
    }

    /// Whether no cell failed (degraded cells count as survived).
    pub fn all_survived(&self) -> bool {
        self.cells.iter().all(|c| c.status != CellStatus::Failed)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .map(|m| format!("panic: {m}"))
        .unwrap_or_else(|| "panic with non-string payload".into())
}

/// Builds the supervisor policy for one training run of a cell.
fn supervisor_for(cfg: &RunConfig, cell: &str, run_idx: usize) -> Supervisor {
    let checkpoint_path: Option<PathBuf> = cfg.ckpt_dir.as_ref().map(|dir| {
        let file = format!("{}_{run_idx}.ckpt", cell.replace('/', "_"));
        dir.join(file)
    });
    Supervisor {
        checkpoint_path,
        resume: cfg.resume,
        ..Supervisor::default()
    }
}

/// Runs one supervised training run of a node cell.
fn run_node_supervised(
    framework: FrameworkKind,
    model: ModelKind,
    ds: &NodeDataset,
    task: &NodeTaskConfig,
    seed: u64,
    sup: &Supervisor,
) -> Result<Supervised<NodeOutcome>, TrainError> {
    let f = ds.features.cols();
    let c = ds.num_classes;
    let mut rng = StdRng::seed_from_u64(seed);
    match framework {
        FrameworkKind::RustyG => {
            let stack = build::node_model_rustyg(model, f, c, &mut rng);
            let batch = rustyg::loader::full_graph_batch(ds);
            run_node_task_supervised(&stack, &batch, ds, task, sup)
        }
        FrameworkKind::Rgl => {
            let stack = build::node_model_rgl(model, f, c, &mut rng);
            let batch = rgl::loader::full_graph_batch(ds);
            run_node_task_supervised(&stack, &batch, ds, task, sup)
        }
    }
}

/// Runs one supervised training run of a graph cell (one fold).
fn run_graph_supervised(
    framework: FrameworkKind,
    model: ModelKind,
    ds: &GraphDataset,
    fold: &gnn_datasets::Fold,
    task: &GraphTaskConfig,
    seed: u64,
    sup: &Supervisor,
) -> Result<Supervised<FoldOutcome>, TrainError> {
    let f = ds.feature_dim;
    let c = ds.num_classes;
    let mut rng = StdRng::seed_from_u64(seed);
    match framework {
        FrameworkKind::RustyG => {
            let stack = build::graph_model_rustyg(model, f, c, &mut rng);
            let loader = RustygLoader::new(ds);
            run_graph_fold_supervised(&stack, &loader, fold, task, sup)
        }
        FrameworkKind::Rgl => {
            let stack = build::graph_model_rgl(model, f, c, &mut rng);
            let loader = RglLoader::new(ds);
            run_graph_fold_supervised(&stack, &loader, fold, task, sup)
        }
    }
}

/// Turns a cell's runs into a (status, detail, retries) triple.
fn digest<T>(runs: &[Supervised<T>]) -> (CellStatus, String, usize) {
    let degraded = runs.iter().any(|r| r.degraded);
    let retries: usize = runs.iter().map(|r| r.retries).sum();
    let notes: Vec<&str> = runs
        .iter()
        .flat_map(|r| r.notes.iter().map(String::as_str))
        .collect();
    let status = if degraded {
        CellStatus::Degraded
    } else {
        CellStatus::Ok
    };
    (status, notes.join("; "), retries)
}

/// Runs the full fault-isolated paper sweep. See the module docs.
pub fn sweep(cfg: &RunConfig) -> SweepOutcome {
    // Arm the config's fault plan unless a caller already installed an
    // injector (e.g. the bench harness arming it around the whole process).
    let own_handle = match &cfg.faults {
        Some(plan) if !gnn_faults::is_active() => Some(gnn_faults::install(plan.clone())),
        _ => None,
    };
    if let Some(dir) = &cfg.ckpt_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
    }

    let mut out = SweepOutcome::default();

    // Node cells (Table IV).
    for spec in [CitationSpec::cora(), CitationSpec::pubmed()] {
        let ds = spec.scaled(cfg.scale).generate(cfg.seed);
        for model in ALL_MODELS {
            for framework in ALL_FRAMEWORKS {
                node_cell(cfg, &ds, model, framework, &mut out);
            }
        }
    }
    // Graph cells (Table V grid, plus MNIST for full coverage).
    for which in [GraphDs::Enzymes, GraphDs::Dd, GraphDs::Mnist] {
        let ds = which.generate(cfg);
        let folds = stratified_kfold(&ds.labels(), 10, cfg.seed);
        for model in ALL_MODELS {
            for framework in ALL_FRAMEWORKS {
                graph_cell(cfg, &ds, &folds, model, framework, &mut out);
            }
        }
    }
    // Sampled cells (giant-graph subsystem), opt-in via `sample_specs`.
    for name in &cfg.sample_specs {
        sample_spec_cells(cfg, name, &mut out);
    }

    out.fault_log = own_handle.map(gnn_faults::finish);
    out
}

fn node_cell(
    cfg: &RunConfig,
    ds: &NodeDataset,
    model: ModelKind,
    framework: FrameworkKind,
    out: &mut SweepOutcome,
) {
    let cell = format!("table4/{}/{}/{}", ds.name, model.label(), framework.label());
    gnn_faults::set_cell(&cell);
    mark_cell("table4", &ds.name, model, framework);
    let events_before = gnn_faults::events_since(0).len();

    let task = NodeTaskConfig {
        max_epochs: cfg.node_epochs,
        lr: node_hparams(model).lr,
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        (0..cfg.seeds)
            .map(|s| {
                let sup = supervisor_for(cfg, &cell, s);
                run_node_supervised(framework, model, ds, &task, cfg.seed + 1 + s as u64, &sup)
            })
            .collect::<Result<Vec<_>, TrainError>>()
    }))
    .map_err(panic_message)
    .and_then(|r| r.map_err(|e| e.to_string()));

    let (status, detail, retries) = match &result {
        Ok(runs) => digest(runs),
        Err(msg) => (CellStatus::Failed, msg.clone(), 0),
    };
    let mut peak_memory = 0;
    if let Ok(runs) = result {
        let accs: Vec<f64> = runs.iter().map(|r| r.outcome.test_acc).collect();
        peak_memory = runs
            .iter()
            .map(|r| r.outcome.report.peak_memory)
            .max()
            .unwrap_or(0);
        let last = runs.last().expect("seeds >= 1");
        out.table4.push(Table4Row {
            dataset: ds.name.clone(),
            model,
            framework,
            epoch_time: last.outcome.epoch_time,
            total_time: last.outcome.total_time,
            acc: mean_std(&accs),
        });
    }
    out.cells.push(CellOutcome {
        experiment: "table4".into(),
        dataset: ds.name.clone(),
        model,
        framework,
        status,
        detail,
        faults: fired_since(events_before),
        retries,
        peak_memory,
    });
}

fn graph_cell(
    cfg: &RunConfig,
    ds: &GraphDataset,
    folds: &[gnn_datasets::Fold],
    model: ModelKind,
    framework: FrameworkKind,
    out: &mut SweepOutcome,
) {
    let cell = format!("table5/{}/{}/{}", ds.name, model.label(), framework.label());
    gnn_faults::set_cell(&cell);
    mark_cell("table5", &ds.name, model, framework);
    let events_before = gnn_faults::events_since(0).len();

    let mut task = GraphTaskConfig::from_hparams(&graph_hparams(model), cfg.graph_epochs, cfg.seed);
    task.batch_size = task.batch_size.min((folds[0].train.len() / 3).max(8));

    let result = catch_unwind(AssertUnwindSafe(|| {
        folds
            .iter()
            .take(cfg.folds)
            .enumerate()
            .map(|(i, fold)| {
                let sup = supervisor_for(cfg, &cell, i);
                run_graph_supervised(
                    framework,
                    model,
                    ds,
                    fold,
                    &task,
                    cfg.seed + 10 + i as u64,
                    &sup,
                )
            })
            .collect::<Result<Vec<_>, TrainError>>()
    }))
    .map_err(panic_message)
    .and_then(|r| r.map_err(|e| e.to_string()));

    let (status, detail, retries) = match &result {
        Ok(runs) => digest(runs),
        Err(msg) => (CellStatus::Failed, msg.clone(), 0),
    };
    let mut peak_memory = 0;
    if let Ok(runs) = result {
        let accs: Vec<f64> = runs.iter().map(|r| r.outcome.test_acc).collect();
        let epoch_times: Vec<f64> = runs.iter().map(|r| r.outcome.epoch_time).collect();
        let total_times: Vec<f64> = runs.iter().map(|r| r.outcome.total_time).collect();
        peak_memory = runs
            .iter()
            .map(|r| r.outcome.report.peak_memory)
            .max()
            .unwrap_or(0);
        out.table5.push(Table5Row {
            dataset: ds.name.clone(),
            model,
            framework,
            epoch_time: mean_std(&epoch_times).mean,
            total_time: mean_std(&total_times).mean,
            acc: mean_std(&accs),
        });
    }
    out.cells.push(CellOutcome {
        experiment: "table5".into(),
        dataset: ds.name.clone(),
        model,
        framework,
        status,
        detail,
        faults: fired_since(events_before),
        retries,
        peak_memory,
    });
}

/// Runs one supervised sampled-training run, returning the outcome and the
/// loader's lifetime feature-cache hit rate.
fn run_sample_supervised(
    framework: FrameworkKind,
    spec: &SampleSpec,
    graph: &Rc<RmatGraph>,
    kind: SamplerKind,
    task: &SampledTaskConfig,
    seed: u64,
    sup: &Supervisor,
) -> Result<(Supervised<NodeOutcome>, f64), TrainError> {
    let f = spec.rmat.feature_dim;
    let c = spec.rmat.num_classes;
    let mut rng = StdRng::seed_from_u64(seed);
    match framework {
        FrameworkKind::RustyG => {
            let stack = build::node_model_rustyg(ModelKind::Sage, f, c, &mut rng);
            let loader = rustyg::sampled::SampledLoader::new(graph.clone(), spec, kind)
                .expect("catalog specs validate before cells run");
            let run = run_sampled_task_supervised(&stack, &loader, task, sup)?;
            Ok((run, loader.cache_hit_rate()))
        }
        FrameworkKind::Rgl => {
            let stack = build::node_model_rgl(ModelKind::Sage, f, c, &mut rng);
            let loader = rgl::sampled::SampledLoader::new(graph.clone(), spec, kind)
                .expect("catalog specs validate before cells run");
            let run = run_sampled_task_supervised(&stack, &loader, task, sup)?;
            Ok((run, loader.cache_hit_rate()))
        }
    }
}

/// Records a sampled cell that could not even be constructed (unknown spec
/// name or degenerate config) as one failed cell, without running anything.
fn sample_failed(name: &str, err: &SampleConfigError, out: &mut SweepOutcome) {
    out.cells.push(CellOutcome {
        experiment: "sample".into(),
        dataset: name.to_owned(),
        model: ModelKind::Sage,
        framework: FrameworkKind::RustyG,
        status: CellStatus::Failed,
        detail: err.to_string(),
        faults: Vec::new(),
        retries: 0,
        peak_memory: 0,
    });
}

/// Expands one configured spec name into its sampler × framework cells.
/// The RMAT graph is generated once per spec and shared (read-only) by
/// every cell, so the million-node headline spec pays generation once.
fn sample_spec_cells(cfg: &RunConfig, name: &str, out: &mut SweepOutcome) {
    let spec = match SampleSpec::get(name) {
        Ok(spec) => spec,
        Err(e) => return sample_failed(name, &e, out),
    };
    if let Err(e) = spec.validate() {
        return sample_failed(name, &e, out);
    }
    let graph = match RmatGraph::generate(spec.rmat) {
        Ok(g) => Rc::new(g),
        Err(e) => return sample_failed(name, &e, out),
    };
    for kind in SamplerKind::all() {
        for framework in ALL_FRAMEWORKS {
            sample_cell(cfg, &spec, &graph, kind, framework, out);
        }
    }
}

fn sample_cell(
    cfg: &RunConfig,
    spec: &SampleSpec,
    graph: &Rc<RmatGraph>,
    kind: SamplerKind,
    framework: FrameworkKind,
    out: &mut SweepOutcome,
) {
    let model = ModelKind::Sage;
    // The sampler kind rides in the dataset component so the cell path
    // keeps the 4-segment `experiment/dataset/model/framework` shape.
    let dataset = format!("{}-{}", spec.name, kind.label());
    let cell = format!("sample/{dataset}/{}/{}", model.label(), framework.label());
    gnn_faults::set_cell(&cell);
    mark_cell("sample", &dataset, model, framework);
    let events_before = gnn_faults::events_since(0).len();

    let task = SampledTaskConfig {
        max_epochs: cfg.sample_epochs,
        lr: node_hparams(model).lr,
        batch_seeds: spec.batch_seeds,
        train_seeds: spec.batch_seeds * 4,
        eval_seeds: spec.batch_seeds,
        seed: cfg.seed,
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        (0..cfg.seeds)
            .map(|s| {
                let sup = supervisor_for(cfg, &cell, s);
                run_sample_supervised(
                    framework,
                    spec,
                    graph,
                    kind,
                    &task,
                    cfg.seed + 1 + s as u64,
                    &sup,
                )
            })
            .collect::<Result<Vec<_>, TrainError>>()
    }))
    .map_err(panic_message)
    .and_then(|r| r.map_err(|e| e.to_string()));

    let (status, detail, retries) = match &result {
        Ok(runs) => {
            let sups: Vec<&Supervised<NodeOutcome>> = runs.iter().map(|(r, _)| r).collect();
            let degraded = sups.iter().any(|r| r.degraded);
            let retries: usize = sups.iter().map(|r| r.retries).sum();
            let notes: Vec<&str> = sups
                .iter()
                .flat_map(|r| r.notes.iter().map(String::as_str))
                .collect();
            let status = if degraded {
                CellStatus::Degraded
            } else {
                CellStatus::Ok
            };
            (status, notes.join("; "), retries)
        }
        Err(msg) => (CellStatus::Failed, msg.clone(), 0),
    };
    let mut peak_memory = 0;
    if let Ok(runs) = result {
        let accs: Vec<f64> = runs.iter().map(|(r, _)| r.outcome.test_acc).collect();
        peak_memory = runs
            .iter()
            .map(|(r, _)| r.outcome.report.peak_memory)
            .max()
            .unwrap_or(0);
        let (last, hit_rate) = runs.last().expect("seeds >= 1");
        out.sample.push(SampleRow {
            spec: spec.name.to_owned(),
            sampler: kind,
            model,
            framework,
            epoch_time: last.outcome.epoch_time,
            total_time: last.outcome.total_time,
            acc: mean_std(&accs),
            cache_hit_rate: *hit_rate,
        });
    }
    out.cells.push(CellOutcome {
        experiment: "sample".into(),
        dataset,
        model,
        framework,
        status,
        detail,
        faults: fired_since(events_before),
        retries,
        peak_memory,
    });
}

fn fired_since(n: usize) -> Vec<String> {
    gnn_faults::events_since(n)
        .into_iter()
        .map(|e| format!("{}:{}", e.kind, e.detail))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_faults::{FaultKind, FaultPlan};

    fn tiny_cfg() -> RunConfig {
        // One model pair per experiment would be even faster, but the grid
        // is fixed; shrink everything else instead.
        let mut cfg = RunConfig::smoke();
        cfg.scale = 0.03;
        cfg.node_epochs = 2;
        cfg.graph_epochs = 1;
        cfg
    }

    #[test]
    fn clean_sweep_covers_sixty_cells_all_ok() {
        let out = sweep(&tiny_cfg());
        assert_eq!(out.cells.len(), 60);
        assert_eq!(out.table4.len(), 24);
        assert_eq!(out.table5.len(), 36);
        let (ok, degraded, failed) = out.counts();
        assert_eq!((ok, degraded, failed), (60, 0, 0));
        assert!(out.all_survived());
        assert!(out.fault_log.is_none(), "no plan configured");
    }

    #[test]
    fn canonical_chaos_sweep_survives_and_traces_faults() {
        let obs = gnn_obs::install(gnn_obs::Collector::new());
        let out = sweep(&tiny_cfg().with_faults(FaultPlan::canonical()));
        let trace = gnn_obs::finish(obs);

        assert_eq!(out.cells.len(), 60);
        let (_, _, failed) = out.counts();
        assert_eq!(
            failed, 0,
            "canonical plan must leave every cell ok/degraded"
        );
        assert!(out.all_survived());
        let log = out.fault_log.expect("the sweep armed the plan");
        assert!(!log.is_empty(), "the canonical plan must actually fire");
        // Every fired fault is an instant event on the faults track, so
        // chaos campaigns are visible in the Chrome trace.
        let traced = trace.events.iter().filter(|e| e.track == "faults").count();
        assert_eq!(traced, log.len());
    }

    #[test]
    fn sampled_cells_are_opt_in_and_survive_canonical_chaos() {
        // Default sweeps never grow sampled cells...
        assert!(tiny_cfg().sample_specs.is_empty());
        // ...but a config naming a spec appends sampler × framework cells
        // after the classic 60, and the canonical plan must not fail them.
        let mut cfg = tiny_cfg().with_samples(["rmat-4k"]);
        cfg.sample_epochs = 1;
        cfg.seeds = 1;
        let out = sweep(&cfg.with_faults(FaultPlan::canonical()));
        assert_eq!(out.cells.len(), 64, "60 classic + 2 kinds x 2 frameworks");
        assert_eq!(out.sample.len(), 4);
        assert!(out.all_survived());
        for row in &out.sample {
            assert_eq!(row.spec, "rmat-4k");
            assert!(row.total_time > 0.0);
            assert!((0.0..=1.0).contains(&row.cache_hit_rate));
        }
        let sampled: Vec<&CellOutcome> = out
            .cells
            .iter()
            .filter(|c| c.experiment == "sample")
            .collect();
        assert_eq!(sampled.len(), 4);
        assert!(sampled.iter().all(|c| c.peak_memory > 0));
        assert!(sampled
            .iter()
            .any(|c| c.dataset == "rmat-4k-neighbor" || c.dataset == "rmat-4k-layerwise"));
    }

    #[test]
    fn unknown_sample_spec_is_one_failed_cell() {
        let mut cfg = tiny_cfg().with_samples(["no-such-spec"]);
        cfg.sample_epochs = 1;
        let out = sweep(&cfg);
        assert_eq!(out.cells.len(), 61);
        let bad = out.cells.last().unwrap();
        assert_eq!(bad.status, CellStatus::Failed);
        assert_eq!(bad.experiment, "sample");
        assert!(bad.detail.contains("no-such-spec"), "{}", bad.detail);
        assert!(out.sample.is_empty());
    }

    #[test]
    fn dense_kernel_faults_fail_isolated_cells_only() {
        // Kernel faults dense enough to exhaust every retry budget — but
        // only for the very first cells (the counters are global), so the
        // sweep must record failures AND keep finishing later cells.
        let plan = (1..=200u64).fold(FaultPlan::empty(), |p, i| {
            p.with(FaultKind::KernelFault { at: i })
        });
        let out = sweep(&tiny_cfg().with_faults(plan));
        assert_eq!(out.cells.len(), 60, "sweep must visit every cell");
        let (_, _, failed) = out.counts();
        assert!(failed >= 1, "dense faults must fail at least one cell");
        assert!(
            out.cells.last().unwrap().status == CellStatus::Ok,
            "late cells (past the fault window) must still run clean"
        );
        let broken = out
            .cells
            .iter()
            .find(|c| c.status == CellStatus::Failed)
            .unwrap();
        assert!(broken.detail.contains("kernel fault"), "{}", broken.detail);
        assert!(!broken.faults.is_empty());
        let log = out.fault_log.expect("sweep armed the plan");
        assert!(!log.is_empty());
        // Fault events carry the cell that was running.
        assert!(log.events[0].cell.starts_with("table4/"));
    }
}
