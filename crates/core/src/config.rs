//! Run-scale configuration.

use std::path::{Path, PathBuf};

use gnn_faults::FaultPlan;

/// Trace-emission settings for a run (see the `gnn-obs` crate).
///
/// Disabled by default. When a directory is set, binaries that honor the
/// config install a `gnn_obs::Collector` around the experiment and write
/// `trace.json` (Chrome trace-event format, loadable in Perfetto or
/// `chrome://tracing`) and `metrics.jsonl` (one record per training epoch)
/// into it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output directory for `trace.json` + `metrics.jsonl`; `None`
    /// disables tracing entirely (the instrumented code paths are no-ops).
    pub dir: Option<PathBuf>,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig { dir: None }
    }

    /// Tracing enabled, artifacts written under `dir`.
    pub fn to(dir: impl Into<PathBuf>) -> Self {
        TraceConfig {
            dir: Some(dir.into()),
        }
    }

    /// Whether tracing is enabled.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The output directory, if tracing is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

/// Controls the scale of an experiment run.
///
/// All presets keep the full experiment *structure* — every model, both
/// frameworks, every dataset the experiment uses — and only trade dataset
/// size, epoch counts, seeds, and folds.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Dataset subsampling factor in `(0, 1]`.
    pub scale: f64,
    /// Seeds per (dataset, model, framework) cell of Table IV.
    pub seeds: usize,
    /// Max epochs for node-classification runs (paper: 200).
    pub node_epochs: usize,
    /// Epoch cap for graph-classification runs (paper: until lr floor).
    pub graph_epochs: usize,
    /// Cross-validation folds actually trained (paper: 10).
    pub folds: usize,
    /// Mini-batch sizes for the breakdown/resource sweeps (paper: 64/128/256).
    pub batch_sizes: [usize; 3],
    /// Base RNG seed.
    pub seed: u64,
    /// Trace emission (off in every preset; see [`TraceConfig`]).
    pub trace: TraceConfig,
    /// Run the `gnn-lint` static analyzer over the configured sweep before
    /// executing anything, and abort on findings (off in every preset; the
    /// bench binaries enable it via `--lint`).
    pub lint_first: bool,
    /// Deterministic fault-injection plan armed around the run (`None` in
    /// every preset; the bench binaries set it via `--faults <plan>`).
    pub faults: Option<FaultPlan>,
    /// Directory for per-cell training checkpoints (`None` disables
    /// checkpointing; set via `--ckpt <dir>`, or implied by `--resume`).
    pub ckpt_dir: Option<PathBuf>,
    /// Resume cells from checkpoints found in `ckpt_dir` (the `--resume`
    /// flag): a killed sweep continues where it stopped, bit-identically.
    pub resume: bool,
}

impl RunConfig {
    /// Paper-scale protocol: full datasets, 200 node epochs, lr-floor
    /// stopping with a generous cap, 4 seeds, 10 folds.
    pub fn paper() -> Self {
        RunConfig {
            scale: 1.0,
            seeds: 4,
            node_epochs: 200,
            graph_epochs: 1000,
            folds: 10,
            batch_sizes: [64, 128, 256],
            seed: 0,
            trace: TraceConfig::off(),
            lint_first: false,
            faults: None,
            ckpt_dir: None,
            resume: false,
        }
    }

    /// Laptop-scale default: ~15% datasets, short training, 2 seeds/folds.
    /// Timing *shapes* (who wins, by what factor) are preserved; absolute
    /// accuracies are lower because training is truncated.
    pub fn quick() -> Self {
        RunConfig {
            scale: 0.15,
            seeds: 2,
            node_epochs: 40,
            graph_epochs: 6,
            folds: 2,
            batch_sizes: [64, 128, 256],
            seed: 0,
            trace: TraceConfig::off(),
            lint_first: false,
            faults: None,
            ckpt_dir: None,
            resume: false,
        }
    }

    /// Minimal smoke-test scale for CI and unit tests.
    pub fn smoke() -> Self {
        RunConfig {
            scale: 0.05,
            seeds: 1,
            node_epochs: 3,
            graph_epochs: 2,
            folds: 1,
            batch_sizes: [8, 16, 32],
            seed: 0,
            trace: TraceConfig::off(),
            lint_first: false,
            faults: None,
            ckpt_dir: None,
            resume: false,
        }
    }

    /// Replaces the dataset scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale {scale} out of (0, 1]");
        self.scale = scale;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables trace emission into `dir`.
    pub fn with_trace(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace = TraceConfig::to(dir);
        self
    }

    /// Enables the ahead-of-run static analysis gate (`gnn-lint`).
    pub fn with_lint(mut self) -> Self {
        self.lint_first = true;
        self
    }

    /// Arms a fault-injection plan around the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables per-cell checkpointing into `dir`.
    pub fn with_ckpt_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.ckpt_dir = Some(dir.into());
        self
    }

    /// Enables resume-from-checkpoint (requires a checkpoint directory).
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_scale() {
        assert!(RunConfig::smoke().scale < RunConfig::quick().scale);
        assert!(RunConfig::quick().scale < RunConfig::paper().scale);
        assert_eq!(RunConfig::paper().node_epochs, 200);
        assert_eq!(RunConfig::paper().folds, 10);
        assert_eq!(RunConfig::paper().batch_sizes, [64, 128, 256]);
    }

    #[test]
    fn builders_apply() {
        let c = RunConfig::quick().with_scale(0.5).with_seed(9);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn bad_scale_panics() {
        RunConfig::quick().with_scale(2.0);
    }

    #[test]
    fn lint_is_off_in_every_preset_and_settable() {
        assert!(!RunConfig::paper().lint_first);
        assert!(!RunConfig::quick().lint_first);
        assert!(!RunConfig::smoke().lint_first);
        assert!(RunConfig::smoke().with_lint().lint_first);
    }

    #[test]
    fn faults_and_resume_are_off_in_every_preset() {
        for cfg in [RunConfig::paper(), RunConfig::quick(), RunConfig::smoke()] {
            assert!(cfg.faults.is_none());
            assert!(cfg.ckpt_dir.is_none());
            assert!(!cfg.resume);
        }
        let c = RunConfig::smoke()
            .with_faults(FaultPlan::canonical())
            .with_ckpt_dir("out/ckpt")
            .with_resume();
        assert_eq!(c.faults, Some(FaultPlan::canonical()));
        assert_eq!(c.ckpt_dir.as_deref(), Some(Path::new("out/ckpt")));
        assert!(c.resume);
    }

    #[test]
    fn trace_is_off_by_default_and_settable() {
        assert!(!RunConfig::quick().trace.enabled());
        assert!(!RunConfig::paper().trace.enabled());
        let c = RunConfig::smoke().with_trace("out/traces");
        assert!(c.trace.enabled());
        assert_eq!(c.trace.dir(), Some(std::path::Path::new("out/traces")));
    }
}
