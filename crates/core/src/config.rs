//! Run-scale configuration.

use std::fmt;
use std::path::{Path, PathBuf};

use gnn_faults::FaultPlan;

/// A typed error for an unusable artifact destination (`--trace`,
/// `--ckpt`, `--out`): names the offending path and why it cannot be used.
///
/// Before this existed, a bad artifact path surfaced only when the first
/// write happened — after minutes of training, and for some paths as a
/// panic. The bench binaries now validate destinations at flag-parse time
/// and report this error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactPathError {
    /// The offending path, as given on the command line.
    pub path: PathBuf,
    /// Why the path cannot be used.
    pub reason: String,
}

impl fmt::Display for ArtifactPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "artifact path `{}` is unusable: {}",
            self.path.display(),
            self.reason
        )
    }
}

impl std::error::Error for ArtifactPathError {}

impl ArtifactPathError {
    fn new(path: &Path, reason: impl Into<String>) -> Self {
        ArtifactPathError {
            path: path.to_path_buf(),
            reason: reason.into(),
        }
    }
}

/// Validates that `dir` can serve as an artifact directory *without
/// creating anything*: no existing ancestor may be a non-directory, and
/// the nearest existing ancestor must be writable (checked with a probe
/// file that is removed again). Suitable for flag-parse time, so a doomed
/// `--trace`/`--ckpt` destination fails before any training runs.
///
/// # Errors
///
/// Returns an [`ArtifactPathError`] naming `dir` and the blocking
/// condition.
pub fn validate_artifact_dir(dir: &Path) -> Result<(), ArtifactPathError> {
    if dir.as_os_str().is_empty() {
        return Err(ArtifactPathError::new(dir, "empty path"));
    }
    // The nearest existing ancestor decides: everything below it will be
    // created with `create_dir_all`, which only needs that ancestor to be
    // a writable directory.
    let mut existing: Option<&Path> = None;
    for ancestor in dir.ancestors() {
        if ancestor.as_os_str().is_empty() {
            continue;
        }
        if ancestor.exists() {
            existing = Some(ancestor);
            break;
        }
    }
    // A fully relative path may have no existing ancestor; the current
    // directory is then the creation root.
    let root = existing.unwrap_or(Path::new("."));
    if !root.is_dir() {
        return Err(ArtifactPathError::new(
            dir,
            format!("`{}` exists but is not a directory", root.display()),
        ));
    }
    let probe = root.join(format!(".gnn-artifact-probe-{}", std::process::id()));
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(e) => Err(ArtifactPathError::new(
            dir,
            format!("`{}` is not writable: {e}", root.display()),
        )),
    }
}

/// Validates that `path` can serve as an artifact *file* destination: it
/// must not be an existing directory, and its parent must pass
/// [`validate_artifact_dir`]. Creates nothing.
///
/// # Errors
///
/// Returns an [`ArtifactPathError`] naming `path` and the blocking
/// condition.
pub fn validate_artifact_path(path: &Path) -> Result<(), ArtifactPathError> {
    if path.is_dir() {
        return Err(ArtifactPathError::new(
            path,
            "is a directory, expected a file path",
        ));
    }
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    validate_artifact_dir(parent).map_err(|e| ArtifactPathError::new(path, e.reason))
}

/// Like [`validate_artifact_dir`], then actually creates the directory
/// (and parents). For use right before writing artifacts.
///
/// # Errors
///
/// Returns an [`ArtifactPathError`] naming `dir` and the blocking
/// condition.
pub fn ensure_artifact_dir(dir: &Path) -> Result<(), ArtifactPathError> {
    validate_artifact_dir(dir)?;
    std::fs::create_dir_all(dir)
        .map_err(|e| ArtifactPathError::new(dir, format!("cannot create: {e}")))
}

/// Like [`validate_artifact_path`], then creates the parent directory so
/// a subsequent write of `path` can succeed.
///
/// # Errors
///
/// Returns an [`ArtifactPathError`] naming `path` and the blocking
/// condition.
pub fn ensure_artifact_path(path: &Path) -> Result<(), ArtifactPathError> {
    validate_artifact_path(path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => return Ok(()),
    };
    std::fs::create_dir_all(parent)
        .map_err(|e| ArtifactPathError::new(path, format!("cannot create parent: {e}")))
}

/// Trace-emission settings for a run (see the `gnn-obs` crate).
///
/// Disabled by default. When a directory is set, binaries that honor the
/// config install a `gnn_obs::Collector` around the experiment and write
/// `trace.json` (Chrome trace-event format, loadable in Perfetto or
/// `chrome://tracing`) and `metrics.jsonl` (one record per training epoch)
/// into it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output directory for `trace.json` + `metrics.jsonl`; `None`
    /// disables tracing entirely (the instrumented code paths are no-ops).
    pub dir: Option<PathBuf>,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig { dir: None }
    }

    /// Tracing enabled, artifacts written under `dir`.
    pub fn to(dir: impl Into<PathBuf>) -> Self {
        TraceConfig {
            dir: Some(dir.into()),
        }
    }

    /// Whether tracing is enabled.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The output directory, if tracing is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

/// Controls the scale of an experiment run.
///
/// All presets keep the full experiment *structure* — every model, both
/// frameworks, every dataset the experiment uses — and only trade dataset
/// size, epoch counts, seeds, and folds.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Dataset subsampling factor in `(0, 1]`.
    pub scale: f64,
    /// Seeds per (dataset, model, framework) cell of Table IV.
    pub seeds: usize,
    /// Max epochs for node-classification runs (paper: 200).
    pub node_epochs: usize,
    /// Epoch cap for graph-classification runs (paper: until lr floor).
    pub graph_epochs: usize,
    /// Cross-validation folds actually trained (paper: 10).
    pub folds: usize,
    /// Mini-batch sizes for the breakdown/resource sweeps (paper: 64/128/256).
    pub batch_sizes: [usize; 3],
    /// Base RNG seed.
    pub seed: u64,
    /// Trace emission (off in every preset; see [`TraceConfig`]).
    pub trace: TraceConfig,
    /// Run the `gnn-lint` static analyzer over the configured sweep before
    /// executing anything, and abort on findings (off in every preset; the
    /// bench binaries enable it via `--lint`).
    pub lint_first: bool,
    /// Deterministic fault-injection plan armed around the run (`None` in
    /// every preset; the bench binaries set it via `--faults <plan>`).
    pub faults: Option<FaultPlan>,
    /// Directory for per-cell training checkpoints (`None` disables
    /// checkpointing; set via `--ckpt <dir>`, or implied by `--resume`).
    pub ckpt_dir: Option<PathBuf>,
    /// Resume cells from checkpoints found in `ckpt_dir` (the `--resume`
    /// flag): a killed sweep continues where it stopped, bit-identically.
    pub resume: bool,
    /// Sampled-training specs (`gnn_sample::SampleSpec` names) appended to
    /// the sweep as `sample/…` cells. Empty in every preset: the classic
    /// 60-cell grid is unchanged unless a caller opts in (the
    /// `gnn-bench sample` binary, or [`RunConfig::with_samples`]).
    pub sample_specs: Vec<String>,
    /// Epochs per sampled-training cell (each epoch is one pass over the
    /// seed pool in mini-batches, so this is deliberately small).
    pub sample_epochs: usize,
}

impl RunConfig {
    /// Paper-scale protocol: full datasets, 200 node epochs, lr-floor
    /// stopping with a generous cap, 4 seeds, 10 folds.
    pub fn paper() -> Self {
        RunConfig {
            scale: 1.0,
            seeds: 4,
            node_epochs: 200,
            graph_epochs: 1000,
            folds: 10,
            batch_sizes: [64, 128, 256],
            seed: 0,
            trace: TraceConfig::off(),
            lint_first: false,
            faults: None,
            ckpt_dir: None,
            resume: false,
            sample_specs: Vec::new(),
            sample_epochs: 4,
        }
    }

    /// Laptop-scale default: ~15% datasets, short training, 2 seeds/folds.
    /// Timing *shapes* (who wins, by what factor) are preserved; absolute
    /// accuracies are lower because training is truncated.
    pub fn quick() -> Self {
        RunConfig {
            scale: 0.15,
            seeds: 2,
            node_epochs: 40,
            graph_epochs: 6,
            folds: 2,
            batch_sizes: [64, 128, 256],
            seed: 0,
            trace: TraceConfig::off(),
            lint_first: false,
            faults: None,
            ckpt_dir: None,
            resume: false,
            sample_specs: Vec::new(),
            sample_epochs: 3,
        }
    }

    /// Minimal smoke-test scale for CI and unit tests.
    pub fn smoke() -> Self {
        RunConfig {
            scale: 0.05,
            seeds: 1,
            node_epochs: 3,
            graph_epochs: 2,
            folds: 1,
            batch_sizes: [8, 16, 32],
            seed: 0,
            trace: TraceConfig::off(),
            lint_first: false,
            faults: None,
            ckpt_dir: None,
            resume: false,
            sample_specs: Vec::new(),
            sample_epochs: 2,
        }
    }

    /// Replaces the dataset scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale {scale} out of (0, 1]");
        self.scale = scale;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables trace emission into `dir`.
    pub fn with_trace(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace = TraceConfig::to(dir);
        self
    }

    /// Enables the ahead-of-run static analysis gate (`gnn-lint`).
    pub fn with_lint(mut self) -> Self {
        self.lint_first = true;
        self
    }

    /// Arms a fault-injection plan around the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables per-cell checkpointing into `dir`.
    pub fn with_ckpt_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.ckpt_dir = Some(dir.into());
        self
    }

    /// Enables resume-from-checkpoint (requires a checkpoint directory).
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Appends sampled-training cells for the named
    /// `gnn_sample::SampleSpec`s to the sweep.
    pub fn with_samples<I, S>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.sample_specs = specs.into_iter().map(Into::into).collect();
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_scale() {
        assert!(RunConfig::smoke().scale < RunConfig::quick().scale);
        assert!(RunConfig::quick().scale < RunConfig::paper().scale);
        assert_eq!(RunConfig::paper().node_epochs, 200);
        assert_eq!(RunConfig::paper().folds, 10);
        assert_eq!(RunConfig::paper().batch_sizes, [64, 128, 256]);
    }

    #[test]
    fn builders_apply() {
        let c = RunConfig::quick().with_scale(0.5).with_seed(9);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn bad_scale_panics() {
        RunConfig::quick().with_scale(2.0);
    }

    #[test]
    fn lint_is_off_in_every_preset_and_settable() {
        assert!(!RunConfig::paper().lint_first);
        assert!(!RunConfig::quick().lint_first);
        assert!(!RunConfig::smoke().lint_first);
        assert!(RunConfig::smoke().with_lint().lint_first);
    }

    #[test]
    fn faults_and_resume_are_off_in_every_preset() {
        for cfg in [RunConfig::paper(), RunConfig::quick(), RunConfig::smoke()] {
            assert!(cfg.faults.is_none());
            assert!(cfg.ckpt_dir.is_none());
            assert!(!cfg.resume);
        }
        let c = RunConfig::smoke()
            .with_faults(FaultPlan::canonical())
            .with_ckpt_dir("out/ckpt")
            .with_resume();
        assert_eq!(c.faults, Some(FaultPlan::canonical()));
        assert_eq!(c.ckpt_dir.as_deref(), Some(Path::new("out/ckpt")));
        assert!(c.resume);
    }

    #[test]
    fn artifact_paths_under_a_file_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("gnn_core_artifact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain.txt");
        std::fs::write(&file, "x").unwrap();

        // A directory nested under a plain file can never be created.
        let blocked = file.join("sub/deeper");
        let err = validate_artifact_dir(&blocked).unwrap_err();
        assert_eq!(err.path, blocked);
        assert!(err.reason.contains("not a directory"), "{err}");
        assert!(err.to_string().contains(&blocked.display().to_string()));

        // Missing-but-creatable parents are fine (and nothing is created).
        let fresh = dir.join("a/b/c");
        assert!(validate_artifact_dir(&fresh).is_ok());
        assert!(!fresh.exists(), "validation must not create directories");

        // A file destination must not name an existing directory, and
        // inherits its parent's validation.
        assert!(validate_artifact_path(&dir).is_err());
        assert!(validate_artifact_path(&file.join("x.json")).is_err());
        assert!(validate_artifact_path(&dir.join("out/report.json")).is_ok());

        // ensure_* actually creates.
        let made = dir.join("made/deep");
        assert!(ensure_artifact_dir(&made).is_ok());
        assert!(made.is_dir());
        let target = dir.join("made2/file.json");
        assert!(ensure_artifact_path(&target).is_ok());
        assert!(target.parent().unwrap().is_dir());
        assert!(!target.exists());

        assert!(validate_artifact_dir(Path::new("")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_is_off_by_default_and_settable() {
        assert!(!RunConfig::quick().trace.enabled());
        assert!(!RunConfig::paper().trace.enabled());
        let c = RunConfig::smoke().with_trace("out/traces");
        assert!(c.trace.enabled());
        assert_eq!(c.trace.dir(), Some(std::path::Path::new("out/traces")));
    }
}
