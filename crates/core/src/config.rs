//! Run-scale configuration.

/// Controls the scale of an experiment run.
///
/// All presets keep the full experiment *structure* — every model, both
/// frameworks, every dataset the experiment uses — and only trade dataset
/// size, epoch counts, seeds, and folds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Dataset subsampling factor in `(0, 1]`.
    pub scale: f64,
    /// Seeds per (dataset, model, framework) cell of Table IV.
    pub seeds: usize,
    /// Max epochs for node-classification runs (paper: 200).
    pub node_epochs: usize,
    /// Epoch cap for graph-classification runs (paper: until lr floor).
    pub graph_epochs: usize,
    /// Cross-validation folds actually trained (paper: 10).
    pub folds: usize,
    /// Mini-batch sizes for the breakdown/resource sweeps (paper: 64/128/256).
    pub batch_sizes: [usize; 3],
    /// Base RNG seed.
    pub seed: u64,
}

impl RunConfig {
    /// Paper-scale protocol: full datasets, 200 node epochs, lr-floor
    /// stopping with a generous cap, 4 seeds, 10 folds.
    pub fn paper() -> Self {
        RunConfig {
            scale: 1.0,
            seeds: 4,
            node_epochs: 200,
            graph_epochs: 1000,
            folds: 10,
            batch_sizes: [64, 128, 256],
            seed: 0,
        }
    }

    /// Laptop-scale default: ~15% datasets, short training, 2 seeds/folds.
    /// Timing *shapes* (who wins, by what factor) are preserved; absolute
    /// accuracies are lower because training is truncated.
    pub fn quick() -> Self {
        RunConfig {
            scale: 0.15,
            seeds: 2,
            node_epochs: 40,
            graph_epochs: 6,
            folds: 2,
            batch_sizes: [64, 128, 256],
            seed: 0,
        }
    }

    /// Minimal smoke-test scale for CI and unit tests.
    pub fn smoke() -> Self {
        RunConfig {
            scale: 0.05,
            seeds: 1,
            node_epochs: 3,
            graph_epochs: 2,
            folds: 1,
            batch_sizes: [8, 16, 32],
            seed: 0,
        }
    }

    /// Replaces the dataset scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale {scale} out of (0, 1]");
        self.scale = scale;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_scale() {
        assert!(RunConfig::smoke().scale < RunConfig::quick().scale);
        assert!(RunConfig::quick().scale < RunConfig::paper().scale);
        assert_eq!(RunConfig::paper().node_epochs, 200);
        assert_eq!(RunConfig::paper().folds, 10);
        assert_eq!(RunConfig::paper().batch_sizes, [64, 128, 256]);
    }

    #[test]
    fn builders_apply() {
        let c = RunConfig::quick().with_scale(0.5).with_seed(9);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn bad_scale_panics() {
        RunConfig::quick().with_scale(2.0);
    }
}
