//! CSV export of experiment results, for downstream plotting.
//!
//! Each exporter mirrors a runner's row type. Fields are stable,
//! machine-readable column names; times are seconds, memory is bytes,
//! utilization is a fraction.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::runner::{LayerTimeRow, MultiGpuRow, ProfileRow, Table4Row, Table5Row};
use crate::sweep::CellOutcome;

fn esc(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders Table IV rows as CSV.
pub fn table4_csv(rows: &[Table4Row]) -> String {
    let mut out = String::from("dataset,model,framework,epoch_s,total_s,acc_mean,acc_std\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            esc(&r.dataset),
            r.model.label(),
            r.framework.label(),
            r.epoch_time,
            r.total_time,
            r.acc.mean,
            r.acc.std
        );
    }
    out
}

/// Renders Table V rows as CSV.
pub fn table5_csv(rows: &[Table5Row]) -> String {
    let mut out = String::from("dataset,model,framework,epoch_s,total_s,acc_mean,acc_std\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            esc(&r.dataset),
            r.model.label(),
            r.framework.label(),
            r.epoch_time,
            r.total_time,
            r.acc.mean,
            r.acc.std
        );
    }
    out
}

/// Renders profile-sweep rows (Figs. 1/2/4/5) as CSV.
pub fn profile_csv(rows: &[ProfileRow]) -> String {
    let mut out = String::from(
        "dataset,model,framework,batch_size,data_load_s,forward_s,backward_s,update_s,\
         other_s,epoch_s,peak_memory_bytes,utilization\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            esc(&r.dataset),
            r.model.label(),
            r.framework.label(),
            r.batch_size,
            r.phase_times[0],
            r.phase_times[1],
            r.phase_times[2],
            r.phase_times[3],
            r.phase_times[4],
            r.epoch_time(),
            r.peak_memory,
            r.utilization
        );
    }
    out
}

/// Renders per-kind kernel launch counts from profile-sweep rows as
/// long-format CSV: one line per (configuration, kernel kind).
pub fn kernel_counts_csv(rows: &[ProfileRow]) -> String {
    let mut out = String::from("dataset,model,framework,batch_size,kind,count\n");
    for r in rows {
        for (kind, count) in &r.kind_counts {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                esc(&r.dataset),
                r.model.label(),
                r.framework.label(),
                r.batch_size,
                kind.label(),
                count
            );
        }
    }
    out
}

/// Renders layer-time rows (Fig. 3) as long-format CSV.
pub fn layer_times_csv(rows: &[LayerTimeRow]) -> String {
    let mut out = String::from("model,framework,scope,seconds\n");
    for r in rows {
        for (scope, t) in &r.scopes {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                r.model.label(),
                r.framework.label(),
                esc(scope),
                t
            );
        }
    }
    out
}

/// Renders multi-GPU rows (Fig. 6) as CSV.
pub fn multi_gpu_csv(rows: &[MultiGpuRow]) -> String {
    let mut out = String::from("model,framework,batch_size,n_gpus,epoch_s\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.model.label(),
            r.framework.label(),
            r.batch_size,
            r.n_gpus,
            r.epoch_time
        );
    }
    out
}

/// Schema tag stamped into `cell_outcomes.csv` as a leading `# schema:`
/// comment line; bumped on any column change so downstream consumers fail
/// loudly on drift instead of misreading shifted columns.
pub const CELL_OUTCOMES_SCHEMA: &str = "gnn-cell-outcomes/v1";

/// Verifies that `text` (a CSV artifact) starts with the expected
/// `# schema: <tag>` comment line.
///
/// # Errors
///
/// Returns a diagnostic naming the expected and found tags.
pub fn check_csv_schema(text: &str, schema: &str) -> Result<(), String> {
    let expected = format!("# schema: {schema}");
    match text.lines().next() {
        Some(first) if first == expected => Ok(()),
        Some(first) => Err(format!(
            "CSV schema mismatch: expected `{expected}`, found `{first}`"
        )),
        None => Err(format!("empty CSV, expected `{expected}`")),
    }
}

/// Renders per-cell sweep outcomes as CSV: one line per (experiment,
/// dataset, model, framework) cell, with its status, retry count, detail
/// message and the faults that fired while it ran. The first line is a
/// `# schema:` comment ([`CELL_OUTCOMES_SCHEMA`]); consumers should skip
/// `#` lines and may assert the tag via [`check_csv_schema`].
pub fn cell_outcomes_csv(cells: &[CellOutcome]) -> String {
    let mut out = format!("# schema: {CELL_OUTCOMES_SCHEMA}\n");
    out.push_str(
        "experiment,dataset,model,framework,status,retries,detail,faults,peak_mem_bytes\n",
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            esc(&c.experiment),
            esc(&c.dataset),
            c.model.label(),
            c.framework.label(),
            c.status.label(),
            c.retries,
            esc(&c.detail),
            esc(&c.faults.join("; ")),
            c.peak_memory
        );
    }
    out
}

/// Writes `csv` to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: &Path, csv: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_models::{FrameworkKind, ModelKind};
    use gnn_train::Summary;

    fn t4_row() -> Table4Row {
        Table4Row {
            dataset: "Cora".into(),
            model: ModelKind::Gcn,
            framework: FrameworkKind::RustyG,
            epoch_time: 0.005,
            total_time: 1.0,
            acc: Summary {
                mean: 80.8,
                std: 1.3,
            },
        }
    }

    #[test]
    fn table4_csv_shape() {
        let csv = table4_csv(&[t4_row()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 7);
        assert!(lines[1].starts_with("Cora,GCN,PyG,0.005,1,"));
    }

    #[test]
    fn escaping_quotes_and_commas() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn profile_csv_has_all_phases() {
        let row = ProfileRow {
            dataset: "ENZYMES".into(),
            model: ModelKind::Gat,
            framework: FrameworkKind::Rgl,
            batch_size: 128,
            phase_times: [0.01, 0.002, 0.003, 0.001, 0.004],
            peak_memory: 1_000_000,
            utilization: 0.25,
            kind_counts: vec![
                (gnn_device::KernelKind::Gemm, 40),
                (gnn_device::KernelKind::Gather, 12),
            ],
        };
        let csv = profile_csv(std::slice::from_ref(&row));
        let header = csv.lines().next().unwrap();
        for col in [
            "data_load_s",
            "forward_s",
            "backward_s",
            "update_s",
            "other_s",
        ] {
            assert!(header.contains(col), "missing column {col}");
        }
        assert!(csv.contains("ENZYMES,GAT,DGL,128,0.01,"));

        let counts = kernel_counts_csv(&[row]);
        let lines: Vec<&str> = counts.lines().collect();
        assert_eq!(lines[0], "dataset,model,framework,batch_size,kind,count");
        assert_eq!(lines.len(), 3);
        assert!(counts.contains("ENZYMES,GAT,DGL,128,gemm,40"));
        assert!(counts.contains("ENZYMES,GAT,DGL,128,gather,12"));
    }

    #[test]
    fn layer_csv_is_long_format() {
        let row = LayerTimeRow {
            model: ModelKind::Gin,
            framework: FrameworkKind::RustyG,
            scopes: vec![("conv1".into(), 0.001), ("readout".into(), 0.0002)],
        };
        let csv = layer_times_csv(&[row]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("GIN,PyG,conv1,0.001"));
    }

    #[test]
    fn cell_outcomes_csv_escapes_details() {
        use crate::sweep::{CellOutcome, CellStatus};
        let cells = vec![
            CellOutcome {
                experiment: "table4".into(),
                dataset: "Cora".into(),
                model: ModelKind::Gcn,
                framework: FrameworkKind::RustyG,
                status: CellStatus::Ok,
                detail: String::new(),
                faults: vec![],
                retries: 0,
                peak_memory: 1 << 20,
            },
            CellOutcome {
                experiment: "table5".into(),
                dataset: "ENZYMES".into(),
                model: ModelKind::Gat,
                framework: FrameworkKind::Rgl,
                status: CellStatus::Degraded,
                detail: "device OOM, halving batch size to 16".into(),
                faults: vec!["oom:device OOM allocating 64 B".into()],
                retries: 2,
                peak_memory: 2 << 20,
            },
        ];
        let csv = cell_outcomes_csv(&cells);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], format!("# schema: {CELL_OUTCOMES_SCHEMA}"));
        assert_eq!(lines[1].split(',').count(), 9);
        assert!(lines[1].ends_with(",peak_mem_bytes"));
        assert!(lines[2].starts_with("table4,Cora,GCN,PyG,ok,0,,"));
        assert!(lines[2].ends_with(&format!(",{}", 1 << 20)));
        // The comma-bearing detail must be quoted to keep the column count.
        assert!(lines[3].contains("\"device OOM, halving batch size to 16\""));
        assert!(lines[3].contains("degraded"));
        // Parse-back guard: consumers assert the tag and fail on drift.
        assert!(check_csv_schema(&csv, CELL_OUTCOMES_SCHEMA).is_ok());
        assert!(check_csv_schema(&csv, "gnn-cell-outcomes/v2").is_err());
        assert!(check_csv_schema("", CELL_OUTCOMES_SCHEMA).is_err());
        let err = check_csv_schema("a,b\n1,2\n", CELL_OUTCOMES_SCHEMA).unwrap_err();
        assert!(err.contains(CELL_OUTCOMES_SCHEMA), "{err}");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("gnn_export_test");
        let path = dir.join("nested/out.csv");
        write_csv(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
