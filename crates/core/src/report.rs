//! Plain-text report rendering, one renderer per table/figure.

use gnn_device::session::PHASES;

use crate::runner::{LayerTimeRow, MultiGpuRow, ProfileRow, Table4Row, Table5Row};
use crate::sweep::SweepOutcome;

/// Renders a padded ASCII table.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|", sep.join("-|-")));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

fn fmt_secs(t: f64) -> String {
    if t >= 3600.0 {
        format!("{:.2}hr", t / 3600.0)
    } else if t >= 1.0 {
        format!("{t:.2}s")
    } else {
        format!("{:.4}s", t)
    }
}

/// Renders Table IV (node classification).
pub fn table4_report(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.model.label().to_string(),
                r.framework.label().to_string(),
                format!("{}/{}", fmt_secs(r.epoch_time), fmt_secs(r.total_time)),
                format!("{}", r.acc),
            ]
        })
        .collect();
    render_table(
        &["Dataset", "Model", "Framework", "Epoch/Total", "Acc±s.d."],
        &body,
    )
}

/// Renders Table V (graph classification).
pub fn table5_report(rows: &[Table5Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.model.label().to_string(),
                r.framework.label().to_string(),
                format!("{}/{}", fmt_secs(r.epoch_time), fmt_secs(r.total_time)),
                format!("{}", r.acc),
            ]
        })
        .collect();
    render_table(
        &["Dataset", "Model", "Framework", "Epoch/Total", "Acc±s.d."],
        &body,
    )
}

/// Renders the Figs. 1/2 epoch-time breakdown for one dataset.
pub fn breakdown_report(rows: &[ProfileRow]) -> String {
    let mut headers = vec!["Model", "Framework", "Batch"];
    headers.extend(PHASES.iter().map(|p| p.label()));
    headers.push("total");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.model.label().to_string(),
                r.framework.label().to_string(),
                r.batch_size.to_string(),
            ];
            cells.extend(r.phase_times.iter().map(|t| format!("{:.1}ms", t * 1e3)));
            cells.push(format!("{:.1}ms", r.epoch_time() * 1e3));
            cells
        })
        .collect();
    render_table(&headers, &body)
}

/// Which resource columns [`resources_report_filtered`] includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceMetric {
    /// Peak memory only (Fig. 4).
    Memory,
    /// Utilization only (Fig. 5).
    Utilization,
    /// Both columns.
    Both,
}

/// Renders the Figs. 4/5 sweep with a column filter.
pub fn resources_report_filtered(rows: &[ProfileRow], metric: ResourceMetric) -> String {
    let mut headers = vec!["Dataset", "Model", "Framework", "Batch"];
    if metric != ResourceMetric::Utilization {
        headers.push("PeakMem");
    }
    if metric != ResourceMetric::Memory {
        headers.push("GPUUtil");
    }
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.dataset.clone(),
                r.model.label().to_string(),
                r.framework.label().to_string(),
                r.batch_size.to_string(),
            ];
            if metric != ResourceMetric::Utilization {
                cells.push(format!("{:.1}MB", r.peak_memory as f64 / 1e6));
            }
            if metric != ResourceMetric::Memory {
                cells.push(format!("{:.1}%", r.utilization * 100.0));
            }
            cells
        })
        .collect();
    render_table(&headers, &body)
}

/// Renders the Fig. 4 (memory) and Fig. 5 (utilization) sweep.
pub fn resources_report(rows: &[ProfileRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.model.label().to_string(),
                r.framework.label().to_string(),
                r.batch_size.to_string(),
                format!("{:.1}MB", r.peak_memory as f64 / 1e6),
                format!("{:.1}%", r.utilization * 100.0),
            ]
        })
        .collect();
    render_table(
        &[
            "Dataset",
            "Model",
            "Framework",
            "Batch",
            "PeakMem",
            "GPUUtil",
        ],
        &body,
    )
}

/// Renders Fig. 3 (layer-wise execution time of one training batch).
pub fn layer_report(rows: &[LayerTimeRow]) -> String {
    // Collect the union of scope names in first-seen order.
    let mut scope_names: Vec<String> = Vec::new();
    for r in rows {
        for (name, _) in &r.scopes {
            if !scope_names.contains(name) {
                scope_names.push(name.clone());
            }
        }
    }
    let mut headers: Vec<&str> = vec!["Model", "Framework"];
    headers.extend(scope_names.iter().map(String::as_str));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.model.label().to_string(), r.framework.label().to_string()];
            for name in &scope_names {
                let t = r
                    .scopes
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, t)| *t)
                    .unwrap_or(0.0);
                cells.push(format!("{:.2}ms", t * 1e3));
            }
            cells
        })
        .collect();
    render_table(&headers, &body)
}

/// Renders Fig. 6 (multi-GPU epoch times).
pub fn fig6_report(rows: &[MultiGpuRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.label().to_string(),
                r.framework.label().to_string(),
                r.batch_size.to_string(),
                r.n_gpus.to_string(),
                format!("{:.1}ms", r.epoch_time * 1e3),
            ]
        })
        .collect();
    render_table(&["Model", "Framework", "Batch", "GPUs", "Epoch"], &body)
}

/// Renders the fault-isolated sweep: one row per cell with its status,
/// retries, and fired faults, followed by ok/degraded/failed totals and
/// (when the sweep armed the fault plan itself) the full fault log.
pub fn sweep_report(out: &SweepOutcome) -> String {
    let body: Vec<Vec<String>> = out
        .cells
        .iter()
        .map(|c| {
            vec![
                c.experiment.clone(),
                c.dataset.clone(),
                c.model.label().to_string(),
                c.framework.label().to_string(),
                c.status.label().to_string(),
                c.retries.to_string(),
                if c.faults.is_empty() {
                    "-".to_string()
                } else {
                    c.faults.join("; ")
                },
            ]
        })
        .collect();
    let mut s = render_table(
        &[
            "Experiment",
            "Dataset",
            "Model",
            "Framework",
            "Status",
            "Retries",
            "Faults",
        ],
        &body,
    );
    let (ok, degraded, failed) = out.counts();
    s.push_str(&format!(
        "cells: {} ok, {degraded} degraded, {failed} failed (of {})\n",
        ok,
        out.cells.len()
    ));
    for c in out.cells.iter().filter(|c| !c.detail.is_empty()) {
        s.push_str(&format!(
            "  {}/{}/{}/{}: {}\n",
            c.experiment,
            c.dataset,
            c.model.label(),
            c.framework.label(),
            c.detail
        ));
    }
    if let Some(log) = &out.fault_log {
        s.push_str(&format!("faults fired: {}\n", log.len()));
    }
    s
}

/// Renders a run-wide summary of a finished trace: one row per training
/// run (from the JSONL epoch records) plus aggregate kernel/event totals.
///
/// This is what the reproduction binaries print after saving trace
/// artifacts, so a `--trace` run ends with a human-readable digest of what
/// the trace contains.
pub fn run_summary(trace: &gnn_obs::Trace) -> String {
    let mut out = String::new();
    let mut runs: Vec<&str> = Vec::new();
    for e in &trace.epochs {
        if !runs.contains(&e.run.as_str()) {
            runs.push(&e.run);
        }
    }
    if runs.is_empty() {
        out.push_str("no epoch records (no training loop ran under the collector)\n");
    } else {
        let body: Vec<Vec<String>> = runs
            .iter()
            .map(|run| {
                let recs: Vec<_> = trace.epochs.iter().filter(|e| &e.run == run).collect();
                let last = recs[recs.len() - 1];
                let kernels: u64 = recs
                    .iter()
                    .flat_map(|r| r.kernel_counts.iter())
                    .map(|(_, n)| n)
                    .sum();
                vec![
                    (*run).to_string(),
                    recs.len().to_string(),
                    format!("{:.4}", last.loss),
                    last.accuracy
                        .map_or_else(|| "-".to_string(), |a| format!("{:.1}%", a * 100.0)),
                    kernels.to_string(),
                    format!("{:.1}MB", last.peak_memory as f64 / 1e6),
                    format!("{:.1}%", last.utilization * 100.0),
                    fmt_secs(last.sim_time),
                    fmt_secs(last.wall_time),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "Run", "Epochs", "Loss", "Acc", "Kernels", "PeakMem", "Util", "Sim", "Wall",
            ],
            &body,
        ));
    }
    // Aggregate per-kind kernel launches across every epoch record.
    let mut kinds: Vec<(String, u64)> = Vec::new();
    for (kind, n) in trace.epochs.iter().flat_map(|e| e.kernel_counts.iter()) {
        match kinds.iter_mut().find(|(k, _)| k == kind) {
            Some((_, total)) => *total += n,
            None => kinds.push((kind.clone(), *n)),
        }
    }
    if !kinds.is_empty() {
        let parts: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        out.push_str(&format!("kernel launches: {}\n", parts.join(", ")));
    }
    out.push_str(&format!(
        "trace events: {} across {} tracks\n",
        trace.events.len(),
        {
            let mut tracks: Vec<&str> = trace.events.iter().map(|e| e.track.as_str()).collect();
            tracks.sort_unstable();
            tracks.dedup();
            tracks.len()
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_columns() {
        let s = render_table(
            &["a", "bb"],
            &[
                vec!["xxx".into(), "y".into()],
                vec!["z".into(), "wwww".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn resource_metric_filters_columns() {
        let row = ProfileRow {
            dataset: "ENZYMES".into(),
            model: gnn_models::ModelKind::Gcn,
            framework: gnn_models::FrameworkKind::RustyG,
            batch_size: 64,
            phase_times: [0.0; 5],
            peak_memory: 1_000_000,
            utilization: 0.3,
            kind_counts: vec![(gnn_device::KernelKind::Gemm, 4)],
        };
        let mem = resources_report_filtered(std::slice::from_ref(&row), ResourceMetric::Memory);
        assert!(mem.contains("PeakMem") && !mem.contains("GPUUtil"));
        let util =
            resources_report_filtered(std::slice::from_ref(&row), ResourceMetric::Utilization);
        assert!(!util.contains("PeakMem") && util.contains("GPUUtil"));
        let both = resources_report_filtered(&[row], ResourceMetric::Both);
        assert!(both.contains("PeakMem") && both.contains("GPUUtil"));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(0.0049), "0.0049s");
        assert_eq!(fmt_secs(5.82), "5.82s");
        assert_eq!(fmt_secs(828.0), "828.00s");
        assert_eq!(fmt_secs(2.0 * 3600.0), "2.00hr");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn uneven_rows_rejected() {
        render_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn sweep_report_counts_statuses_and_lists_details() {
        use crate::sweep::{CellOutcome, CellStatus, SweepOutcome};
        let cell = |status, detail: &str, faults: Vec<String>| CellOutcome {
            experiment: "table4".into(),
            dataset: "Cora".into(),
            model: gnn_models::ModelKind::Gcn,
            framework: gnn_models::FrameworkKind::RustyG,
            status,
            detail: detail.into(),
            faults,
            retries: 1,
            peak_memory: 0,
        };
        let out = SweepOutcome {
            cells: vec![
                cell(CellStatus::Ok, "", vec![]),
                cell(
                    CellStatus::Degraded,
                    "halving batch size to 8",
                    vec!["oom:device OOM allocating 64 B".into()],
                ),
                cell(
                    CellStatus::Failed,
                    "retries exhausted after 4 attempts",
                    vec![],
                ),
            ],
            ..SweepOutcome::default()
        };
        let s = sweep_report(&out);
        assert!(
            s.contains("cells: 1 ok, 1 degraded, 1 failed (of 3)"),
            "{s}"
        );
        assert!(s.contains("halving batch size to 8"), "{s}");
        assert!(s.contains("retries exhausted"), "{s}");
        assert!(s.contains("oom:device OOM"), "{s}");
    }

    #[test]
    fn run_summary_lists_runs_and_kernel_totals() {
        let rec = |run: &str, epoch: u32| gnn_obs::EpochRecord {
            run: run.into(),
            epoch,
            loss: 0.5 / (epoch + 1) as f64,
            accuracy: Some(0.7),
            lr: 1e-3,
            phase_times: vec![("forward".into(), 0.1)],
            kernel_counts: vec![("gemm".into(), 10), ("gather".into(), 2)],
            flops: 5_000_000,
            bytes: 3_000_000,
            peak_memory: 2_000_000,
            utilization: 0.4,
            sim_time: 0.2 * (epoch + 1) as f64,
            wall_time: 0.01,
        };
        let trace = gnn_obs::Trace {
            events: vec![],
            epochs: vec![rec("a", 0), rec("a", 1), rec("b", 0)],
            schedule: vec![],
        };
        let s = run_summary(&trace);
        assert!(s.contains("| a"), "{s}");
        assert!(s.contains("| b"), "{s}");
        assert!(s.contains("kernel launches: gemm=30, gather=6"), "{s}");
        assert!(s.contains("trace events: 0"), "{s}");
    }

    #[test]
    fn run_summary_empty_trace_degrades_gracefully() {
        let trace = gnn_obs::Trace {
            events: vec![],
            epochs: vec![],
            schedule: vec![],
        };
        let s = run_summary(&trace);
        assert!(s.contains("no epoch records"), "{s}");
    }
}
