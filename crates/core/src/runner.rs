//! Experiment runners: one function per table/figure of the paper.

use gnn_datasets::{
    stratified_kfold, CitationSpec, DatasetStats, GraphDataset, NodeDataset, SuperpixelSpec,
    TudSpec,
};
use gnn_device::KernelKind;
use gnn_models::adapt::{RglLoader, RustygLoader};
use gnn_models::{
    build, config::ALL_FRAMEWORKS, config::ALL_MODELS, graph_hparams, node_hparams, FrameworkKind,
    ModelKind,
};
use gnn_obs as obs;
use gnn_train::{
    data_parallel_epoch_time, mean_std, run_graph_fold, run_node_task, FoldOutcome,
    GraphTaskConfig, MultiGpuConfig, NodeOutcome, NodeTaskConfig, Summary,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::RunConfig;

/// Marks the start of one sweep cell on the runner track, so traces show
/// where each (dataset, model, framework) combination begins. Instant
/// events only — the runner itself never touches the simulated clocks.
pub(crate) fn mark_cell(
    experiment: &str,
    dataset: &str,
    model: ModelKind,
    framework: FrameworkKind,
) {
    if !obs::is_active() {
        return;
    }
    obs::instant(
        obs::tracks::RUNNER,
        experiment,
        gnn_device::sim_now(),
        vec![
            ("dataset".to_owned(), obs::Value::from(dataset)),
            ("model".to_owned(), obs::Value::from(model.label())),
            ("framework".to_owned(), obs::Value::from(framework.label())),
        ],
    );
}

/// The graph-classification datasets used by the profiling experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDs {
    /// ENZYMES (Figs. 1, 3, 4, 5; Table V).
    Enzymes,
    /// DD (Fig. 2, 4, 5; Table V).
    Dd,
    /// MNIST superpixels (Fig. 6).
    Mnist,
}

impl GraphDs {
    /// Generates the dataset at the config's scale.
    pub fn generate(self, cfg: &RunConfig) -> GraphDataset {
        match self {
            GraphDs::Enzymes => TudSpec::enzymes().scaled(cfg.scale).generate(cfg.seed),
            GraphDs::Dd => TudSpec::dd().scaled(cfg.scale).generate(cfg.seed),
            GraphDs::Mnist => {
                // MNIST is 70k graphs; even "paper" runs subsample harder.
                SuperpixelSpec::mnist()
                    .scaled((cfg.scale * 0.1).min(1.0))
                    .generate(cfg.seed)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Regenerates Table I: statistics of all five datasets at the configured
/// scale.
pub fn table1(cfg: &RunConfig) -> Vec<DatasetStats> {
    vec![
        CitationSpec::cora()
            .scaled(cfg.scale)
            .generate(cfg.seed)
            .stats(),
        CitationSpec::pubmed()
            .scaled(cfg.scale)
            .generate(cfg.seed)
            .stats(),
        GraphDs::Enzymes.generate(cfg).stats(),
        GraphDs::Mnist.generate(cfg).stats(),
        GraphDs::Dd.generate(cfg).stats(),
    ]
}

// ---------------------------------------------------------------------------
// Table IV — node classification
// ---------------------------------------------------------------------------

/// One cell of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// Model.
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// Simulated seconds per epoch.
    pub epoch_time: f64,
    /// Simulated total training seconds.
    pub total_time: f64,
    /// Test accuracy over seeds, percent.
    pub acc: Summary,
}

fn run_node(
    framework: FrameworkKind,
    model: ModelKind,
    ds: &NodeDataset,
    cfg: &NodeTaskConfig,
    seed: u64,
) -> NodeOutcome {
    let f = ds.features.cols();
    let c = ds.num_classes;
    let mut rng = StdRng::seed_from_u64(seed);
    match framework {
        FrameworkKind::RustyG => {
            let stack = build::node_model_rustyg(model, f, c, &mut rng);
            let batch = rustyg::loader::full_graph_batch(ds);
            run_node_task(&stack, &batch, ds, cfg)
        }
        FrameworkKind::Rgl => {
            let stack = build::node_model_rgl(model, f, c, &mut rng);
            let batch = rgl::loader::full_graph_batch(ds);
            run_node_task(&stack, &batch, ds, cfg)
        }
    }
}

/// Regenerates Table IV: epoch/total time and accuracy ± s.d. for the six
/// models × two frameworks on Cora and PubMed.
pub fn table4(cfg: &RunConfig) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for spec in [CitationSpec::cora(), CitationSpec::pubmed()] {
        let ds = spec.scaled(cfg.scale).generate(cfg.seed);
        for model in ALL_MODELS {
            for framework in ALL_FRAMEWORKS {
                mark_cell("table4", &ds.name, model, framework);
                let task = NodeTaskConfig {
                    max_epochs: cfg.node_epochs,
                    lr: node_hparams(model).lr,
                };
                let mut accs = Vec::with_capacity(cfg.seeds);
                let mut epoch_time = 0.0;
                let mut total_time = 0.0;
                for s in 0..cfg.seeds {
                    let out = run_node(framework, model, &ds, &task, cfg.seed + 1 + s as u64);
                    accs.push(out.test_acc);
                    epoch_time = out.epoch_time;
                    total_time = out.total_time;
                }
                rows.push(Table4Row {
                    dataset: ds.name.clone(),
                    model,
                    framework,
                    epoch_time,
                    total_time,
                    acc: mean_std(&accs),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Table V — graph classification
// ---------------------------------------------------------------------------

/// One cell of Table V.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Dataset name.
    pub dataset: String,
    /// Model.
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// Simulated seconds per epoch (mean over folds).
    pub epoch_time: f64,
    /// Simulated total seconds (mean over folds).
    pub total_time: f64,
    /// Test accuracy over folds, percent.
    pub acc: Summary,
}

fn run_graph(
    framework: FrameworkKind,
    model: ModelKind,
    ds: &GraphDataset,
    fold: &gnn_datasets::Fold,
    task: &GraphTaskConfig,
    seed: u64,
) -> FoldOutcome {
    let f = ds.feature_dim;
    let c = ds.num_classes;
    let mut rng = StdRng::seed_from_u64(seed);
    match framework {
        FrameworkKind::RustyG => {
            let stack = build::graph_model_rustyg(model, f, c, &mut rng);
            let loader = RustygLoader::new(ds);
            run_graph_fold(&stack, &loader, fold, task)
        }
        FrameworkKind::Rgl => {
            let stack = build::graph_model_rgl(model, f, c, &mut rng);
            let loader = RglLoader::new(ds);
            run_graph_fold(&stack, &loader, fold, task)
        }
    }
}

/// Regenerates Table V: epoch/total time and 10-fold accuracy for the six
/// models × two frameworks on ENZYMES and DD.
pub fn table5(cfg: &RunConfig) -> Vec<Table5Row> {
    let mut rows = Vec::new();
    for which in [GraphDs::Enzymes, GraphDs::Dd] {
        let ds = which.generate(cfg);
        let folds = stratified_kfold(&ds.labels(), 10, cfg.seed);
        for model in ALL_MODELS {
            for framework in ALL_FRAMEWORKS {
                mark_cell("table5", &ds.name, model, framework);
                let mut task = GraphTaskConfig::from_hparams(
                    &graph_hparams(model),
                    cfg.graph_epochs,
                    cfg.seed,
                );
                // Keep several batches per epoch at reduced dataset scale.
                task.batch_size = task.batch_size.min((folds[0].train.len() / 3).max(8));
                let mut accs = Vec::new();
                let mut epoch_times = Vec::new();
                let mut total_times = Vec::new();
                for (i, fold) in folds.iter().take(cfg.folds).enumerate() {
                    let out =
                        run_graph(framework, model, &ds, fold, &task, cfg.seed + 10 + i as u64);
                    accs.push(out.test_acc);
                    epoch_times.push(out.epoch_time);
                    total_times.push(out.total_time);
                }
                rows.push(Table5Row {
                    dataset: ds.name.clone(),
                    model,
                    framework,
                    epoch_time: mean_std(&epoch_times).mean,
                    total_time: mean_std(&total_times).mean,
                    acc: mean_std(&accs),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figs. 1/2 (epoch-time breakdown) and 4/5 (memory, utilization)
// ---------------------------------------------------------------------------

/// One profiled configuration: the union of what Figs. 1/2 (phase
/// breakdown) and Figs. 4/5 (peak memory, utilization) report.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Dataset name.
    pub dataset: String,
    /// Model.
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Per-epoch time per phase `[data_load, forward, backward, update,
    /// other]`, seconds.
    pub phase_times: [f64; 5],
    /// Peak device memory, bytes.
    pub peak_memory: u64,
    /// GPU compute utilization in `[0, 1]` (paper Eq. 5).
    pub utilization: f64,
    /// Kernel launch counts per kind over the whole profiled run (not
    /// per-epoch), in first-seen order.
    pub kind_counts: Vec<(KernelKind, u64)>,
}

impl ProfileRow {
    /// Total per-epoch time.
    pub fn epoch_time(&self) -> f64 {
        self.phase_times.iter().sum()
    }
}

/// Profiles every model × framework × batch size on `dataset` — the data
/// behind Figs. 1/2 (phase breakdown) and Figs. 4/5 (memory/utilization).
pub fn profile_sweep(cfg: &RunConfig, dataset: GraphDs) -> Vec<ProfileRow> {
    let ds = dataset.generate(cfg);
    let folds = stratified_kfold(&ds.labels(), 10, cfg.seed);
    let fold = &folds[0];
    let epochs = cfg.graph_epochs.clamp(1, 3);
    let mut rows = Vec::new();
    for model in ALL_MODELS {
        for framework in ALL_FRAMEWORKS {
            for &batch_size in &cfg.batch_sizes {
                mark_cell("profile_sweep", &ds.name, model, framework);
                let task = GraphTaskConfig {
                    batch_size: batch_size.min(fold.train.len().max(1)),
                    init_lr: graph_hparams(model).init_lr,
                    patience: 1000,
                    decay_factor: 0.5,
                    min_lr: 1e-9,
                    max_epochs: epochs,
                    seed: cfg.seed,
                    shuffle: true,
                };
                let out = run_graph(framework, model, &ds, fold, &task, cfg.seed + 77);
                let e = out.epochs.max(1) as f64;
                let mut phase_times = out.report.phase_times;
                for t in &mut phase_times {
                    *t /= e;
                }
                rows.push(ProfileRow {
                    dataset: ds.name.clone(),
                    model,
                    framework,
                    batch_size,
                    phase_times,
                    peak_memory: out.report.peak_memory,
                    utilization: out.report.utilization(),
                    kind_counts: out.report.kind_counts,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 3 — layer-wise execution time
// ---------------------------------------------------------------------------

/// Layer-wise forward execution times of one training batch (Fig. 3).
#[derive(Debug, Clone)]
pub struct LayerTimeRow {
    /// Model.
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// `(scope, seconds)` pairs: `conv1..conv4` and `readout`.
    pub scopes: Vec<(String, f64)>,
}

/// Regenerates Fig. 3: per-layer execution time of the six models training
/// one ENZYMES batch (batch size 128) under both frameworks.
pub fn layer_times(cfg: &RunConfig) -> Vec<LayerTimeRow> {
    let ds = GraphDs::Enzymes.generate(cfg);
    let n = ds.samples.len() as u32;
    let batch: Vec<u32> = (0..128u32.min(n)).collect();
    let mut rows = Vec::new();
    for model in ALL_MODELS {
        for framework in ALL_FRAMEWORKS {
            mark_cell("layer_times", &ds.name, model, framework);
            let mut rng = StdRng::seed_from_u64(cfg.seed + 5);
            let report = match framework {
                FrameworkKind::RustyG => {
                    let stack =
                        build::graph_model_rustyg(model, ds.feature_dim, ds.num_classes, &mut rng);
                    let loader = RustygLoader::new(&ds);
                    one_batch_report(&stack, &loader, &batch)
                }
                FrameworkKind::Rgl => {
                    let stack =
                        build::graph_model_rgl(model, ds.feature_dim, ds.num_classes, &mut rng);
                    let loader = RglLoader::new(&ds);
                    one_batch_report(&stack, &loader, &batch)
                }
            };
            rows.push(LayerTimeRow {
                model,
                framework,
                scopes: report.scopes,
            });
        }
    }
    rows
}

fn one_batch_report<L: gnn_models::Loader>(
    stack: &gnn_models::GnnStack<L::Batch>,
    loader: &L,
    idx: &[u32],
) -> gnn_device::DeviceReport {
    use gnn_models::ModelBatch;
    let handle =
        gnn_device::session::install(gnn_device::Session::new(gnn_device::CostModel::rtx2080ti()));
    let b = loader.load(idx);
    let logits = stack.forward(&b, true);
    let loss = gnn_tensor::cross_entropy(&logits, b.labels());
    loss.backward();
    gnn_device::session::finish(handle)
}

// ---------------------------------------------------------------------------
// Fig. 6 — multi-GPU scaling
// ---------------------------------------------------------------------------

/// One point of Fig. 6.
#[derive(Debug, Clone)]
pub struct MultiGpuRow {
    /// Model (the paper uses GCN and GAT).
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// Global batch size.
    pub batch_size: usize,
    /// Simulated GPU count.
    pub n_gpus: usize,
    /// Simulated seconds per epoch.
    pub epoch_time: f64,
}

/// Regenerates Fig. 6: per-epoch time of GCN and GAT on MNIST with
/// data-parallel training over 1/2/4/8 GPUs at batch sizes 128/256/512.
pub fn multi_gpu(cfg: &RunConfig) -> Vec<MultiGpuRow> {
    let ds = GraphDs::Mnist.generate(cfg);
    let epoch_samples = ds.samples.len();
    let mut rows = Vec::new();
    for model in [ModelKind::Gcn, ModelKind::Gat] {
        for framework in ALL_FRAMEWORKS {
            mark_cell("multi_gpu", &ds.name, model, framework);
            let mut rng = StdRng::seed_from_u64(cfg.seed + 6);
            for &batch_size in &[128usize, 256, 512] {
                let batch_size = batch_size.min(epoch_samples);
                for &n_gpus in &[1usize, 2, 4, 8] {
                    let mcfg = MultiGpuConfig {
                        n_gpus,
                        batch_size,
                        epoch_samples,
                    };
                    let epoch_time = match framework {
                        FrameworkKind::RustyG => {
                            let stack = build::graph_model_rustyg(
                                model,
                                ds.feature_dim,
                                ds.num_classes,
                                &mut rng,
                            );
                            let loader = RustygLoader::new(&ds);
                            data_parallel_epoch_time(&stack, &loader, &mcfg)
                        }
                        FrameworkKind::Rgl => {
                            let stack = build::graph_model_rgl(
                                model,
                                ds.feature_dim,
                                ds.num_classes,
                                &mut rng,
                            );
                            let loader = RglLoader::new(&ds);
                            data_parallel_epoch_time(&stack, &loader, &mcfg)
                        }
                    };
                    rows.push(MultiGpuRow {
                        model,
                        framework,
                        batch_size,
                        n_gpus,
                        epoch_time,
                    });
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_smoke_has_all_datasets() {
        let rows = table1(&RunConfig::smoke());
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["Cora", "PubMed", "ENZYMES", "MNIST", "DD"]);
        // Feature/class dims survive any scale.
        assert_eq!(rows[0].feature_dim, 1433);
        assert_eq!(rows[4].num_classes, 2);
    }

    #[test]
    fn profile_sweep_smoke_shapes() {
        let mut cfg = RunConfig::smoke();
        cfg.batch_sizes = [4, 8, 16];
        let rows = profile_sweep(&cfg, GraphDs::Enzymes);
        assert_eq!(rows.len(), 6 * 2 * 3);
        for r in &rows {
            assert!(r.epoch_time() > 0.0);
            assert!(r.peak_memory > 0);
            assert!((0.0..=1.0).contains(&r.utilization));
            assert!(
                !r.kind_counts.is_empty(),
                "{:?}/{:?} profiled no kernels",
                r.model,
                r.framework
            );
            assert!(r.kind_counts.iter().all(|(_, n)| *n > 0));
        }
        // PyG loads data faster than DGL for every (model, batch) pair.
        for m in ALL_MODELS {
            for bs in cfg.batch_sizes {
                let pyg = rows
                    .iter()
                    .find(|r| {
                        r.model == m && r.batch_size == bs && r.framework == FrameworkKind::RustyG
                    })
                    .unwrap();
                let dgl = rows
                    .iter()
                    .find(|r| {
                        r.model == m && r.batch_size == bs && r.framework == FrameworkKind::Rgl
                    })
                    .unwrap();
                assert!(
                    dgl.phase_times[0] > pyg.phase_times[0],
                    "{m:?}/{bs}: DGL data load {} !> PyG {}",
                    dgl.phase_times[0],
                    pyg.phase_times[0]
                );
            }
        }
    }

    #[test]
    fn layer_times_smoke_has_conv_scopes() {
        let rows = layer_times(&RunConfig::smoke());
        assert_eq!(rows.len(), 12);
        for r in &rows {
            let names: Vec<&str> = r.scopes.iter().map(|(n, _)| n.as_str()).collect();
            for expect in ["conv1", "conv2", "conv3", "conv4", "readout"] {
                assert!(names.contains(&expect), "{:?} missing {expect}", r.model);
            }
        }
    }
}
