//! The experiment registry: one entry per table/figure, linking the paper's
//! artifact to the workload, the implementing modules, and the regenerating
//! binary — the machine-readable form of DESIGN.md's experiment index.

/// Identifier of a reproduced experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table I — dataset statistics.
    Table1,
    /// Table IV — node classification time/accuracy.
    Table4,
    /// Table V — graph classification time/accuracy.
    Table5,
    /// Fig. 1 — ENZYMES epoch-time breakdown.
    Fig1,
    /// Fig. 2 — DD epoch-time breakdown.
    Fig2,
    /// Fig. 3 — layer-wise execution time.
    Fig3,
    /// Fig. 4 — peak memory vs batch size.
    Fig4,
    /// Fig. 5 — GPU utilization vs batch size.
    Fig5,
    /// Fig. 6 — multi-GPU scaling.
    Fig6,
}

/// Registry entry describing one experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Experiment {
    /// Which table/figure.
    pub id: ExperimentId,
    /// Paper location, e.g. `"Table IV, Section IV-A"`.
    pub paper_ref: &'static str,
    /// Workload description (datasets, models, parameters).
    pub workload: &'static str,
    /// Key implementing modules.
    pub modules: &'static str,
    /// The `gnn-bench` binary (and flags) that regenerates it.
    pub command: &'static str,
}

/// All reproduced experiments, in paper order.
pub const EXPERIMENTS: [Experiment; 9] = [
    Experiment {
        id: ExperimentId::Table1,
        paper_ref: "Table I, Section III-C",
        workload: "statistics of Cora, PubMed, ENZYMES, MNIST, DD",
        modules: "gnn_datasets::{citation, tud, superpixel}, types::DatasetStats",
        command: "cargo run -p gnn-bench --bin table1 -- --full",
    },
    Experiment {
        id: ExperimentId::Table4,
        paper_ref: "Table IV, Section IV-A",
        workload: "6 models x 2 frameworks, full-batch node classification on Cora/PubMed, max 200 epochs, Table II hyper-parameters",
        modules: "gnn_models::build::node_model_*, gnn_train::node_task, gnn_core::runner::table4",
        command: "cargo run -p gnn-bench --bin table4 -- --full",
    },
    Experiment {
        id: ExperimentId::Table5,
        paper_ref: "Table V, Section IV-B",
        workload: "6 models x 2 frameworks, batch-128 graph classification on ENZYMES/DD, 10-fold stratified CV, plateau lr decay to 1e-6, Table III hyper-parameters",
        modules: "gnn_models::build::graph_model_*, gnn_train::graph_task, gnn_core::runner::table5",
        command: "cargo run -p gnn-bench --bin table5 -- --full",
    },
    Experiment {
        id: ExperimentId::Fig1,
        paper_ref: "Fig. 1, Section IV-C",
        workload: "epoch-time breakdown (load/fwd/bwd/update/other) on ENZYMES, batch 64/128/256",
        modules: "gnn_device::session (phases), gnn_core::runner::profile_sweep",
        command: "cargo run -p gnn-bench --bin fig1_2 -- --dataset enzymes",
    },
    Experiment {
        id: ExperimentId::Fig2,
        paper_ref: "Fig. 2, Section IV-C",
        workload: "epoch-time breakdown on DD, batch 64/128/256",
        modules: "gnn_device::session (phases), gnn_core::runner::profile_sweep",
        command: "cargo run -p gnn-bench --bin fig1_2 -- --dataset dd",
    },
    Experiment {
        id: ExperimentId::Fig3,
        paper_ref: "Fig. 3, Section IV-C",
        workload: "per-conv-layer + readout execution time of one ENZYMES training batch (128 graphs)",
        modules: "gnn_device::session (scopes), gnn_core::runner::layer_times",
        command: "cargo run -p gnn-bench --bin fig3",
    },
    Experiment {
        id: ExperimentId::Fig4,
        paper_ref: "Fig. 4, Section IV-D",
        workload: "peak device memory vs batch size on ENZYMES and DD",
        modules: "gnn_device::memory, gnn_core::runner::profile_sweep",
        command: "cargo run -p gnn-bench --bin fig4_5 -- --metric memory",
    },
    Experiment {
        id: ExperimentId::Fig5,
        paper_ref: "Fig. 5, Section IV-D",
        workload: "GPU compute utilization (Eq. 5) vs batch size on ENZYMES and DD",
        modules: "gnn_device::timeline, gnn_core::runner::profile_sweep",
        command: "cargo run -p gnn-bench --bin fig4_5 -- --metric utilization",
    },
    Experiment {
        id: ExperimentId::Fig6,
        paper_ref: "Fig. 6, Section IV-E",
        workload: "DataParallel epoch time of GCN/GAT on MNIST superpixels, 1/2/4/8 GPUs, batch 128/256/512",
        modules: "gnn_device::multi, gnn_train::multi_gpu, gnn_core::runner::multi_gpu",
        command: "cargo run -p gnn-bench --bin fig6",
    },
];

/// Looks up the registry entry for `id`.
pub fn experiment(id: ExperimentId) -> &'static Experiment {
    EXPERIMENTS
        .iter()
        .find(|e| e.id == id)
        .expect("registry covers all ids")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_id() {
        for id in [
            ExperimentId::Table1,
            ExperimentId::Table4,
            ExperimentId::Table5,
            ExperimentId::Fig1,
            ExperimentId::Fig2,
            ExperimentId::Fig3,
            ExperimentId::Fig4,
            ExperimentId::Fig5,
            ExperimentId::Fig6,
        ] {
            let e = experiment(id);
            assert_eq!(e.id, id);
            assert!(e.command.contains("gnn-bench"));
            assert!(!e.workload.is_empty());
        }
        assert_eq!(EXPERIMENTS.len(), 9);
    }

    #[test]
    fn commands_reference_existing_binaries() {
        for e in &EXPERIMENTS {
            let bin = e
                .command
                .split("--bin ")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap();
            let path = format!("{}/../bench/src/bin/{bin}.rs", env!("CARGO_MANIFEST_DIR"));
            assert!(
                std::path::Path::new(&path).exists(),
                "binary source missing: {path}"
            );
        }
    }
}
