//! Criterion microbenches comparing the two frameworks' message-passing
//! lowerings on identical inputs: PyG-style gather→scatter vs DGL-style
//! fused GSpMM, and one conv-layer forward of each model family.

use criterion::{criterion_group, criterion_main, Criterion};
use gnn_datasets::TudSpec;
use gnn_graph::Graph;
use gnn_tensor::NdArray;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_graph(nodes: usize, edges: usize, rng: &mut StdRng) -> Graph {
    let src: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
    let dst: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
    Graph::new(nodes, src, dst)
}

fn make_batches(
    nodes: usize,
    edges: usize,
    cols: usize,
    rng: &mut StdRng,
) -> (rustyg::Batch, rgl::HeteroBatch) {
    let g = random_graph(nodes, edges, rng);
    let feats = NdArray::from_vec(
        nodes,
        cols,
        (0..nodes * cols)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect(),
    );
    let ids = vec![0u32; nodes];
    (
        rustyg::Batch::from_parts(&g, feats.clone(), ids.clone(), 1, vec![0]),
        rgl::HeteroBatch::from_parts(&g, feats, ids, 1, vec![0]),
    )
}

fn bench_aggregation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let (pyg, dgl) = make_batches(4096, 16384, 64, &mut rng);
    let mut g = c.benchmark_group("aggregation_4096n_16384e_64f");
    g.bench_function("pyg_gather_scatter", |b| {
        b.iter(|| {
            std::hint::black_box(
                pyg.x
                    .gather_rows(&pyg.src)
                    .scatter_add_rows(&pyg.dst, pyg.num_nodes),
            )
        });
    });
    g.bench_function("dgl_gspmm_fused", |b| {
        b.iter(|| std::hint::black_box(rgl::kernels::gspmm_copy_sum(&dgl, &dgl.x)));
    });
    g.finish();
}

fn bench_conv_layers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (pyg, dgl) = make_batches(2048, 8192, 64, &mut rng);
    let mut g = c.benchmark_group("conv_forward_2048n_8192e");

    let gcn_p = rustyg::GcnConv::new(64, 64, &mut rng);
    g.bench_function("gcn_pyg", |b| {
        b.iter(|| std::hint::black_box(gcn_p.forward(&pyg, &pyg.x, true)))
    });
    let gcn_d = rgl::GraphConv::new(64, 64, &mut rng);
    g.bench_function("gcn_dgl", |b| {
        b.iter(|| std::hint::black_box(gcn_d.forward(&dgl, &dgl.x, true)))
    });

    let gat_p = rustyg::GatConv::new(64, 8, 8, &mut rng);
    g.bench_function("gat_pyg", |b| {
        b.iter(|| std::hint::black_box(gat_p.forward(&pyg, &pyg.x, true)))
    });
    let gat_d = rgl::GatConv::new(64, 8, 8, &mut rng);
    g.bench_function("gat_dgl", |b| {
        b.iter(|| std::hint::black_box(gat_d.forward(&dgl, &dgl.x, true)))
    });

    let gated_p = rustyg::GatedGcnConv::new(64, 64, &mut rng);
    g.bench_function("gatedgcn_pyg", |b| {
        b.iter(|| std::hint::black_box(gated_p.forward(&pyg, &pyg.x, true)))
    });
    let gated_d = rgl::GatedGcnConv::new(64, 64, &mut rng);
    g.bench_function("gatedgcn_dgl", |b| {
        b.iter(|| {
            dgl.begin_forward();
            std::hint::black_box(gated_d.forward(&dgl, &dgl.x, true))
        })
    });
    g.finish();
}

fn bench_pooling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let ds = TudSpec::enzymes().scaled(0.3).generate(0);
    let idx: Vec<u32> = (0..64u32).collect();
    let pyg = rustyg::DataLoader::new(&ds).load(&idx);
    let dgl = rgl::DataLoader::new(&ds).load(&idx);
    let _ = &mut rng;
    let mut g = c.benchmark_group("readout_64graphs");
    g.bench_function("pyg_scatter_pool", |b| {
        b.iter(|| std::hint::black_box(rustyg::global_mean_pool(&pyg, &pyg.x)));
    });
    g.bench_function("dgl_segment_pool", |b| {
        b.iter(|| std::hint::black_box(rgl::segment_mean_pool(&dgl, &dgl.x)));
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_aggregation, bench_conv_layers, bench_pooling
}
criterion_main!(benches);
