//! Criterion microbenches of the mini-batch collation paths — the operation
//! the paper identifies as the dominant cost of GNN training ("batching
//! multiple graphs into a single large graph is pretty time-consuming").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnn_datasets::TudSpec;
use gnn_graph::disjoint_union;
use std::time::Duration;

fn bench_collation(c: &mut Criterion) {
    let ds = TudSpec::enzymes().generate(0);
    let pyg = rustyg::DataLoader::new(&ds);
    let dgl = rgl::DataLoader::new(&ds);
    let mut g = c.benchmark_group("collate_enzymes");
    for bs in [32usize, 128] {
        let idx: Vec<u32> = (0..bs as u32).collect();
        g.bench_with_input(BenchmarkId::new("pyg", bs), &idx, |b, idx| {
            b.iter(|| std::hint::black_box(pyg.load(idx)));
        });
        g.bench_with_input(BenchmarkId::new("dgl", bs), &idx, |b, idx| {
            b.iter(|| std::hint::black_box(dgl.load(idx)));
        });
    }
    g.finish();
}

fn bench_disjoint_union(c: &mut Criterion) {
    let ds = TudSpec::dd().scaled(0.2).generate(1);
    let graphs: Vec<_> = ds.samples.iter().take(128).map(|s| &s.graph).collect();
    let mut g = c.benchmark_group("topology");
    g.bench_function("disjoint_union_128_dd_graphs", |b| {
        b.iter(|| std::hint::black_box(disjoint_union(&graphs)));
    });
    let big = disjoint_union(&graphs).graph;
    g.bench_function("csc_conversion_batched_dd", |b| {
        b.iter(|| std::hint::black_box(big.csc()));
    });
    g.finish();
}

fn bench_knn(c: &mut Criterion) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    let points: Vec<f32> = (0..140).map(|_| rng.gen::<f32>()).collect();
    let mut g = c.benchmark_group("superpixel");
    g.bench_function("knn_graph_70pts_k8", |b| {
        b.iter(|| std::hint::black_box(gnn_graph::knn_graph(&points, 2, 8)));
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_collation, bench_disjoint_union, bench_knn
}
criterion_main!(benches);
