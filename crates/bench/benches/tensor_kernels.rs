//! Criterion microbenches of the tensor substrate: real CPU time of the
//! kernels every model lowers to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnn_tensor::{cross_entropy, NdArray, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;
use std::time::Duration;

fn rand_array(rows: usize, cols: usize, rng: &mut StdRng) -> NdArray {
    NdArray::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = rand_array(n, n, &mut rng);
        let b = rand_array(n, n, &mut rng);
        g.throughput(criterion::Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_scatter_gather(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let nodes = 4096;
    let edges = 16384;
    let cols = 64;
    let x = Tensor::new(rand_array(nodes, cols, &mut rng));
    let src: gnn_tensor::Ids =
        Rc::new((0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect());
    let dst: gnn_tensor::Ids =
        Rc::new((0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect());
    let mut g = c.benchmark_group("index_ops");
    g.bench_function("gather_rows_16k_x64", |b| {
        b.iter(|| std::hint::black_box(x.gather_rows(&src)));
    });
    let msgs = x.gather_rows(&src);
    g.bench_function("scatter_add_16k_x64", |b| {
        b.iter(|| std::hint::black_box(msgs.scatter_add_rows(&dst, nodes)));
    });
    g.bench_function("segment_softmax_16k_x8", |b| {
        let scores = Tensor::new(rand_array(edges, 8, &mut rng));
        b.iter(|| std::hint::black_box(scores.segment_softmax(&dst, nodes)));
    });
    g.finish();
}

fn bench_norm_and_loss(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::param(rand_array(4096, 128, &mut rng));
    let gamma = Tensor::param(NdArray::full(1, 128, 1.0));
    let beta = Tensor::param(NdArray::zeros(1, 128));
    let mut g = c.benchmark_group("norm_loss");
    g.bench_function("batch_norm_4096x128", |b| {
        b.iter(|| std::hint::black_box(x.batch_norm_train(&gamma, &beta, 1e-5).out));
    });
    let logits = Tensor::param(rand_array(4096, 10, &mut rng));
    let labels: Vec<u32> = (0..4096).map(|i| (i % 10) as u32).collect();
    g.bench_function("cross_entropy_4096x10", |b| {
        b.iter(|| std::hint::black_box(cross_entropy(&logits, &labels)));
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_matmul, bench_scatter_gather, bench_norm_and_loss
}
criterion_main!(benches);
